//! Fig. 6: standard popularity by introduction date.
//!
//! §5.6: no simple relationship exists between when a standard shipped and
//! how popular it is — old standards can be ubiquitous (AJAX) or abandoned
//! (HTML: Plugins), and new ones adopted overnight (Selectors) or ignored
//! (Vibration). Points carry the paper's block-rate color buckets.

use crate::popularity::StandardPopularity;
use bfu_crawler::BrowserProfile;
use bfu_webidl::{FeatureRegistry, StandardId};

/// Block-rate bucket used for Fig. 6's point colors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockBucket {
    /// Block rate < 33%.
    Low,
    /// 33% ≤ block rate ≤ 66%.
    Mid,
    /// Block rate > 66%.
    High,
}

impl BlockBucket {
    /// Bucket a rate.
    pub fn of(rate: f64) -> BlockBucket {
        if rate < 0.33 {
            BlockBucket::Low
        } else if rate <= 0.66 {
            BlockBucket::Mid
        } else {
            BlockBucket::High
        }
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            BlockBucket::Low => "block rate < 33%",
            BlockBucket::Mid => "33% < block rate < 66%",
            BlockBucket::High => "66% < block rate",
        }
    }
}

/// One standard's point on Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Standard.
    pub std: StandardId,
    /// Abbreviation.
    pub abbrev: &'static str,
    /// Year the standard's flagship feature shipped in Firefox.
    pub intro_year: u16,
    /// Sites using the standard by default.
    pub sites: u32,
    /// Block-rate bucket.
    pub bucket: BlockBucket,
}

/// Compute Fig. 6 points for every standard (unused ones plot at 0 sites).
pub fn fig6_points(sp: &StandardPopularity, registry: &FeatureRegistry) -> Vec<Fig6Point> {
    registry
        .standard_ids()
        .map(|std| {
            let info = registry.standard(std);
            let sites = sp.sites_using(std, BrowserProfile::Default);
            let bucket = BlockBucket::of(sp.block_rate(std).unwrap_or(0.0));
            Fig6Point {
                std,
                abbrev: info.abbrev,
                intro_year: info.intro_year,
                sites,
                bucket,
            }
        })
        .collect()
}

/// The §5.6 narrative quadrants, computed: correlation between age and
/// popularity should be weak. Returns Pearson's r over (intro_year, sites).
pub fn age_popularity_correlation(points: &[Fig6Point]) -> f64 {
    let n = points.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean_x = points.iter().map(|p| f64::from(p.intro_year)).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| f64::from(p.sites)).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for p in points {
        let dx = f64::from(p.intro_year) - mean_x;
        let dy = f64::from(p.sites) - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::StandardPopularity;
    use crate::test_support::tiny_dataset;

    #[test]
    fn buckets() {
        assert_eq!(BlockBucket::of(0.1), BlockBucket::Low);
        assert_eq!(BlockBucket::of(0.5), BlockBucket::Mid);
        assert_eq!(BlockBucket::of(0.9), BlockBucket::High);
    }

    #[test]
    fn one_point_per_standard() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let points = fig6_points(&sp, &registry);
        assert_eq!(points.len(), 75);
    }

    #[test]
    fn exemplars_match_the_papers_story() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let points = fig6_points(&sp, &registry);
        let by = |a: &str| points.iter().find(|p| p.abbrev == a).unwrap();
        // AJAX: old and popular. SLC: newer and popular. H-P: old, unpopular.
        let ajax = by("AJAX");
        let slc = by("SLC");
        let hp = by("H-P");
        assert!(ajax.intro_year <= 2005);
        assert!(ajax.sites > slc.sites / 2, "both are popular");
        assert!(hp.sites < ajax.sites / 3, "H-P languishes");
    }

    #[test]
    fn age_does_not_predict_popularity() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let points = fig6_points(&sp, &registry);
        let r = age_popularity_correlation(&points);
        assert!(
            r.abs() < 0.75,
            "Pearson r = {r:.2}; paper: no simple relationship"
        );
    }

    #[test]
    fn correlation_degenerate_inputs() {
        assert_eq!(age_popularity_correlation(&[]), 0.0);
    }
}
