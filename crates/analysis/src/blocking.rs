//! Blocking analyses: Fig. 4 (popularity vs block rate) and Fig. 7
//! (ad-blocking vs tracking-blocking decomposition).

use crate::popularity::StandardPopularity;
use bfu_crawler::BrowserProfile;
use bfu_webidl::{FeatureRegistry, StandardId};

/// One standard's point on Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Standard.
    pub std: StandardId,
    /// Abbreviation (e.g. `CSS-OM`).
    pub abbrev: &'static str,
    /// Sites using the standard by default.
    pub sites: u32,
    /// Block rate in [0,1].
    pub block_rate: f64,
}

/// Which quadrant of Fig. 4 a standard falls into (§5.4's narrative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quadrant {
    /// Frequently used, rarely blocked (e.g. CSS-OM).
    PopularUnblocked,
    /// Frequently used, frequently blocked (e.g. H-CM).
    PopularBlocked,
    /// Rarely used, frequently blocked (e.g. ALS).
    UnpopularBlocked,
    /// Rarely used, rarely blocked (e.g. Encodings).
    UnpopularUnblocked,
}

/// Fig. 4: every default-used standard with its block rate.
pub fn fig4_points(sp: &StandardPopularity, registry: &FeatureRegistry) -> Vec<Fig4Point> {
    registry
        .standard_ids()
        .filter_map(|std| {
            let sites = sp.sites_using(std, BrowserProfile::Default);
            let block_rate = sp.block_rate(std)?;
            (sites > 0).then(|| Fig4Point {
                std,
                abbrev: registry.standard(std).abbrev,
                sites,
                block_rate,
            })
        })
        .collect()
}

/// Quadrant classification with the paper's implicit thresholds: popularity
/// splits at 10% of measured sites, blocking at a 50% block rate.
pub fn quadrant(point: &Fig4Point, measured_sites: usize) -> Quadrant {
    let popular = f64::from(point.sites) >= 0.10 * measured_sites as f64;
    let blocked = point.block_rate >= 0.5;
    match (popular, blocked) {
        (true, false) => Quadrant::PopularUnblocked,
        (true, true) => Quadrant::PopularBlocked,
        (false, true) => Quadrant::UnpopularBlocked,
        (false, false) => Quadrant::UnpopularUnblocked,
    }
}

/// One standard's point on Fig. 7.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Standard.
    pub std: StandardId,
    /// Abbreviation.
    pub abbrev: &'static str,
    /// Sites using the standard by default (point size in the paper).
    pub sites: u32,
    /// Block rate with only the ad blocker installed (x-axis).
    pub ad_block_rate: f64,
    /// Block rate with only the tracking blocker installed (y-axis).
    pub tracker_block_rate: f64,
}

/// Fig. 7: ad-only vs tracker-only block rates. Empty if those profiles
/// weren't crawled.
pub fn fig7_points(sp: &StandardPopularity, registry: &FeatureRegistry) -> Vec<Fig7Point> {
    registry
        .standard_ids()
        .filter_map(|std| {
            let sites = sp.sites_using(std, BrowserProfile::Default);
            let ad = sp.block_rate_against(std, BrowserProfile::AdblockOnly)?;
            let tr = sp.block_rate_against(std, BrowserProfile::GhosteryOnly)?;
            (sites > 0).then(|| Fig7Point {
                std,
                abbrev: registry.standard(std).abbrev,
                sites,
                ad_block_rate: ad,
                tracker_block_rate: tr,
            })
        })
        .collect()
}

/// §5.7: standards whose usage drops by at least `rate` under blocking
/// (paper: 16 standards blocked over 75% of the time).
pub fn standards_blocked_at_least(
    sp: &StandardPopularity,
    registry: &FeatureRegistry,
    rate: f64,
) -> Vec<StandardId> {
    registry
        .standard_ids()
        .filter(|&std| sp.block_rate(std).is_some_and(|br| br >= rate))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::StandardPopularity;
    use crate::test_support::tiny_dataset;

    #[test]
    fn fig4_covers_used_standards_only() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let points = fig4_points(&sp, &registry);
        assert!(!points.is_empty());
        for p in &points {
            assert!(p.sites > 0);
            assert!((0.0..=1.0).contains(&p.block_rate));
        }
    }

    #[test]
    fn quadrants_partition_sensibly() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let points = fig4_points(&sp, &registry);
        let measured = sp.measured_sites;
        // The DOM core must land popular-unblocked; a high-block-rate
        // standard like PT2 (93.7% in the paper) must land blocked.
        let dom1 = points
            .iter()
            .find(|p| p.abbrev == "DOM1")
            .expect("DOM1 used");
        assert_eq!(quadrant(dom1, measured), Quadrant::PopularUnblocked);
        if let Some(pt2) = points.iter().find(|p| p.abbrev == "PT2") {
            assert!(
                pt2.block_rate > 0.5,
                "PT2 block rate {} should be high",
                pt2.block_rate
            );
        }
    }

    #[test]
    fn fig7_axes_bounded() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let points = fig7_points(&sp, &registry);
        assert!(
            !points.is_empty(),
            "fixture crawls ad-only and ghostery-only"
        );
        for p in &points {
            assert!((0.0..=1.0).contains(&p.ad_block_rate));
            assert!((0.0..=1.0).contains(&p.tracker_block_rate));
        }
    }

    #[test]
    fn core_dom_rarely_blocked_in_fig7() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let points = fig7_points(&sp, &registry);
        let dom1 = points.iter().find(|p| p.abbrev == "DOM1").expect("DOM1");
        assert!(dom1.ad_block_rate < 0.3, "{}", dom1.ad_block_rate);
        assert!(dom1.tracker_block_rate < 0.3, "{}", dom1.tracker_block_rate);
    }

    #[test]
    fn blocked_list_sorted_by_threshold() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let hi = standards_blocked_at_least(&sp, &registry, 0.75);
        let lo = standards_blocked_at_least(&sp, &registry, 0.25);
        assert!(hi.len() <= lo.len());
    }
}
