//! Fig. 8: site complexity — the number of standards each site uses.
//!
//! §5.9: "most sites use a reasonably wide array of different standards:
//! between 14 and 32 of the 74 available"; no site used more than 41; a
//! second mode sits at zero (script-free sites).

use bfu_crawler::{BrowserProfile, Dataset};
use bfu_util::Histogram;
use bfu_webidl::FeatureRegistry;

/// The Fig. 8 distribution.
#[derive(Debug, Clone)]
pub struct ComplexityDistribution {
    /// Distinct-standard count per measured site.
    pub per_site: Vec<u32>,
    /// Histogram over 0..=60 standards, one bin per count.
    pub histogram: Histogram,
}

/// Compute per-site standard counts under the default profile.
pub fn complexity(dataset: &Dataset, registry: &FeatureRegistry) -> ComplexityDistribution {
    let mut per_site = Vec::new();
    let mut histogram = Histogram::new(0.0, 60.0, 60);
    for site in &dataset.sites {
        if !site.measured(BrowserProfile::Default) {
            continue;
        }
        let n = site.standards_used(BrowserProfile::Default, registry).len() as u32;
        histogram.add(f64::from(n));
        per_site.push(n);
    }
    ComplexityDistribution {
        per_site,
        histogram,
    }
}

impl ComplexityDistribution {
    /// The maximum standards used by any site (paper: ≤ 41).
    pub fn max(&self) -> u32 {
        self.per_site.iter().copied().max().unwrap_or(0)
    }

    /// Median standards per site.
    pub fn median(&self) -> f64 {
        let xs: Vec<f64> = self.per_site.iter().map(|&n| f64::from(n)).collect();
        bfu_util::percentile(&xs, 50.0).unwrap_or(0.0)
    }

    /// Fraction of sites using zero standards (the second mode).
    pub fn zero_fraction(&self) -> f64 {
        if self.per_site.is_empty() {
            return 0.0;
        }
        self.per_site.iter().filter(|&&n| n == 0).count() as f64 / self.per_site.len() as f64
    }

    /// Fraction of sites inside the paper's 14-32 window.
    pub fn in_window_fraction(&self, lo: u32, hi: u32) -> f64 {
        if self.per_site.is_empty() {
            return 0.0;
        }
        self.per_site
            .iter()
            .filter(|&&n| (lo..=hi).contains(&n))
            .count() as f64
            / self.per_site.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_dataset;

    #[test]
    fn distribution_shape_matches_fig8() {
        let (dataset, registry) = tiny_dataset();
        let d = complexity(&dataset, &registry);
        assert!(!d.per_site.is_empty());
        // Main mode: a wide band of standards per site.
        let median = d.median();
        assert!(
            (8.0..=40.0).contains(&median),
            "median standards/site = {median}"
        );
        // Hard ceiling near the paper's 41.
        assert!(d.max() <= 55, "max = {}", d.max());
    }

    #[test]
    fn no_js_sites_form_a_zero_mode() {
        let (dataset, registry) = tiny_dataset();
        let d = complexity(&dataset, &registry);
        // The generator marks ~3.5% of sites script-free; with 30 sites the
        // zero mode may be empty, so only check the fraction is small.
        assert!(d.zero_fraction() < 0.35);
    }

    #[test]
    fn histogram_totals_match() {
        let (dataset, registry) = tiny_dataset();
        let d = complexity(&dataset, &registry);
        assert_eq!(
            d.histogram.total() as usize + d.histogram.outliers() as usize,
            d.per_site.len()
        );
    }
}
