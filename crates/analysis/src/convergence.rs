//! Table 3: internal validation — new standards per measurement round.
//!
//! §6.1: the paper measured each site five times and checked that the number
//! of *new* standards discovered per round fell to zero by round five
//! (1.56, 0.40, 0.29, 0.00 for rounds 2-5), concluding five rounds suffice.

use bfu_crawler::{BrowserProfile, Dataset};
use bfu_webidl::FeatureRegistry;

/// Average new standards discovered in each round after the first.
///
/// `result[i]` is the Table 3 row for round `i + 2` (rounds are 1-indexed in
/// the paper and round 1 trivially discovers everything it sees).
pub fn new_standards_per_round(
    dataset: &Dataset,
    registry: &FeatureRegistry,
    profile: BrowserProfile,
) -> Vec<f64> {
    let rounds = dataset.rounds_per_profile;
    if rounds < 2 {
        return Vec::new();
    }
    let mut totals = vec![0f64; (rounds - 1) as usize];
    let mut measured = 0usize;
    for site in &dataset.sites {
        if !site.measured(profile) {
            continue;
        }
        measured += 1;
        let mut prev = site.standards_through_round(profile, 0, registry);
        for r in 1..rounds {
            let through = site.standards_through_round(profile, r, registry);
            totals[(r - 1) as usize] += (through.len() - prev.len()) as f64;
            prev = through;
        }
    }
    if measured == 0 {
        return vec![0.0; (rounds - 1) as usize];
    }
    totals.iter().map(|t| t / measured as f64).collect()
}

/// Whether discovery has converged: the final round found (on average)
/// fewer than `epsilon` new standards per site.
pub fn converged(per_round: &[f64], epsilon: f64) -> bool {
    per_round.last().is_some_and(|&last| last < epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_dataset;

    #[test]
    fn discovery_decreases_across_rounds() {
        let (dataset, registry) = tiny_dataset();
        let rounds = new_standards_per_round(&dataset, &registry, BrowserProfile::Default);
        assert_eq!(rounds.len(), (dataset.rounds_per_profile - 1) as usize);
        for &r in &rounds {
            assert!(r >= 0.0);
            // With only 2 rounds in the fixture there is one data point; it
            // must be small relative to the ~16 standards seen in round one.
            assert!(r < 8.0, "round discovered {r} new standards on average");
        }
    }

    #[test]
    fn convergence_predicate() {
        assert!(converged(&[1.5, 0.4, 0.2, 0.0], 0.1));
        assert!(!converged(&[1.5, 0.9], 0.1));
        assert!(!converged(&[], 0.1));
    }

    #[test]
    fn single_round_dataset_yields_empty() {
        let (mut dataset, registry) = tiny_dataset();
        dataset.rounds_per_profile = 1;
        assert!(new_standards_per_round(&dataset, &registry, BrowserProfile::Default).is_empty());
    }
}
