//! CSV export of datasets and analyses.
//!
//! The paper's artifacts are tables and figures; downstream users often want
//! the underlying rows for their own plotting. These writers emit plain
//! RFC-4180-ish CSV (quoted only where needed) so output drops straight into
//! R / pandas / gnuplot — the toolchain the original figures were drawn with.

use crate::blocking::{Fig4Point, Fig7Point};
use crate::tables::Table2Row;
use crate::traffic::Fig5Point;
use bfu_crawler::{BrowserProfile, Dataset, Provenance};
use bfu_webidl::FeatureRegistry;
use std::fmt::Write as _;

/// Quote a CSV field if it contains a comma or quote.
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Per-feature usage: `feature,standard,kind,<one column per profile>`.
pub fn features_csv(dataset: &Dataset, registry: &FeatureRegistry) -> String {
    let fp = crate::popularity::FeaturePopularity::compute(dataset, registry);
    let mut out = String::from("feature,standard,kind");
    for p in &fp.profiles {
        let _ = write!(out, ",sites_{}", p.label().replace('-', "_"));
    }
    out.push('\n');
    for (ix, info) in registry.features().iter().enumerate() {
        let fid = bfu_webidl::FeatureId::from_usize(ix);
        let _ = write!(
            out,
            "{},{},{:?}",
            field(&info.name),
            registry.standard(info.standard).abbrev,
            info.kind
        );
        for &p in &fp.profiles {
            let _ = write!(out, ",{}", fp.sites_using(fid, p));
        }
        out.push('\n');
    }
    out
}

/// Table 2 rows as CSV.
pub fn table2_csv(rows: &[Table2Row]) -> String {
    let mut out = String::from("name,abbrev,features,sites,block_rate,cves\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            field(r.name),
            r.abbrev,
            r.features,
            r.sites,
            r.block_rate.map_or(String::new(), |b| format!("{b:.4}")),
            r.cves
        );
    }
    out
}

/// Fig. 4 points as CSV.
pub fn fig4_csv(points: &[Fig4Point]) -> String {
    let mut out = String::from("abbrev,sites,block_rate\n");
    for p in points {
        let _ = writeln!(out, "{},{},{:.4}", p.abbrev, p.sites, p.block_rate);
    }
    out
}

/// Fig. 5 points as CSV.
pub fn fig5_csv(points: &[Fig5Point]) -> String {
    let mut out = String::from("abbrev,site_fraction,visit_fraction\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6}",
            p.abbrev, p.site_fraction, p.visit_fraction
        );
    }
    out
}

/// Fig. 7 points as CSV.
pub fn fig7_csv(points: &[Fig7Point]) -> String {
    let mut out = String::from("abbrev,sites,ad_block_rate,tracker_block_rate\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{:.4},{:.4}",
            p.abbrev, p.sites, p.ad_block_rate, p.tracker_block_rate
        );
    }
    out
}

/// Per-site measurements: `domain,traffic_weight,<features per profile>`.
pub fn sites_csv(dataset: &Dataset) -> String {
    let mut out = String::from("site,domain,traffic_weight");
    for p in &dataset.profiles {
        let _ = write!(out, ",features_{}", p.label().replace('-', "_"));
    }
    out.push('\n');
    for s in &dataset.sites {
        let _ = write!(
            out,
            "{},{},{:.8}",
            s.site.index(),
            field(&s.domain),
            s.traffic_weight
        );
        for &p in &dataset.profiles {
            let _ = write!(out, ",{}", s.features_used(p).len());
        }
        out.push('\n');
    }
    out
}

/// Dataset provenance as JSON — the one place provenance is rendered.
///
/// Every artifact that records where a dataset came from (the store's
/// `provenance.json` sidecar, bench reports) calls this, so the seed,
/// configuration fingerprint, and crawl-health breakdown are serialized by
/// exactly one piece of code and cannot drift between consumers.
pub fn provenance_json(p: &Provenance) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", p.fingerprint);
    let _ = writeln!(out, "  \"crawl_seed\": {},", p.crawl_seed);
    let _ = writeln!(out, "  \"web_seed\": {},", p.web_seed);
    let _ = writeln!(out, "  \"sites\": {},", p.sites);
    let _ = writeln!(out, "  \"rounds_per_profile\": {},", p.rounds_per_profile);
    let labels: Vec<String> = p
        .profiles
        .iter()
        .map(|prof| format!("\"{}\"", prof.label()))
        .collect();
    let _ = writeln!(out, "  \"profiles\": [{}],", labels.join(", "));
    let h = &p.health;
    out.push_str("  \"health\": {\n");
    let _ = writeln!(out, "    \"sites_total\": {},", h.sites_total);
    let _ = writeln!(out, "    \"sites_completed\": {},", h.sites_completed);
    let _ = writeln!(out, "    \"sites_failed\": {},", h.sites_failed);
    let _ = writeln!(out, "    \"sites_panicked\": {},", h.sites_panicked);
    out.push_str("    \"failures_by_class\": {");
    let classes: Vec<String> = h
        .breakdown()
        .into_iter()
        .map(|(name, lost)| format!("\"{name}\": {lost}"))
        .collect();
    let _ = writeln!(out, "{}}},", classes.join(", "));
    let _ = writeln!(out, "    \"total_attempts\": {},", h.total_attempts);
    let _ = writeln!(out, "    \"total_retries\": {},", h.total_retries);
    let _ = writeln!(out, "    \"total_backoff_ms\": {},", h.total_backoff_ms);
    let _ = writeln!(
        out,
        "    \"script_budget_trips\": {},",
        h.total_script_budget_errors
    );
    let _ = writeln!(
        out,
        "    \"script_heap_trips\": {},",
        h.total_script_heap_errors
    );
    let _ = writeln!(
        out,
        "    \"script_depth_trips\": {},",
        h.total_script_depth_errors
    );
    let _ = writeln!(
        out,
        "    \"rounds_circuit_skipped\": {},",
        h.rounds_circuit_skipped
    );
    out.push_str("    \"compile_cache\": {\n");
    let _ = writeln!(out, "      \"enabled\": {},", h.cache.enabled);
    let _ = writeln!(out, "      \"script_hits\": {},", h.cache.script_hits);
    let _ = writeln!(out, "      \"script_misses\": {},", h.cache.script_misses);
    let _ = writeln!(
        out,
        "      \"script_negative_hits\": {},",
        h.cache.script_negative_hits
    );
    let _ = writeln!(out, "      \"unique_scripts\": {},", h.cache.unique_scripts);
    let _ = writeln!(out, "      \"unique_frames\": {},", h.cache.unique_frames);
    let _ = writeln!(out, "      \"chunk_hits\": {},", h.cache.chunk_hits);
    let _ = writeln!(out, "      \"chunk_misses\": {},", h.cache.chunk_misses);
    let _ = writeln!(
        out,
        "      \"chunk_negative_hits\": {},",
        h.cache.chunk_negative_hits
    );
    let _ = writeln!(out, "      \"unique_chunks\": {},", h.cache.unique_chunks);
    let _ = writeln!(out, "      \"hit_rate\": {:.6}", h.cache.hit_rate());
    out.push_str("    },\n");
    out.push_str("    \"fabric\": {\n");
    let _ = writeln!(out, "      \"enabled\": {},", h.fabric.enabled);
    let _ = writeln!(out, "      \"workers\": {},", h.fabric.workers);
    let _ = writeln!(out, "      \"leases_total\": {},", h.fabric.leases_total);
    let _ = writeln!(out, "      \"leases_issued\": {},", h.fabric.leases_issued);
    let _ = writeln!(
        out,
        "      \"leases_completed\": {},",
        h.fabric.leases_completed
    );
    let _ = writeln!(
        out,
        "      \"leases_expired\": {},",
        h.fabric.leases_expired
    );
    let _ = writeln!(
        out,
        "      \"leases_reclaimed\": {},",
        h.fabric.leases_reclaimed
    );
    let _ = writeln!(
        out,
        "      \"publishes_fenced\": {},",
        h.fabric.publishes_fenced
    );
    let _ = writeln!(out, "      \"workers_died\": {},", h.fabric.workers_died);
    let _ = writeln!(
        out,
        "      \"records_absorbed\": {},",
        h.fabric.records_absorbed
    );
    let _ = writeln!(out, "      \"elections_won\": {},", h.fabric.elections_won);
    let _ = writeln!(
        out,
        "      \"coordinators_deposed\": {}",
        h.fabric.coordinators_deposed
    );
    out.push_str("    },\n");
    out.push_str("    \"backend\": {\n");
    let _ = writeln!(out, "      \"enabled\": {},", h.backend.enabled);
    let _ = writeln!(out, "      \"puts\": {},", h.backend.puts);
    let _ = writeln!(out, "      \"gets\": {},", h.backend.gets);
    let _ = writeln!(out, "      \"deletes\": {},", h.backend.deletes);
    let _ = writeln!(out, "      \"lists\": {},", h.backend.lists);
    let _ = writeln!(out, "      \"bytes_in\": {},", h.backend.bytes_in);
    let _ = writeln!(out, "      \"bytes_out\": {},", h.backend.bytes_out);
    let _ = writeln!(out, "      \"retries\": {},", h.backend.retries);
    let _ = writeln!(
        out,
        "      \"visibility_failures\": {},",
        h.backend.visibility_failures
    );
    let _ = writeln!(out, "      \"cas_puts\": {},", h.backend.cas_puts);
    let _ = writeln!(out, "      \"cas_conflicts\": {},", h.backend.cas_conflicts);
    let _ = writeln!(out, "      \"remote_ops\": {},", h.backend.remote_ops);
    let _ = writeln!(
        out,
        "      \"remote_retries\": {},",
        h.backend.remote_retries
    );
    let _ = writeln!(
        out,
        "      \"remote_reconnects\": {},",
        h.backend.remote_reconnects
    );
    let _ = writeln!(out, "      \"replicas\": {},", h.backend.replicas);
    let _ = writeln!(
        out,
        "      \"replica_quorum_writes\": {},",
        h.backend.replica_quorum_writes
    );
    let _ = writeln!(
        out,
        "      \"replica_quorum_reads\": {},",
        h.backend.replica_quorum_reads
    );
    let _ = writeln!(
        out,
        "      \"replica_read_repairs\": {},",
        h.backend.replica_read_repairs
    );
    let _ = writeln!(
        out,
        "      \"replica_errors\": {},",
        h.backend.replica_errors
    );
    let _ = writeln!(
        out,
        "      \"replica_cas_promotions\": {},",
        h.backend.replica_cas_promotions
    );
    let _ = writeln!(
        out,
        "      \"replica_anti_entropy_copies\": {}",
        h.backend.replica_anti_entropy_copies
    );
    out.push_str("    }\n  }\n}\n");
    out
}

/// [`provenance_json`] with extra top-level sections spliced in before the
/// closing brace — each `(key, value)` pair becomes `"key": value`, where
/// `value` is already-rendered JSON indented to nest at depth one.
///
/// This keeps provenance rendering in one place while letting downstream
/// crates (the dataset store folds its scrub report in this way) attach
/// sections the crawler layer knows nothing about.
pub fn provenance_json_with_extra(p: &Provenance, extra: &[(&str, String)]) -> String {
    let mut out = provenance_json(p);
    if extra.is_empty() {
        return out;
    }
    let Some(close) = out.rfind('}') else {
        return out;
    };
    out.truncate(close);
    if out.ends_with('\n') {
        out.pop();
    }
    out.push_str(",\n");
    let rendered: Vec<String> = extra
        .iter()
        .map(|(key, value)| format!("  \"{key}\": {value}"))
        .collect();
    out.push_str(&rendered.join(",\n"));
    out.push_str("\n}\n");
    out
}

/// Which profile columns a dataset carries (header helper for consumers).
pub fn profile_columns(dataset: &Dataset) -> Vec<&'static str> {
    dataset
        .profiles
        .iter()
        .map(|p| match p {
            BrowserProfile::Default => "default",
            BrowserProfile::Blocking => "blocking",
            BrowserProfile::AdblockOnly => "adblock-only",
            BrowserProfile::GhosteryOnly => "ghostery-only",
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::StandardPopularity;
    use crate::test_support::tiny_dataset;

    #[test]
    fn features_csv_has_header_and_all_rows() {
        let (dataset, registry) = tiny_dataset();
        let csv = features_csv(&dataset, &registry);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 1392);
        assert!(lines[0].starts_with("feature,standard,kind"));
        assert!(lines[0].contains("sites_default"));
    }

    #[test]
    fn table2_csv_parses_back() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let rows = crate::tables::table2_full(&sp, &registry);
        let csv = table2_csv(&rows);
        assert_eq!(csv.lines().count(), 76);
        // Every data line has exactly 6 columns (names with commas quoted).
        for line in csv.lines().skip(1) {
            let mut cols = 0;
            let mut in_quotes = false;
            for c in line.chars() {
                match c {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => cols += 1,
                    _ => {}
                }
            }
            assert_eq!(cols, 5, "{line}");
        }
    }

    #[test]
    fn sites_csv_rows_match_dataset() {
        let (dataset, _) = tiny_dataset();
        let csv = sites_csv(&dataset);
        assert_eq!(csv.lines().count(), 1 + dataset.sites.len());
    }

    #[test]
    fn quoting() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn profile_columns_match() {
        let (dataset, _) = tiny_dataset();
        assert_eq!(profile_columns(&dataset).len(), dataset.profiles.len());
    }

    #[test]
    fn provenance_json_is_well_formed() {
        let (dataset, _) = tiny_dataset();
        let p = Provenance {
            fingerprint: 0xDEAD_BEEF,
            crawl_seed: 7,
            web_seed: 9,
            sites: dataset.sites.len(),
            rounds_per_profile: dataset.rounds_per_profile,
            profiles: dataset.profiles.clone(),
            health: dataset.health(),
        };
        let json = provenance_json(&p);
        assert!(json.contains("\"fingerprint\": \"00000000deadbeef\""));
        assert!(json.contains("\"crawl_seed\": 7"));
        assert!(json.contains("\"profiles\": [\"default\""));
        assert!(json.contains("\"failures_by_class\""));
        assert!(json.contains("\"compile_cache\""));
        assert!(json.contains("\"hit_rate\""));
        assert!(json.contains("\"fabric\""));
        assert!(json.contains("\"publishes_fenced\""));
        assert!(json.contains("\"backend\""));
        assert!(json.contains("\"visibility_failures\""));
        assert!(json.contains("\"elections_won\""));
        assert!(json.contains("\"coordinators_deposed\""));
        assert!(json.contains("\"cas_puts\""));
        assert!(json.contains("\"remote_ops\""));
        assert!(json.contains("\"remote_reconnects\""));
        assert!(json.contains("\"replicas\""));
        assert!(json.contains("\"replica_quorum_writes\""));
        assert!(json.contains("\"replica_read_repairs\""));
        assert!(json.contains("\"replica_cas_promotions\""));
        assert!(json.contains("\"replica_anti_entropy_copies\""));
        // Balanced braces and brackets (cheap structural sanity check).
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
