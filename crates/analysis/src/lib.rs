//! # bfu-analysis
//!
//! The analysis pipeline: every table and figure in the paper's evaluation,
//! computed from a crawl [`Dataset`](bfu_crawler::Dataset).
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`popularity`] | §5.3 headline feature stats, Fig. 3 CDF, Table 2 site counts |
//! | [`blocking`] | block rates (Fig. 4), ad-vs-tracker decomposition (Fig. 7) |
//! | [`traffic`] | site-popularity weighting (Fig. 5) |
//! | [`age`] | introduction-date analysis (Fig. 6) |
//! | [`complexity`] | per-site standard counts (Fig. 8) |
//! | [`convergence`] | new-standards-per-round (Table 3) |
//! | [`validation`] | human-vs-monkey comparison (Fig. 9) |
//! | [`tables`] | Table 1 aggregates and the full Table 2 |
//! | [`report`] | text/CSV rendering and ASCII charts |

#[cfg(test)]
pub mod test_support;

pub mod age;
pub mod blocking;
pub mod complexity;
pub mod convergence;
pub mod export;
pub mod popularity;
pub mod report;
pub mod tables;
pub mod traffic;
pub mod validation;

pub use popularity::{headline, FeaturePopularity, HeadlineStats, StandardPopularity};
pub use tables::{table1, table2, table2_full, Table1, Table2Row};
