//! Feature and standard popularity (§5.1-5.3, Fig. 3, Table 2 site counts).
//!
//! *Feature popularity*: the fraction of measured sites that used a feature
//! at least once. *Standard popularity*: the fraction that used at least one
//! of the standard's features. *Block rate*: 1 − (sites using under
//! blocking ÷ sites using by default).

use bfu_crawler::{BrowserProfile, Dataset};
use bfu_webidl::{FeatureId, FeatureRegistry, StandardId};

/// Per-feature site counts across crawled profiles.
#[derive(Debug, Clone)]
pub struct FeaturePopularity {
    /// `counts[f][p]` = sites using feature `f` under profile column `p`.
    counts: Vec<Vec<u32>>,
    /// Profiles, in column order.
    pub profiles: Vec<BrowserProfile>,
    /// Sites measured in the default profile (the denominator).
    pub measured_sites: usize,
}

impl FeaturePopularity {
    /// Compute from a dataset in one pass over sites.
    pub fn compute(dataset: &Dataset, registry: &FeatureRegistry) -> Self {
        let profiles = dataset.profiles.clone();
        let mut counts = vec![vec![0u32; profiles.len()]; registry.feature_count()];
        for site in &dataset.sites {
            for (pi, &profile) in profiles.iter().enumerate() {
                for f in site.features_used(profile) {
                    counts[f.index()][pi] += 1;
                }
            }
        }
        FeaturePopularity {
            counts,
            profiles,
            measured_sites: dataset.measured_sites(),
        }
    }

    fn col(&self, profile: BrowserProfile) -> Option<usize> {
        self.profiles.iter().position(|&p| p == profile)
    }

    /// Sites using `feature` under `profile` (0 if profile not crawled).
    pub fn sites_using(&self, feature: FeatureId, profile: BrowserProfile) -> u32 {
        self.col(profile)
            .map_or(0, |c| self.counts[feature.index()][c])
    }

    /// Popularity in `[0, 1]` under a profile.
    pub fn popularity(&self, feature: FeatureId, profile: BrowserProfile) -> f64 {
        if self.measured_sites == 0 {
            return 0.0;
        }
        f64::from(self.sites_using(feature, profile)) / self.measured_sites as f64
    }

    /// Number of features never used under a profile (§5.3's 689).
    pub fn never_used(&self, profile: BrowserProfile) -> usize {
        let Some(c) = self.col(profile) else {
            return self.counts.len();
        };
        self.counts.iter().filter(|row| row[c] == 0).count()
    }

    /// Features used at least once but on fewer than `frac` of measured
    /// sites (§5.3's 416 at 1%).
    pub fn used_below(&self, frac: f64, profile: BrowserProfile) -> usize {
        let Some(c) = self.col(profile) else { return 0 };
        let cutoff = frac * self.measured_sites as f64;
        self.counts
            .iter()
            .filter(|row| row[c] > 0 && f64::from(row[c]) < cutoff)
            .count()
    }

    /// Features whose blocking-profile usage is ≤ (1 − `rate`) of default —
    /// §5.3's "10% of features blocked ≥ 90% of the time they are used".
    pub fn blocked_at_least(&self, rate: f64) -> usize {
        let (Some(d), Some(b)) = (
            self.col(BrowserProfile::Default),
            self.col(BrowserProfile::Blocking),
        ) else {
            return 0;
        };
        self.counts
            .iter()
            .filter(|row| row[d] > 0 && f64::from(row[b]) <= (1.0 - rate) * f64::from(row[d]))
            .count()
    }

    /// Total features tracked (1,392).
    pub fn feature_count(&self) -> usize {
        self.counts.len()
    }
}

/// Per-standard site counts and block rates.
#[derive(Debug, Clone)]
pub struct StandardPopularity {
    counts: Vec<Vec<u32>>,
    /// Profiles, in column order.
    pub profiles: Vec<BrowserProfile>,
    /// Default-profile measured-site denominator.
    pub measured_sites: usize,
}

impl StandardPopularity {
    /// Compute from a dataset.
    pub fn compute(dataset: &Dataset, registry: &FeatureRegistry) -> Self {
        let profiles = dataset.profiles.clone();
        let mut counts = vec![vec![0u32; profiles.len()]; registry.standard_count()];
        for site in &dataset.sites {
            for (pi, &profile) in profiles.iter().enumerate() {
                for s in site.standards_used(profile, registry) {
                    counts[s.index()][pi] += 1;
                }
            }
        }
        StandardPopularity {
            counts,
            profiles,
            measured_sites: dataset.measured_sites(),
        }
    }

    fn col(&self, profile: BrowserProfile) -> Option<usize> {
        self.profiles.iter().position(|&p| p == profile)
    }

    /// Sites using the standard under a profile.
    pub fn sites_using(&self, std: StandardId, profile: BrowserProfile) -> u32 {
        self.col(profile).map_or(0, |c| self.counts[std.index()][c])
    }

    /// Popularity in `[0, 1]`.
    pub fn popularity(&self, std: StandardId, profile: BrowserProfile) -> f64 {
        if self.measured_sites == 0 {
            return 0.0;
        }
        f64::from(self.sites_using(std, profile)) / self.measured_sites as f64
    }

    /// Block rate against the combined blocking profile (Table 2 col. 5).
    /// `None` when the standard is unused by default or the blocking profile
    /// wasn't crawled.
    pub fn block_rate(&self, std: StandardId) -> Option<f64> {
        self.block_rate_against(std, BrowserProfile::Blocking)
    }

    /// Block rate against an arbitrary blocking-style profile (Fig. 7 uses
    /// `AdblockOnly` and `GhosteryOnly`).
    pub fn block_rate_against(&self, std: StandardId, profile: BrowserProfile) -> Option<f64> {
        let d = self.sites_using(std, BrowserProfile::Default);
        if d == 0 {
            return None;
        }
        self.col(profile)?;
        let b = self.sites_using(std, profile);
        Some((1.0 - f64::from(b) / f64::from(d)).max(0.0))
    }

    /// Standards never used under a profile (paper: 11 by default, 15 under
    /// blocking).
    pub fn never_used(&self, profile: BrowserProfile) -> usize {
        let Some(c) = self.col(profile) else {
            return self.counts.len();
        };
        self.counts.iter().filter(|row| row[c] == 0).count()
    }

    /// Standards used on at most `frac` of measured sites (incl. unused;
    /// paper: 28 of 75 at 1%).
    pub fn at_or_below(&self, frac: f64, profile: BrowserProfile) -> usize {
        let Some(c) = self.col(profile) else { return 0 };
        let cutoff = frac * self.measured_sites as f64;
        self.counts
            .iter()
            .filter(|row| f64::from(row[c]) <= cutoff)
            .count()
    }

    /// The Fig. 3 CDF: `(sites_using, fraction_of_standards_at_or_below)`.
    pub fn popularity_cdf(&self, profile: BrowserProfile) -> Vec<(f64, f64)> {
        let Some(c) = self.col(profile) else {
            return Vec::new();
        };
        let values: Vec<f64> = self.counts.iter().map(|row| f64::from(row[c])).collect();
        bfu_util::cdf_points(&values)
    }

    /// Number of standards tracked (75).
    pub fn standard_count(&self) -> usize {
        self.counts.len()
    }
}

/// §5.3 headline statistics, in one struct for reports and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadlineStats {
    /// Features never used by default (paper: 689 of 1,392).
    pub features_never_used: usize,
    /// Features used on <1% of sites but ≥ once (paper: 416).
    pub features_under_one_percent: usize,
    /// Features blocked ≥ 90% of the time (paper: ~10% ≈ 139).
    pub features_blocked_90: usize,
    /// Features on <1% of sites under blocking, incl. never used
    /// (paper: 1,159 = 83%).
    pub features_under_one_percent_blocking: usize,
    /// Standards never used (paper: 11).
    pub standards_never_used: usize,
    /// Standards at or below 1% of sites (paper: 28).
    pub standards_at_or_below_one_percent: usize,
    /// Total features (1,392).
    pub total_features: usize,
}

/// Compute the §5.3 headline stats.
pub fn headline(features: &FeaturePopularity, standards: &StandardPopularity) -> HeadlineStats {
    let under_blocking = features.never_used(BrowserProfile::Blocking)
        + features.used_below(0.01, BrowserProfile::Blocking);
    HeadlineStats {
        features_never_used: features.never_used(BrowserProfile::Default),
        features_under_one_percent: features.used_below(0.01, BrowserProfile::Default),
        features_blocked_90: features.blocked_at_least(0.9),
        features_under_one_percent_blocking: under_blocking,
        standards_never_used: standards.never_used(BrowserProfile::Default),
        standards_at_or_below_one_percent: standards.at_or_below(0.01, BrowserProfile::Default),
        total_features: features.feature_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_dataset;

    #[test]
    fn popularity_counts_from_crawled_dataset() {
        let (dataset, registry) = tiny_dataset();
        let fp = FeaturePopularity::compute(&dataset, &registry);
        let sp = StandardPopularity::compute(&dataset, &registry);
        assert!(fp.measured_sites > 0);
        assert_eq!(fp.feature_count(), 1392);
        assert_eq!(sp.standard_count(), 75);
        // Long tail: most features unused on a 30-site sample, but not all.
        let never = fp.never_used(BrowserProfile::Default);
        assert!(never > 500, "never = {never}");
        assert!(never < 1392, "never = {never}");
    }

    #[test]
    fn block_rates_bounded_and_blocking_shrinks_usage() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        for s in registry.standard_ids() {
            if let Some(br) = sp.block_rate(s) {
                assert!((0.0..=1.0).contains(&br));
            }
            assert!(
                sp.sites_using(s, BrowserProfile::Blocking)
                    <= sp.sites_using(s, BrowserProfile::Default) + 1,
                "blocking shouldn't create usage: {}",
                registry.standard(s).abbrev
            );
        }
        let fp = FeaturePopularity::compute(&dataset, &registry);
        assert!(fp.never_used(BrowserProfile::Blocking) >= fp.never_used(BrowserProfile::Default));
    }

    #[test]
    fn popular_standards_dominate() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let (dom1, _) = bfu_webidl::catalog::by_abbrev("DOM1").unwrap();
        let (weba, _) = bfu_webidl::catalog::by_abbrev("WEBA").unwrap();
        assert!(
            sp.popularity(dom1, BrowserProfile::Default)
                > sp.popularity(weba, BrowserProfile::Default),
            "DOM1 must beat Web Audio"
        );
        assert!(sp.popularity(dom1, BrowserProfile::Default) > 0.8);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let cdf = sp.popularity_cdf(BrowserProfile::Default);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn headline_is_internally_consistent() {
        let (dataset, registry) = tiny_dataset();
        let fp = FeaturePopularity::compute(&dataset, &registry);
        let sp = StandardPopularity::compute(&dataset, &registry);
        let h = headline(&fp, &sp);
        assert_eq!(h.total_features, 1392);
        assert!(h.standards_never_used <= h.standards_at_or_below_one_percent);
        assert!(h.features_never_used + h.features_under_one_percent <= 1392);
        assert!(h.features_under_one_percent_blocking >= h.features_never_used);
    }

    #[test]
    fn uncrawled_profile_yields_zero() {
        let (dataset, registry) = tiny_dataset();
        let fp = FeaturePopularity::compute(&dataset, &registry);
        // All four profiles are crawled in the fixture; sanity-check lookups.
        let any = bfu_webidl::FeatureId::new(0);
        let _ = fp.sites_using(any, BrowserProfile::GhosteryOnly);
    }
}
