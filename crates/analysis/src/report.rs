//! Text rendering: every table and figure as terminal-friendly output.
//!
//! The `repro` binary prints these; EXPERIMENTS.md embeds them. Figures are
//! rendered as aligned data tables plus, where it helps, a small ASCII chart
//! (CDFs and histograms).

use crate::age::Fig6Point;
use crate::blocking::{Fig4Point, Fig7Point};
use crate::complexity::ComplexityDistribution;
use crate::popularity::HeadlineStats;
use crate::tables::{Table1, Table2Row};
use crate::traffic::Fig5Point;
use crate::validation::ValidationHistogram;
use std::fmt::Write as _;

/// Render Table 1, including the failed-domain breakdown (the paper says
/// only "267 domains were unreachable"; our supervision layer says why).
pub fn render_table1(t: &Table1) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: crawl scale");
    let _ = writeln!(
        out,
        "  Domains measured            {:>14}",
        t.domains_measured
    );
    let _ = writeln!(
        out,
        "  Domains attempted           {:>14}",
        t.domains_attempted
    );
    let _ = writeln!(out, "  Web pages visited           {:>14}", t.pages_visited);
    let _ = writeln!(out, "  Feature invocations         {:>14}", t.invocations);
    let _ = writeln!(
        out,
        "  Total interaction time      {:>11.1} d",
        t.interaction_days
    );
    let h = &t.health;
    let _ = writeln!(
        out,
        "  Domains lost                {:>14}  (paper: 267 unreachable)",
        h.sites_failed + h.sites_panicked
    );
    for (class, count) in h.breakdown() {
        if count > 0 {
            let _ = writeln!(out, "    {:<26} {:>14}", class, count);
        }
    }
    if h.sites_panicked > 0 {
        let _ = writeln!(out, "    {:<26} {:>14}", "worker panic", h.sites_panicked);
    }
    let _ = writeln!(
        out,
        "  Page-load retries           {:>14}  ({} ms backoff)",
        h.total_retries, h.total_backoff_ms
    );
    let budget_trips =
        h.total_script_budget_errors + h.total_script_heap_errors + h.total_script_depth_errors;
    if budget_trips > 0 {
        let _ = writeln!(out, "  Script budget trips         {:>14}", budget_trips);
        let _ = writeln!(
            out,
            "    steps/size                {:>14}",
            h.total_script_budget_errors
        );
        let _ = writeln!(
            out,
            "    heap/string               {:>14}",
            h.total_script_heap_errors
        );
        let _ = writeln!(
            out,
            "    call depth                {:>14}",
            h.total_script_depth_errors
        );
    }
    if h.rounds_circuit_skipped > 0 {
        let _ = writeln!(
            out,
            "  Rounds breaker-skipped      {:>14}",
            h.rounds_circuit_skipped
        );
    }
    out
}

/// Render Table 2 rows.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<52} {:>8} {:>6} {:>6} {:>7} {:>5}",
        "Standard", "Abbrev", "#Feat", "#Sites", "Block%", "CVEs"
    );
    for r in rows {
        let block = r
            .block_rate
            .map_or("  --".to_owned(), |b| format!("{:.1}", 100.0 * b));
        let _ = writeln!(
            out,
            "{:<52} {:>8} {:>6} {:>6} {:>7} {:>5}",
            truncate(r.name, 52),
            r.abbrev,
            r.features,
            r.sites,
            block,
            r.cves
        );
    }
    out
}

/// Render Table 3 (new standards per round).
pub fn render_table3(per_round: &[f64]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: avg new standards per crawl round");
    let _ = writeln!(out, "  Round   Avg. new standards");
    for (i, v) in per_round.iter().enumerate() {
        let _ = writeln!(out, "  {:>5}   {:>18.2}", i + 2, v);
    }
    out
}

/// Render the Fig. 1 historical series.
pub fn render_fig1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 1: standards available and browser MLoC by year");
    let _ = writeln!(out, "  Year  Standards  Chrome  Firefox  Safari     IE");
    for p in bfu_webidl::history::BROWSER_HISTORY {
        let _ = writeln!(
            out,
            "  {:>4}  {:>9}  {:>6.1}  {:>7.1}  {:>6.1}  {:>5.1}",
            p.year, p.standards, p.chrome_mloc, p.firefox_mloc, p.safari_mloc, p.ie_mloc
        );
    }
    out
}

/// Render the Fig. 3 CDF with an ASCII sparkline.
pub fn render_fig3(cdf: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 3: CDF of standard popularity (sites using → fraction of standards)"
    );
    // Sample the CDF at decile fractions of the site-count axis.
    let max_x = cdf.last().map_or(0.0, |p| p.0);
    for decile in 0..=10 {
        let x = max_x * f64::from(decile) / 10.0;
        let y = cdf
            .iter()
            .take_while(|p| p.0 <= x)
            .last()
            .map_or(0.0, |p| p.1);
        let bar = "#".repeat((y * 40.0).round() as usize);
        let _ = writeln!(out, "  ≤{:>7.0} sites | {:<40} {:>5.1}%", x, bar, 100.0 * y);
    }
    out
}

/// Render the Fig. 4 scatter as a table sorted by block rate.
pub fn render_fig4(points: &[Fig4Point]) -> String {
    let mut rows = points.to_vec();
    rows.sort_by(|a, b| b.block_rate.partial_cmp(&a.block_rate).expect("no NaN"));
    let mut out = String::new();
    let _ = writeln!(out, "Fig 4: standard popularity vs block rate");
    let _ = writeln!(out, "  {:>8}  {:>6}  {:>7}", "Abbrev", "Sites", "Block%");
    for p in rows {
        let _ = writeln!(
            out,
            "  {:>8}  {:>6}  {:>7.1}",
            p.abbrev,
            p.sites,
            100.0 * p.block_rate
        );
    }
    out
}

/// Render Fig. 5 (site share vs visit share).
pub fn render_fig5(points: &[Fig5Point]) -> String {
    let mut rows = points.to_vec();
    rows.sort_by(|a, b| {
        b.site_fraction
            .partial_cmp(&a.site_fraction)
            .expect("no NaN")
    });
    let mut out = String::new();
    let _ = writeln!(out, "Fig 5: % of sites vs % of traffic-weighted visits");
    let _ = writeln!(
        out,
        "  {:>8}  {:>7}  {:>7}  {:>6}",
        "Abbrev", "Sites%", "Visit%", "Δ"
    );
    for p in rows {
        let _ = writeln!(
            out,
            "  {:>8}  {:>7.1}  {:>7.1}  {:>+6.1}",
            p.abbrev,
            100.0 * p.site_fraction,
            100.0 * p.visit_fraction,
            100.0 * (p.visit_fraction - p.site_fraction)
        );
    }
    out
}

/// Render Fig. 6 (intro year vs popularity, with block buckets).
pub fn render_fig6(points: &[Fig6Point]) -> String {
    let mut rows = points.to_vec();
    rows.sort_by_key(|p| (p.intro_year, std::cmp::Reverse(p.sites)));
    let mut out = String::new();
    let _ = writeln!(out, "Fig 6: standard introduction date vs popularity");
    let _ = writeln!(
        out,
        "  {:>4}  {:>8}  {:>6}  Block bucket",
        "Year", "Abbrev", "Sites"
    );
    for p in rows {
        let _ = writeln!(
            out,
            "  {:>4}  {:>8}  {:>6}  {}",
            p.intro_year,
            p.abbrev,
            p.sites,
            p.bucket.label()
        );
    }
    out
}

/// Render Fig. 7 (ad-only vs tracker-only block rates).
pub fn render_fig7(points: &[Fig7Point]) -> String {
    let mut rows = points.to_vec();
    rows.sort_by(|a, b| {
        (b.tracker_block_rate - b.ad_block_rate)
            .partial_cmp(&(a.tracker_block_rate - a.ad_block_rate))
            .expect("no NaN")
    });
    let mut out = String::new();
    let _ = writeln!(out, "Fig 7: ad-blocker vs tracker-blocker block rates");
    let _ = writeln!(
        out,
        "  {:>8}  {:>6}  {:>7}  {:>9}  (positive Δ = tracker-leaning)",
        "Abbrev", "Sites", "AdBlk%", "TrkBlk%"
    );
    for p in rows {
        let _ = writeln!(
            out,
            "  {:>8}  {:>6}  {:>7.1}  {:>9.1}",
            p.abbrev,
            p.sites,
            100.0 * p.ad_block_rate,
            100.0 * p.tracker_block_rate
        );
    }
    out
}

/// Render the Fig. 8 histogram.
pub fn render_fig8(d: &ComplexityDistribution) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 8: number of standards used per site");
    let density = d.histogram.density();
    let max_frac = density.iter().map(|(_, f)| *f).fold(0.0, f64::max);
    for (center, frac) in density {
        let n = center as u32;
        if frac == 0.0 && !(0..=45).contains(&n) {
            continue;
        }
        if n > 45 {
            break;
        }
        let bar = if max_frac > 0.0 {
            "#".repeat(((frac / max_frac) * 40.0).round() as usize)
        } else {
            String::new()
        };
        let _ = writeln!(out, "  {:>3} | {:<40} {:>5.1}%", n, bar, 100.0 * frac);
    }
    let _ = writeln!(out, "  median {:.0}, max {}", d.median(), d.max());
    out
}

/// Render the Fig. 9 validation histogram.
pub fn render_fig9(h: &ValidationHistogram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 9: new standards seen by a human but missed by the crawl"
    );
    let _ = writeln!(out, "  New standards   Sites");
    for (new, count) in &h.buckets {
        let _ = writeln!(out, "  {:>13}   {:>5}", new, count);
    }
    let _ = writeln!(
        out,
        "  {:.1}% of sites: nothing new (paper: 83.7%)",
        100.0 * h.zero_fraction()
    );
    out
}

/// Render the §5.3 headline statistics.
pub fn render_headline(h: &HeadlineStats) -> String {
    let mut out = String::new();
    let pct = |n: usize| 100.0 * n as f64 / h.total_features as f64;
    let _ = writeln!(out, "Headline statistics (§5.3)");
    let _ = writeln!(
        out,
        "  Features never used:          {:>5} / {} ({:.1}%; paper 689 = 49.5%)",
        h.features_never_used,
        h.total_features,
        pct(h.features_never_used)
    );
    let _ = writeln!(
        out,
        "  Features on <1% of sites:     {:>5} (paper 416)",
        h.features_under_one_percent
    );
    let _ = writeln!(
        out,
        "  Cumulative <1% incl. unused:  {:>5} ({:.1}%; paper 1105 = 79%)",
        h.features_never_used + h.features_under_one_percent,
        pct(h.features_never_used + h.features_under_one_percent)
    );
    let _ = writeln!(
        out,
        "  Features blocked ≥90%:        {:>5} ({:.1}%; paper ~10%)",
        h.features_blocked_90,
        pct(h.features_blocked_90)
    );
    let _ = writeln!(
        out,
        "  <1% of sites under blocking:  {:>5} ({:.1}%; paper 1159 = 83%)",
        h.features_under_one_percent_blocking,
        pct(h.features_under_one_percent_blocking)
    );
    let _ = writeln!(
        out,
        "  Standards never used:         {:>5} / 75 (paper 11)",
        h.standards_never_used
    );
    let _ = writeln!(
        out,
        "  Standards ≤1% of sites:       {:>5} / 75 (paper 28)",
        h.standards_at_or_below_one_percent
    );
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::{headline, FeaturePopularity, StandardPopularity};
    use crate::test_support::tiny_dataset;
    use bfu_crawler::BrowserProfile;

    #[test]
    fn all_renderers_produce_output() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let fp = FeaturePopularity::compute(&dataset, &registry);

        let t1 = crate::tables::table1(&dataset);
        assert!(render_table1(&t1).contains("Domains measured"));

        let t2 = crate::tables::table2(&sp, &registry);
        let rendered = render_table2(&t2);
        assert!(rendered.contains("H-C"));
        assert!(rendered.lines().count() > 10);

        let t3 = crate::convergence::new_standards_per_round(
            &dataset,
            &registry,
            BrowserProfile::Default,
        );
        assert!(render_table3(&t3).contains("Round"));

        assert!(render_fig1().contains("2013"));

        let cdf = sp.popularity_cdf(BrowserProfile::Default);
        assert!(render_fig3(&cdf).contains("sites"));

        let f4 = crate::blocking::fig4_points(&sp, &registry);
        assert!(render_fig4(&f4).contains("Block%"));

        let f5 = crate::traffic::fig5_points(&dataset, &registry);
        assert!(render_fig5(&f5).contains("Visit%"));

        let f6 = crate::age::fig6_points(&sp, &registry);
        assert!(render_fig6(&f6).contains("2004"));

        let f7 = crate::blocking::fig7_points(&sp, &registry);
        assert!(render_fig7(&f7).contains("TrkBlk%"));

        let cx = crate::complexity::complexity(&dataset, &registry);
        assert!(render_fig8(&cx).contains("median"));

        let v = crate::validation::histogram(&[(bfu_webgen::SiteId::new(0), 0)]);
        assert!(render_fig9(&v).contains("nothing new"));

        let h = headline(&fp, &sp);
        let hr = render_headline(&h);
        assert!(hr.contains("never used"));
        assert!(hr.contains("1392") || hr.contains("/ 1392"));
    }

    #[test]
    fn truncate_helper() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("exactly-ten", 11), "exactly-ten");
        let t = truncate("a very long standard name indeed", 10);
        assert!(t.chars().count() <= 10);
        assert!(t.ends_with('…'));
    }
}
