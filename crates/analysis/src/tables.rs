//! Tables 1 and 2 of the paper.

use crate::popularity::StandardPopularity;
use bfu_crawler::{BrowserProfile, CrawlHealth, Dataset};
use bfu_webidl::{FeatureRegistry, StandardId};

/// Table 1: the crawl's aggregate scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1 {
    /// Domains successfully measured (paper: 9,733).
    pub domains_measured: usize,
    /// Domains attempted.
    pub domains_attempted: usize,
    /// Total pages visited (paper: 2,240,484).
    pub pages_visited: u64,
    /// Total feature invocations recorded (paper: 21,511,926,733).
    pub invocations: u64,
    /// Total virtual interaction time, in days (paper: ~480).
    pub interaction_days: f64,
    /// Supervision summary: where the lost domains went (the paper's 267
    /// unreachable domains, classified).
    pub health: CrawlHealth,
}

/// Compute Table 1.
pub fn table1(dataset: &Dataset) -> Table1 {
    Table1 {
        domains_measured: dataset.measured_sites(),
        domains_attempted: dataset.sites.len(),
        pages_visited: dataset.total_pages(),
        invocations: dataset.total_invocations(),
        interaction_days: dataset.total_interaction_ms() as f64 / 86_400_000.0,
        health: dataset.health(),
    }
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Standard.
    pub std: StandardId,
    /// Full standard name.
    pub name: &'static str,
    /// Abbreviation.
    pub abbrev: &'static str,
    /// Instrumented features in the standard.
    pub features: u32,
    /// Sites using ≥1 feature by default.
    pub sites: u32,
    /// Block rate, if defined.
    pub block_rate: Option<f64>,
    /// CVEs against the standard's Firefox implementation (last 3 years).
    pub cves: u32,
}

/// Compute the full 75-row table, in the paper's order (CVE count
/// descending, then site count descending).
pub fn table2_full(sp: &StandardPopularity, registry: &FeatureRegistry) -> Vec<Table2Row> {
    let mut rows: Vec<Table2Row> = registry
        .standard_ids()
        .map(|std| {
            let info = registry.standard(std);
            Table2Row {
                std,
                name: info.name,
                abbrev: info.abbrev,
                features: info.features,
                sites: sp.sites_using(std, BrowserProfile::Default),
                block_rate: sp.block_rate(std),
                cves: info.cves,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.cves.cmp(&a.cves).then(b.sites.cmp(&a.sites)));
    rows
}

/// Table 2 as published: only standards used on ≥1% of sites or carrying at
/// least one CVE.
pub fn table2(sp: &StandardPopularity, registry: &FeatureRegistry) -> Vec<Table2Row> {
    let cutoff = 0.01 * sp.measured_sites as f64;
    table2_full(sp, registry)
        .into_iter()
        .filter(|r| f64::from(r.sites) >= cutoff || r.cves > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_dataset;

    #[test]
    fn table1_aggregates_consistent() {
        let (dataset, _) = tiny_dataset();
        let t1 = table1(&dataset);
        assert!(t1.domains_measured <= t1.domains_attempted);
        assert!(t1.pages_visited > 0);
        assert!(t1.invocations > 0);
        assert!(t1.interaction_days > 0.0);
    }

    #[test]
    fn table2_full_has_75_rows_sorted_by_cves() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let rows = table2_full(&sp, &registry);
        assert_eq!(rows.len(), 75);
        for w in rows.windows(2) {
            assert!(w[0].cves >= w[1].cves);
        }
        assert_eq!(rows[0].abbrev, "H-C", "Canvas leads with 15 CVEs");
    }

    #[test]
    fn published_table2_filters_rare_cveless_standards() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let all = table2_full(&sp, &registry);
        let published = table2(&sp, &registry);
        assert!(published.len() <= all.len());
        // Every CVE-carrying standard survives the filter.
        let cve_rows = all.iter().filter(|r| r.cves > 0).count();
        assert!(published.iter().filter(|r| r.cves > 0).count() == cve_rows);
    }

    #[test]
    fn feature_counts_sum_to_registry_total() {
        let (dataset, registry) = tiny_dataset();
        let sp = StandardPopularity::compute(&dataset, &registry);
        let total: u32 = table2_full(&sp, &registry).iter().map(|r| r.features).sum();
        assert_eq!(total, 1392);
    }
}
