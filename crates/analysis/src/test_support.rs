//! Shared test fixture: one small survey, crawled once and cached.
//!
//! Analysis unit tests all consume the same dataset; running the crawl once
//! per process keeps the suite fast while still exercising the full
//! pipeline (generation → crawl → measurement) rather than synthetic logs.

use bfu_crawler::{BrowserProfile, CrawlConfig, Dataset, Survey};
use bfu_webgen::{SyntheticWeb, WebConfig};
use bfu_webidl::FeatureRegistry;
use std::sync::OnceLock;

static FIXTURE: OnceLock<(Dataset, FeatureRegistry)> = OnceLock::new();

/// A cached 30-site crawl with all four browser profiles.
pub fn tiny_dataset() -> (Dataset, FeatureRegistry) {
    FIXTURE
        .get_or_init(|| {
            let web = SyntheticWeb::generate(WebConfig {
                sites: 30,
                seed: 1234,
                script_weight: 0,
            });
            let config = CrawlConfig {
                rounds_per_profile: 2,
                pages_per_site: 4,
                fanout: 3,
                page_budget_ms: 6_000,
                profiles: vec![
                    BrowserProfile::Default,
                    BrowserProfile::Blocking,
                    BrowserProfile::AdblockOnly,
                    BrowserProfile::GhosteryOnly,
                ],
                threads: 2,
                seed: 99,
                retry: bfu_crawler::RetryPolicy::default(),
                breaker: bfu_crawler::BreakerPolicy::default(),
                browser: bfu_crawler::BrowserConfig::default(),
                compile_cache: true,
            };
            let dataset = Survey::new(web, config).run();
            (dataset, FeatureRegistry::build())
        })
        .clone()
}

/// The survey behind the fixture (regenerated on demand — cheap relative to
/// the crawl; used by validation tests).
pub fn tiny_survey() -> Survey {
    let web = SyntheticWeb::generate(WebConfig {
        sites: 30,
        seed: 1234,
        script_weight: 0,
    });
    let config = CrawlConfig {
        rounds_per_profile: 2,
        pages_per_site: 4,
        fanout: 3,
        page_budget_ms: 6_000,
        profiles: vec![BrowserProfile::Default, BrowserProfile::Blocking],
        threads: 2,
        seed: 99,
        retry: bfu_crawler::RetryPolicy::default(),
        breaker: bfu_crawler::BreakerPolicy::default(),
        browser: bfu_crawler::BrowserConfig::default(),
        compile_cache: true,
    };
    Survey::new(web, config)
}
