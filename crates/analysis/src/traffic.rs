//! Fig. 5: standard popularity by *sites* vs by *site visits*.
//!
//! §5.5 weighs each site's standard usage by its traffic share to test
//! whether treating all sites equally distorts the analysis. The paper finds
//! standards cluster around the x = y line — popular and unpopular sites use
//! roughly the same standards — which licenses the unweighted treatment used
//! everywhere else.

use bfu_crawler::{BrowserProfile, Dataset};
use bfu_webidl::{FeatureRegistry, StandardId};

/// One standard's point on Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Standard.
    pub std: StandardId,
    /// Abbreviation.
    pub abbrev: &'static str,
    /// Fraction of measured sites using the standard (x-axis).
    pub site_fraction: f64,
    /// Fraction of traffic-weighted visits using it (y-axis).
    pub visit_fraction: f64,
}

/// Compute Fig. 5 points for all standards used at least once.
pub fn fig5_points(dataset: &Dataset, registry: &FeatureRegistry) -> Vec<Fig5Point> {
    let mut site_counts = vec![0u32; registry.standard_count()];
    let mut visit_weights = vec![0f64; registry.standard_count()];
    let mut measured = 0usize;
    let mut total_weight = 0f64;
    for site in &dataset.sites {
        if !site.measured(BrowserProfile::Default) {
            continue;
        }
        measured += 1;
        total_weight += site.traffic_weight;
        for s in site.standards_used(BrowserProfile::Default, registry) {
            site_counts[s.index()] += 1;
            visit_weights[s.index()] += site.traffic_weight;
        }
    }
    if measured == 0 || total_weight == 0.0 {
        return Vec::new();
    }
    registry
        .standard_ids()
        .filter(|s| site_counts[s.index()] > 0)
        .map(|s| Fig5Point {
            std: s,
            abbrev: registry.standard(s).abbrev,
            site_fraction: f64::from(site_counts[s.index()]) / measured as f64,
            visit_fraction: visit_weights[s.index()] / total_weight,
        })
        .collect()
}

/// Mean absolute deviation from the x = y line — the paper's qualitative
/// "clusters around x = y" claim, quantified.
pub fn mean_deviation_from_diagonal(points: &[Fig5Point]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points
        .iter()
        .map(|p| (p.visit_fraction - p.site_fraction).abs())
        .sum::<f64>()
        / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_dataset;

    #[test]
    fn fractions_bounded() {
        let (dataset, registry) = tiny_dataset();
        let points = fig5_points(&dataset, &registry);
        assert!(!points.is_empty());
        for p in &points {
            assert!((0.0..=1.0).contains(&p.site_fraction), "{}", p.abbrev);
            assert!((0.0..=1.0).contains(&p.visit_fraction), "{}", p.abbrev);
        }
    }

    #[test]
    fn ubiquitous_standards_sit_near_one_one() {
        let (dataset, registry) = tiny_dataset();
        let points = fig5_points(&dataset, &registry);
        let dom1 = points.iter().find(|p| p.abbrev == "DOM1").expect("DOM1");
        assert!(dom1.site_fraction > 0.8);
        assert!(dom1.visit_fraction > 0.8);
    }

    #[test]
    fn points_cluster_near_the_diagonal() {
        let (dataset, registry) = tiny_dataset();
        let points = fig5_points(&dataset, &registry);
        let dev = mean_deviation_from_diagonal(&points);
        // The paper's conclusion: weighting doesn't change the story. With a
        // mild popularity boost for top sites, deviation stays small.
        assert!(dev < 0.2, "mean |visit − site| = {dev:.3}");
    }

    #[test]
    fn empty_input_handled() {
        assert_eq!(mean_deviation_from_diagonal(&[]), 0.0);
    }
}
