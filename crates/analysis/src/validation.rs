//! Fig. 9: external validation — human browsing vs the automated crawl.
//!
//! §6.2: 92 traffic-weighted sites were browsed manually; for 83.7% of them
//! the human saw *no* standards the automated crawl had missed. The
//! histogram buckets sites by how many new standards manual interaction
//! surfaced.

use std::collections::BTreeMap;

/// The Fig. 9 histogram: `new standards observed → number of sites`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationHistogram {
    /// Bucket → site count, sorted by bucket.
    pub buckets: BTreeMap<usize, usize>,
    /// Total sites validated.
    pub total_sites: usize,
}

/// Build the histogram from `(site, new_standards)` pairs (the output of
/// `Survey::external_validation`).
pub fn histogram(results: &[(bfu_webgen::SiteId, usize)]) -> ValidationHistogram {
    let mut buckets = BTreeMap::new();
    for (_, new) in results {
        *buckets.entry(*new).or_insert(0) += 1;
    }
    ValidationHistogram {
        buckets,
        total_sites: results.len(),
    }
}

impl ValidationHistogram {
    /// Fraction of sites where the human saw nothing new (paper: 83.7%).
    pub fn zero_fraction(&self) -> f64 {
        if self.total_sites == 0 {
            return 0.0;
        }
        *self.buckets.get(&0).unwrap_or(&0) as f64 / self.total_sites as f64
    }

    /// The worst outlier (max new standards on one site; paper: 17).
    pub fn max_new(&self) -> usize {
        self.buckets.keys().max().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_webgen::SiteId;

    #[test]
    fn histogram_buckets_and_stats() {
        let results = vec![
            (SiteId::new(0), 0),
            (SiteId::new(1), 0),
            (SiteId::new(2), 2),
            (SiteId::new(3), 0),
            (SiteId::new(4), 5),
        ];
        let h = histogram(&results);
        assert_eq!(h.total_sites, 5);
        assert_eq!(h.buckets[&0], 3);
        assert_eq!(h.buckets[&2], 1);
        assert!((h.zero_fraction() - 0.6).abs() < 1e-9);
        assert_eq!(h.max_new(), 5);
    }

    #[test]
    fn empty_results() {
        let h = histogram(&[]);
        assert_eq!(h.zero_fraction(), 0.0);
        assert_eq!(h.max_new(), 0);
    }

    #[test]
    fn end_to_end_validation_runs_and_is_bounded() {
        // Run the real §6.2 machinery against the fixture web. The fixture
        // crawl is deliberately shallow (2 rounds × 4 pages × 6 s), so the
        // human *does* find things here; the paper-scale claim (83.7% of
        // sites show nothing new under 5 × 13 × 30 s crawls) is checked by
        // the full repro run recorded in EXPERIMENTS.md. Here we assert the
        // machinery works and the counts stay small in absolute terms.
        let (dataset, _) = crate::test_support::tiny_dataset();
        let survey = crate::test_support::tiny_survey();
        let run = survey.external_validation(&dataset, 8);
        assert!(!run.sites.is_empty());
        assert_eq!(run.requested, 8);
        assert_eq!(run.shortfall, run.requested - run.sites.len());
        let h = histogram(&run.sites);
        assert_eq!(h.total_sites, run.sites.len());
        assert!(
            h.max_new() <= 10,
            "human found implausibly many new standards: {:?}",
            h.buckets
        );
    }
}
