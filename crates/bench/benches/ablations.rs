//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. Filter matching: token index vs naive rule scan.
//! 2. Monkey page selection: path-novelty BFS vs uniform random choice.
//! 3. Instrumentation overhead: page load with vs without the extension.
//! 4. Crawl rounds: standards discovered after 1-5 rounds.

use bfu_blocker::FilterEngine;
use bfu_browser::{AllowAll, Browser};
use bfu_monkey::CrawlPlanner;
use bfu_net::{HttpRequest, ResourceType, SimNet, Url};
use bfu_util::{SimRng, VirtualClock};
use bfu_webgen::{SiteId, SyntheticWeb, WebConfig};
use bfu_webidl::FeatureRegistry;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::rc::Rc;

fn big_filter_list() -> String {
    let mut list = String::new();
    for i in 0..2_000 {
        list.push_str(&format!("||adhost{i}.example.net^$third-party\n"));
        if i % 5 == 0 {
            list.push_str(&format!("/banner{i}/*/creative^\n"));
        }
    }
    list.push_str("##.ad-slot\n");
    list
}

fn bench_filter_index_vs_naive(c: &mut Criterion) {
    let engine = FilterEngine::from_list(&big_filter_list());
    let reqs: Vec<HttpRequest> = (0..50)
        .map(|i| {
            HttpRequest::get(
                Url::parse(&format!("http://host{i}.example.org/page/{i}/asset.js")).unwrap(),
                ResourceType::Script,
            )
            .with_initiator(Url::parse("http://site.org/").unwrap())
        })
        .collect();
    let mut group = c.benchmark_group("ablation_filter_matching");
    group.bench_function("token_index", |b| {
        b.iter(|| {
            for r in &reqs {
                black_box(engine.match_request(r));
            }
        })
    });
    group.bench_function("naive_scan", |b| {
        b.iter(|| {
            for r in &reqs {
                black_box(engine.match_request_naive(r));
            }
        })
    });
    group.finish();
}

fn bench_planner_policies(c: &mut Criterion) {
    let candidates: Vec<Url> = (0..40)
        .map(|i| {
            Url::parse(&format!(
                "http://site.test/{}/item-{}",
                ["news", "sports", "biz", "tech"][i % 4],
                i
            ))
            .unwrap()
        })
        .collect();
    let mut group = c.benchmark_group("ablation_page_selection");
    group.bench_function("path_novelty_bfs", |b| {
        b.iter(|| {
            let mut planner = CrawlPlanner::new("site.test");
            let mut rng = SimRng::new(1);
            for _ in 0..4 {
                black_box(planner.select(&candidates, 3, &mut rng));
            }
        })
    });
    group.bench_function("uniform_random", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            for _ in 0..4 {
                let picks: Vec<&Url> = (0..3).filter_map(|_| rng.choose(&candidates)).collect();
                black_box(picks);
            }
        })
    });
    group.finish();
}

fn bench_instrumentation_overhead(c: &mut Criterion) {
    let web = SyntheticWeb::generate(WebConfig {
        sites: 10,
        seed: 21,
        script_weight: 0,
    });
    let site = (0..10)
        .map(SiteId::new)
        .find(|&s| !web.plan(s).dead && !web.plan(s).no_js)
        .expect("live site");
    let domain = web.plan(site).site.domain.clone();
    let registry = Rc::new((**web.registry()).clone());
    let url = Url::parse(&format!("http://{domain}/")).unwrap();

    let mut group = c.benchmark_group("ablation_instrumentation");
    group.sample_size(20);
    for (label, instrument) in [("instrumented", true), ("bare_engine", false)] {
        let registry = registry.clone();
        let web = web.clone();
        let url = url.clone();
        group.bench_function(label, move |b| {
            let mut browser = Browser::new(registry.clone());
            browser.config.instrument = instrument;
            let mut net = SimNet::new(SimRng::new(4));
            web.install_into(&mut net);
            b.iter(|| {
                let mut clock = VirtualClock::new();
                black_box(browser.load(&mut net, &url, &AllowAll, &mut clock).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_rounds_coverage(c: &mut Criterion) {
    // How much does each additional round cost? (Table 3's design question.)
    let mut group = c.benchmark_group("ablation_rounds");
    group.sample_size(10);
    for rounds in [1u32, 3, 5] {
        group.bench_function(format!("rounds_{rounds}"), move |b| {
            b.iter(|| {
                let s = bfu_core::Study::run(bfu_core::StudyConfig {
                    sites: 5,
                    seed: 9,
                    rounds,
                    pages_per_site: 3,
                    page_budget_ms: 3_000,
                    fig7_profiles: false,
                    threads: 1,
                });
                black_box(s.dataset().total_pages())
            })
        });
    }
    group.finish();
}

fn bench_registry_build(c: &mut Criterion) {
    c.bench_function("webidl/registry_build_from_corpus", |b| {
        b.iter(|| black_box(FeatureRegistry::build()))
    });
}

fn bench_webgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("webgen");
    group.sample_size(20);
    group.bench_function("generate_1000_sites", |b| {
        b.iter(|| {
            black_box(SyntheticWeb::generate(WebConfig {
                sites: 1000,
                seed: 5,
                script_weight: 0,
            }))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_filter_index_vs_naive,
    bench_planner_policies,
    bench_instrumentation_overhead,
    bench_rounds_coverage,
    bench_registry_build,
    bench_webgen,
);
criterion_main!(benches);
