//! One Criterion bench per table and figure: each benchmark regenerates the
//! corresponding artifact (the analysis over a crawled dataset, plus the
//! crawl workload itself for Table 1's scale numbers).

use bfu_analysis::{age, blocking, complexity, convergence, tables, traffic, validation};
use bfu_analysis::{headline, FeaturePopularity, StandardPopularity};
use bfu_core::{Study, StudyConfig};
use bfu_crawler::BrowserProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

static STUDY: OnceLock<Study> = OnceLock::new();

fn study() -> &'static Study {
    STUDY.get_or_init(|| Study::run(StudyConfig::quick(60, 11)))
}

fn bench_table1_crawl(c: &mut Criterion) {
    // The workload behind Table 1: generating + crawling sites end to end.
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("crawl_10_sites_end_to_end", |b| {
        b.iter(|| {
            let s = Study::run(StudyConfig {
                sites: 10,
                seed: 3,
                rounds: 1,
                pages_per_site: 3,
                page_budget_ms: 3_000,
                fig7_profiles: false,
                threads: 1,
            });
            black_box(s.dataset().total_invocations())
        })
    });
    group.bench_function("aggregate", |b| {
        let ds = study().dataset();
        b.iter(|| black_box(tables::table1(ds)))
    });
    group.finish();
}

fn bench_table2_aggregation(c: &mut Criterion) {
    let s = study();
    c.bench_function("table2/per_standard_aggregation", |b| {
        b.iter(|| {
            let sp = StandardPopularity::compute(s.dataset(), s.registry());
            black_box(tables::table2_full(&sp, s.registry()))
        })
    });
}

fn bench_table3_convergence(c: &mut Criterion) {
    let s = study();
    c.bench_function("table3/new_standards_per_round", |b| {
        b.iter(|| {
            black_box(convergence::new_standards_per_round(
                s.dataset(),
                s.registry(),
                BrowserProfile::Default,
            ))
        })
    });
}

fn bench_fig3_cdf(c: &mut Criterion) {
    let s = study();
    let sp = StandardPopularity::compute(s.dataset(), s.registry());
    c.bench_function("fig3/popularity_cdf", |b| {
        b.iter(|| black_box(sp.popularity_cdf(BrowserProfile::Default)))
    });
}

fn bench_fig4_block_rates(c: &mut Criterion) {
    let s = study();
    let sp = StandardPopularity::compute(s.dataset(), s.registry());
    c.bench_function("fig4/points", |b| {
        b.iter(|| black_box(blocking::fig4_points(&sp, s.registry())))
    });
}

fn bench_fig5_traffic_weighting(c: &mut Criterion) {
    let s = study();
    c.bench_function("fig5/traffic_weighted_points", |b| {
        b.iter(|| black_box(traffic::fig5_points(s.dataset(), s.registry())))
    });
}

fn bench_fig6_age(c: &mut Criterion) {
    let s = study();
    let sp = StandardPopularity::compute(s.dataset(), s.registry());
    c.bench_function("fig6/points", |b| {
        b.iter(|| black_box(age::fig6_points(&sp, s.registry())))
    });
}

fn bench_fig7_dual_blocking(c: &mut Criterion) {
    let s = study();
    let sp = StandardPopularity::compute(s.dataset(), s.registry());
    c.bench_function("fig7/dual_blocking_points", |b| {
        b.iter(|| black_box(blocking::fig7_points(&sp, s.registry())))
    });
}

fn bench_fig8_complexity(c: &mut Criterion) {
    let s = study();
    c.bench_function("fig8/complexity_distribution", |b| {
        b.iter(|| black_box(complexity::complexity(s.dataset(), s.registry())))
    });
}

fn bench_fig9_validation(c: &mut Criterion) {
    let s = study();
    let results: Vec<(bfu_webgen::SiteId, usize)> = (0..92)
        .map(|i| (bfu_webgen::SiteId::new(i % 60), (i % 7) as usize / 3))
        .collect();
    c.bench_function("fig9/histogram", |b| {
        b.iter(|| black_box(validation::histogram(&results)))
    });
    let mut group = c.benchmark_group("fig9_sessions");
    group.sample_size(10);
    group.bench_function("human_session_5_sites", |b| {
        b.iter(|| black_box(s.external_validation(5)))
    });
    group.finish();
}

fn bench_fig1_history(c: &mut Criterion) {
    c.bench_function("fig1/render_history", |b| {
        b.iter(|| black_box(bfu_analysis::report::render_fig1()))
    });
}

fn bench_headline(c: &mut Criterion) {
    let s = study();
    c.bench_function("headline/feature_popularity_pass", |b| {
        b.iter(|| {
            let fp = FeaturePopularity::compute(s.dataset(), s.registry());
            let sp = StandardPopularity::compute(s.dataset(), s.registry());
            black_box(headline(&fp, &sp))
        })
    });
}

criterion_group!(
    benches,
    bench_table1_crawl,
    bench_table2_aggregation,
    bench_table3_convergence,
    bench_fig1_history,
    bench_fig3_cdf,
    bench_fig4_block_rates,
    bench_fig5_traffic_weighting,
    bench_fig6_age,
    bench_fig7_dual_blocking,
    bench_fig8_complexity,
    bench_fig9_validation,
    bench_headline,
);
criterion_main!(benches);
