//! Engine microbenchmarks: tree-walk interpreter vs bytecode VM on the
//! script shapes that dominate page execution — arithmetic dispatch loops,
//! prototype-chain property access, and call-heavy closure code — plus the
//! compile-vs-parse pipeline costs the chunk cache amortizes.
//!
//! These isolate the raw dispatch win. The survey-level picture (where
//! parse/compile time dominates scratch crawls and the chunk cache carries
//! most of the speedup) lives in `crawl_bench` / `BENCH_crawl.json`.

use bfu_script::{compile, parser, run_chunk, Interpreter, ResourceBudget};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A budget generous enough that no benchmark workload traps.
fn bench_budget() -> ResourceBudget {
    ResourceBudget {
        max_steps: 50_000_000,
        max_heap_cells: 1 << 20,
        max_string_bytes: 64 << 20,
        max_call_depth: 64,
    }
}

/// Tight arithmetic loop inside a function: pure dispatch over slot-resolved
/// locals, no allocation — the shape of real hot loops, and where the VM's
/// compile-time local resolution pays.
const DISPATCH_LOOP: &str = "\
    function hot() { \
        var acc = 0; var i = 0; \
        while (i < 20000) { acc = acc + i * 3 - (i / 2); i = i + 1; } \
        return acc; \
    } \
    hot();";

/// The same loop at top level: globals resolve through the environment
/// chain in both engines (top-level code closes over the live global scope,
/// so the compiler cannot slot it), isolating pure stack-machine overhead.
const GLOBAL_LOOP: &str = "\
    var acc = 0; var i = 0; \
    while (i < 20000) { acc = acc + i * 3 - (i / 2); i = i + 1; } \
    acc;";

/// Prototype-chain property traffic: reads and writes through `this`.
const PROPERTY_ACCESS: &str = "\
    function Point(x, y) { this.x = x; this.y = y; } \
    Point.prototype = { \
        norm: function () { return this.x * this.x + this.y * this.y; }, \
        shift: function (d) { this.x = this.x + d; this.y = this.y - d; } \
    }; \
    var p = new Point(3, 4); var total = 0; var i = 0; \
    while (i < 4000) { p.shift(1); total = total + p.norm(); i = i + 1; } \
    total;";

/// Call-heavy closure code: the call protocol and environment capture.
const CALL_LOOP: &str = "\
    function adder(n) { return function (x) { return x + n; }; } \
    var add3 = adder(3); var add7 = adder(7); \
    var total = 0; var i = 0; \
    while (i < 5000) { total = add3(add7(total)) % 100000; i = i + 1; } \
    total;";

fn bench_workload(c: &mut Criterion, name: &str, src: &str) {
    let program = parser::parse(src).expect("benchmark source parses");
    let chunk = compile(&program).expect("benchmark source compiles");
    let mut group = c.benchmark_group(name);
    group.bench_function("treewalk", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new();
            interp.set_budget(&bench_budget());
            black_box(interp.run(black_box(&program)).expect("treewalk run"));
        })
    });
    group.bench_function("vm", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new();
            interp.set_budget(&bench_budget());
            black_box(run_chunk(&mut interp, black_box(&chunk)).expect("vm run"));
        })
    });
    group.finish();
}

fn bench_dispatch_loop(c: &mut Criterion) {
    bench_workload(c, "vm_dispatch_loop", DISPATCH_LOOP);
}

fn bench_global_loop(c: &mut Criterion) {
    bench_workload(c, "vm_global_loop", GLOBAL_LOOP);
}

fn bench_property_access(c: &mut Criterion) {
    bench_workload(c, "vm_property_access", PROPERTY_ACCESS);
}

fn bench_call_loop(c: &mut Criterion) {
    bench_workload(c, "vm_call_loop", CALL_LOOP);
}

/// The pipeline costs the chunk cache amortizes: parse alone (what the AST
/// cache saves the tree-walk engine), parse + compile (the eager cost the
/// VM pays per unique source: top-level lowering only — inner bodies are
/// lowered lazily on first call), and parse + compile + force-every-body
/// (what eager whole-program lowering would have cost on a library bundle
/// that is parsed in full but never executed).
fn bench_pipeline(c: &mut Criterion) {
    // A library-bundle-shaped source: many small functions, mostly parsed,
    // never executed — the payload `script_weight` models.
    let mut src = String::new();
    for i in 0..200 {
        src.push_str(&format!(
            "function lib{i}(a, b) {{ var t = a + b * {i}; \
             if (t > 10) {{ return t - {i}; }} return t; }} "
        ));
    }
    fn force_all(f: &bfu_script::FuncChunk) {
        for lazy in f.funcs.iter() {
            force_all(lazy.force().expect("lowers"));
        }
    }
    let mut group = c.benchmark_group("vm_pipeline");
    group.bench_function("parse", |b| {
        b.iter(|| black_box(parser::parse(black_box(&src)).expect("parses")))
    });
    group.bench_function("parse_and_compile", |b| {
        b.iter(|| {
            let program = parser::parse(black_box(&src)).expect("parses");
            black_box(compile(&program).expect("compiles"))
        })
    });
    group.bench_function("parse_compile_force_all", |b| {
        b.iter(|| {
            let program = parser::parse(black_box(&src)).expect("parses");
            let chunk = compile(&program).expect("compiles");
            force_all(&chunk.main);
            black_box(chunk)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dispatch_loop,
    bench_global_loop,
    bench_property_access,
    bench_call_loop,
    bench_pipeline
);
criterion_main!(benches);
