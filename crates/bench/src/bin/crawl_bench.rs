//! `crawl_bench` — wall-clock comparison of the same survey crawled with
//! the content-addressed compilation cache off (scratch) and on (cached),
//! written to `BENCH_crawl.json`:
//!
//! - **scratch** — every page visit re-lexes and re-parses every script;
//! - **cached** — one shared [`bfu_browser::CompileCache`] across all
//!   sites, rounds, profiles, and worker threads, so each distinct script
//!   source is parsed exactly once for the whole survey.
//!
//! The two datasets must fingerprint identically (the cache is memoization,
//! not measurement — the run aborts if they diverge), so the only reported
//! difference is wall time plus the cache's own hit/miss accounting.
//!
//! The benchmark web is generated with a non-zero `script_weight`: every
//! script carries an inert library bundle (parsed in full, never executed),
//! the payload shape real pages ship and the reason production engines have
//! compilation caches at all. `--script-weight 0` measures the generator's
//! minimal scripts instead, where parse time is a much smaller slice.
//!
//! ```text
//! cargo run -p bfu-bench --release --bin crawl_bench -- \
//!     [--sites N] [--seed N] [--rounds N] [--threads N] \
//!     [--script-weight N] [--out PATH]
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bfu_crawler::{CrawlConfig, Dataset, Survey};
use bfu_webgen::{SyntheticWeb, WebConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    sites: usize,
    seed: u64,
    rounds: u32,
    threads: usize,
    script_weight: u32,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut sites = 48usize;
    let mut seed = 0xC4A7_BE7Cu64;
    let mut rounds = 4u32;
    let mut threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut script_weight = 400u32;
    let mut out = std::path::PathBuf::from("BENCH_crawl.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--sites" => {
                sites = argv
                    .next()
                    .ok_or("--sites needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --sites: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--rounds" => {
                rounds = argv
                    .next()
                    .ok_or("--rounds needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --rounds: {e}"))?;
            }
            "--threads" => {
                threads = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--script-weight" => {
                script_weight = argv
                    .next()
                    .ok_or("--script-weight needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --script-weight: {e}"))?;
            }
            "--out" => {
                out = std::path::PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: crawl_bench [--sites N] [--seed N] [--rounds N] [--threads N] \
                     [--script-weight N] [--out PATH]",
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(Args {
        sites,
        seed,
        rounds,
        threads,
        script_weight,
        out,
    })
}

fn config(args: &Args, compile_cache: bool) -> CrawlConfig {
    let mut config = CrawlConfig::quick(args.seed);
    config.rounds_per_profile = args.rounds;
    config.threads = args.threads;
    config.compile_cache = compile_cache;
    config
}

/// Crawl the benchmark web once, returning the dataset and elapsed seconds.
fn crawl(args: &Args, compile_cache: bool) -> (Dataset, f64) {
    let web = SyntheticWeb::generate(WebConfig {
        sites: args.sites,
        seed: args.seed,
        script_weight: args.script_weight,
    });
    let survey = Survey::new(web, config(args, compile_cache));
    let t0 = Instant::now();
    let dataset = survey.run();
    (dataset, t0.elapsed().as_secs_f64())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // Untimed warmup at the cached configuration (the larger footprint of
    // the two): the first heavy crawl in a process pays for faulting in
    // every fresh heap page from the OS, a cost that belongs to neither
    // configuration. After it, both timed runs recycle warm memory.
    eprintln!(
        "# warmup: {} sites x {} rounds, untimed…",
        args.sites, args.rounds
    );
    let (warmup, _) = crawl(&args, true);
    let fingerprint = warmup.fingerprint();

    eprintln!("# scratch: same survey, cache off…");
    let (scratch, scratch_s) = crawl(&args, false);
    if scratch.fingerprint() != fingerprint {
        return Err("scratch dataset fingerprint diverged from warmup run".into());
    }

    eprintln!("# cached: same survey, shared compilation cache…");
    let (cached, cached_s) = crawl(&args, true);
    if cached.fingerprint() != fingerprint {
        return Err("cached dataset fingerprint diverged from scratch run".into());
    }
    let totals = cached.cache;
    if !totals.enabled {
        return Err("cached run reports the cache as disabled".into());
    }

    let speedup = scratch_s / cached_s.max(1e-9);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"sites\": {},", args.sites);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"rounds_per_profile\": {},", args.rounds);
    let _ = writeln!(json, "  \"threads\": {},", args.threads);
    let _ = writeln!(json, "  \"script_weight\": {},", args.script_weight);
    let _ = writeln!(json, "  \"fingerprint\": \"{fingerprint:016x}\",");
    let _ = writeln!(json, "  \"fingerprints_match\": true,");
    let _ = writeln!(json, "  \"survey_scratch_s\": {scratch_s:.3},");
    let _ = writeln!(json, "  \"survey_cached_s\": {cached_s:.3},");
    let _ = writeln!(json, "  \"cached_speedup\": {speedup:.2},");
    json.push_str("  \"script_cache\": {\n");
    let _ = writeln!(json, "    \"hits\": {},", totals.script_hits);
    let _ = writeln!(json, "    \"misses\": {},", totals.script_misses);
    let _ = writeln!(
        json,
        "    \"negative_hits\": {},",
        totals.script_negative_hits
    );
    let _ = writeln!(json, "    \"unique_scripts\": {},", totals.unique_scripts);
    let _ = writeln!(json, "    \"unique_frames\": {},", totals.unique_frames);
    let _ = writeln!(json, "    \"hit_rate\": {:.6}", totals.hit_rate());
    json.push_str("  }\n}\n");
    std::fs::write(&args.out, &json).map_err(|e| e.to_string())?;
    eprintln!(
        "# scratch {scratch_s:.2}s | cached {cached_s:.2}s ({speedup:.2}x) | \
         {} unique scripts, {:.1}% hit rate → {}",
        totals.unique_scripts,
        100.0 * totals.hit_rate(),
        args.out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
