//! `crawl_bench` — wall-clock comparison of the same survey across the
//! engine × cache grid, written to `BENCH_crawl.json`:
//!
//! - **engine**: the tree-walk interpreter (the differential oracle) vs the
//!   bytecode VM (the production default);
//! - **cache**: scratch (every page visit re-lexes, re-parses, and — under
//!   the VM — re-compiles every script) vs cached (one shared
//!   [`bfu_browser::CompileCache`] across all sites, rounds, profiles, and
//!   worker threads, so each distinct source is parsed/compiled exactly
//!   once for the whole survey).
//!
//! All four datasets must fingerprint identically (engine and cache are
//! execution strategy and memoization, not measurement — the run aborts if
//! any cell diverges), so the only reported difference is wall time plus
//! the cache's own hit/miss accounting. The headline `vm_speedup` compares
//! the shipped configuration (VM + chunk cache) against the original
//! baseline (tree-walk, scratch).
//!
//! The benchmark web is generated with a non-zero `script_weight`: every
//! script carries an inert library bundle (parsed in full, never executed),
//! the payload shape real pages ship and the reason production engines have
//! compilation caches at all. `--script-weight 0` measures the generator's
//! minimal scripts instead, where parse time is a much smaller slice.
//!
//! ```text
//! cargo run -p bfu-bench --release --bin crawl_bench -- \
//!     [--sites N] [--seed N] [--rounds N] [--threads N] \
//!     [--script-weight N] [--out PATH]
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bfu_browser::Engine;
use bfu_crawler::{CrawlConfig, Dataset, Survey};
use bfu_webgen::{SyntheticWeb, WebConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    sites: usize,
    seed: u64,
    rounds: u32,
    threads: usize,
    script_weight: u32,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut sites = 48usize;
    let mut seed = 0xC4A7_BE7Cu64;
    let mut rounds = 4u32;
    let mut threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut script_weight = 400u32;
    let mut out = std::path::PathBuf::from("BENCH_crawl.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--sites" => {
                sites = argv
                    .next()
                    .ok_or("--sites needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --sites: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--rounds" => {
                rounds = argv
                    .next()
                    .ok_or("--rounds needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --rounds: {e}"))?;
            }
            "--threads" => {
                threads = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--script-weight" => {
                script_weight = argv
                    .next()
                    .ok_or("--script-weight needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --script-weight: {e}"))?;
            }
            "--out" => {
                out = std::path::PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: crawl_bench [--sites N] [--seed N] [--rounds N] [--threads N] \
                     [--script-weight N] [--out PATH]",
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(Args {
        sites,
        seed,
        rounds,
        threads,
        script_weight,
        out,
    })
}

fn config(args: &Args, engine: Engine, compile_cache: bool) -> CrawlConfig {
    let mut config = CrawlConfig::quick(args.seed);
    config.rounds_per_profile = args.rounds;
    config.threads = args.threads;
    config.compile_cache = compile_cache;
    config.browser.engine = engine;
    config
}

fn engine_label(engine: Engine) -> &'static str {
    match engine {
        Engine::TreeWalk => "treewalk",
        Engine::Vm => "vm",
    }
}

/// Crawl the benchmark web once, returning the dataset and elapsed seconds.
fn crawl(args: &Args, engine: Engine, compile_cache: bool) -> (Dataset, f64) {
    let web = SyntheticWeb::generate(WebConfig {
        sites: args.sites,
        seed: args.seed,
        script_weight: args.script_weight,
    });
    let survey = Survey::new(web, config(args, engine, compile_cache));
    let t0 = Instant::now();
    let dataset = survey.run();
    (dataset, t0.elapsed().as_secs_f64())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // Untimed warmup at the heaviest configuration: the first heavy crawl
    // in a process pays for faulting in every fresh heap page from the OS,
    // a cost that belongs to no grid cell. After it, every timed run
    // recycles warm memory.
    eprintln!(
        "# warmup: {} sites x {} rounds, untimed…",
        args.sites, args.rounds
    );
    let (warmup, _) = crawl(&args, Engine::Vm, true);
    let fingerprint = warmup.fingerprint();

    // The full engine × cache grid, every cell checked against the warmup
    // fingerprint before any timing is trusted.
    let mut times = [[0f64; 2]; 2]; // [engine][cache]
    let mut vm_cached_dataset = None;
    for (ei, engine) in [Engine::TreeWalk, Engine::Vm].into_iter().enumerate() {
        for (ci, cache_on) in [false, true].into_iter().enumerate() {
            let label = engine_label(engine);
            let mode = if cache_on { "cached" } else { "scratch" };
            eprintln!("# {label} / {mode}: same survey…");
            let (ds, secs) = crawl(&args, engine, cache_on);
            if ds.fingerprint() != fingerprint {
                return Err(format!(
                    "{label}/{mode} dataset fingerprint diverged from warmup run"
                ));
            }
            if cache_on && !ds.cache.enabled {
                return Err(format!("{label}/{mode} run reports the cache as disabled"));
            }
            times[ei][ci] = secs;
            if engine == Engine::Vm && cache_on {
                vm_cached_dataset = Some(ds);
            }
        }
    }
    let Some(vm_cached) = vm_cached_dataset else {
        return Err("grid did not produce a vm/cached dataset".into());
    };
    let totals = vm_cached.cache;
    if totals.chunk_misses == 0 {
        return Err("vm/cached run never compiled a chunk".into());
    }

    let [[tree_scratch_s, tree_cached_s], [vm_scratch_s, vm_cached_s]] = times;
    // Headline: the shipped configuration (VM + chunk cache) against the
    // original baseline (tree-walk from scratch).
    let vm_speedup = tree_scratch_s / vm_cached_s.max(1e-9);
    let cached_speedup = tree_scratch_s / tree_cached_s.max(1e-9);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"sites\": {},", args.sites);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"rounds_per_profile\": {},", args.rounds);
    let _ = writeln!(json, "  \"threads\": {},", args.threads);
    let _ = writeln!(json, "  \"script_weight\": {},", args.script_weight);
    let _ = writeln!(json, "  \"fingerprint\": \"{fingerprint:016x}\",");
    let _ = writeln!(json, "  \"fingerprints_match\": true,");
    json.push_str("  \"engines\": {\n");
    let _ = writeln!(
        json,
        "    \"treewalk\": {{ \"scratch_s\": {tree_scratch_s:.3}, \"cached_s\": {tree_cached_s:.3} }},"
    );
    let _ = writeln!(
        json,
        "    \"vm\": {{ \"scratch_s\": {vm_scratch_s:.3}, \"cached_s\": {vm_cached_s:.3} }}"
    );
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"survey_scratch_s\": {tree_scratch_s:.3},");
    let _ = writeln!(json, "  \"survey_cached_s\": {tree_cached_s:.3},");
    let _ = writeln!(json, "  \"cached_speedup\": {cached_speedup:.2},");
    let _ = writeln!(json, "  \"vm_speedup\": {vm_speedup:.2},");
    json.push_str("  \"script_cache\": {\n");
    let _ = writeln!(json, "    \"hits\": {},", totals.script_hits);
    let _ = writeln!(json, "    \"misses\": {},", totals.script_misses);
    let _ = writeln!(
        json,
        "    \"negative_hits\": {},",
        totals.script_negative_hits
    );
    let _ = writeln!(json, "    \"unique_scripts\": {},", totals.unique_scripts);
    let _ = writeln!(json, "    \"unique_frames\": {},", totals.unique_frames);
    let _ = writeln!(json, "    \"chunk_hits\": {},", totals.chunk_hits);
    let _ = writeln!(json, "    \"chunk_misses\": {},", totals.chunk_misses);
    let _ = writeln!(
        json,
        "    \"chunk_negative_hits\": {},",
        totals.chunk_negative_hits
    );
    let _ = writeln!(json, "    \"unique_chunks\": {},", totals.unique_chunks);
    let _ = writeln!(json, "    \"hit_rate\": {:.6}", totals.hit_rate());
    json.push_str("  }\n}\n");
    std::fs::write(&args.out, &json).map_err(|e| e.to_string())?;
    eprintln!(
        "# treewalk {tree_scratch_s:.2}s/{tree_cached_s:.2}s | \
         vm {vm_scratch_s:.2}s/{vm_cached_s:.2}s (scratch/cached) | \
         vm_speedup {vm_speedup:.2}x | {} unique chunks, {:.1}% hit rate → {}",
        totals.unique_chunks,
        100.0 * totals.hit_rate(),
        args.out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
