//! `fabric_bench` — survey throughput across workers × storage backends.
//!
//! Runs the same survey single-process (the baseline) and then through
//! the lease fabric at each worker count over each backend — the POSIX
//! in-memory backend, the whole-object store (`bfu-objstore`'s adapter
//! over the simulated object store, fault-free), the **remote** stack
//! (`RemoteObjectStore` → framed wire protocol → `ObjectServer`, over a
//! clean simulated connection), and the **replicated** front (quorum
//! writes and reads over three object-store replicas — the column prices
//! the replication protocol: every mutation probed, linearized, and
//! fanned) — reporting sites/second and cross-checking that every cell
//! of the grid produces the identical dataset fingerprint: the fabric's
//! correctness contract, measured alongside its scaling and its
//! storage-semantics portability.
//!
//! ```text
//! cargo run -p bfu-bench --release --bin fabric_bench -- \
//!     [--sites N] [--seed N] [--per-lease N] [--out PATH]
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bfu_core::fabric::{run_survey_fabric, FabricConfig};
use bfu_core::objstore::{
    ObjFaultPlan, ObjectBackend, ObjectServer, ObjectStore, RemoteClock, RemoteObjectStore,
    RemotePolicy, ReplicatedObjectStore, SimObjectStore, SimTransport,
};
use bfu_core::store::{FaultFs, StorageBackend, StoreFaultPlan};
use bfu_crawler::{CrawlConfig, Survey};
use bfu_net::WireFaultPlan;
use bfu_util::VirtualClock;
use bfu_webgen::{SyntheticWeb, WebConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    sites: usize,
    seed: u64,
    per_lease: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut sites = 48usize;
    let mut seed = 61u64;
    let mut per_lease = 4usize;
    let mut out = std::path::PathBuf::from("BENCH_fabric.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--sites" => {
                sites = argv
                    .next()
                    .ok_or("--sites needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --sites: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--per-lease" => {
                per_lease = argv
                    .next()
                    .ok_or("--per-lease needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --per-lease: {e}"))?;
                if per_lease == 0 {
                    return Err("--per-lease must be >= 1".into());
                }
            }
            "--out" => {
                out = std::path::PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: fabric_bench [--sites N] [--seed N] [--per-lease N] [--out PATH]",
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(Args {
        sites,
        seed,
        per_lease,
        out,
    })
}

fn survey_for(sites: usize, seed: u64) -> Survey {
    let web = SyntheticWeb::generate(WebConfig {
        sites,
        seed,
        script_weight: 0,
    });
    let mut config = CrawlConfig::quick(seed ^ 0xBEEF);
    // The fabric's workers are the parallelism under test; keep each
    // worker's own crawl single-threaded so worker count is the only
    // variable.
    config.threads = 1;
    config.rounds_per_profile = 1;
    config.pages_per_site = 2;
    config.page_budget_ms = 2_000;
    Survey::new(web, config)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let survey = survey_for(args.sites, args.seed);

    eprintln!("# baseline: single-process run ({} sites)…", args.sites);
    let t0 = Instant::now();
    let baseline_fp = survey.run().fingerprint();
    let baseline_s = t0.elapsed().as_secs_f64();
    let baseline_rate = args.sites as f64 / baseline_s.max(1e-9);

    let mut rows = Vec::new();
    let mut all_match = true;
    for workers in [1usize, 2, 4] {
        for backend_kind in ["posix", "objstore", "remote", "replicated"] {
            eprintln!("# fabric: {workers} worker(s) × {backend_kind}…");
            let backend: Arc<dyn StorageBackend> = match backend_kind {
                "posix" => Arc::new(FaultFs::new(StoreFaultPlan::none())),
                "objstore" => Arc::new(ObjectBackend::new(Arc::new(SimObjectStore::new(
                    ObjFaultPlan::none(),
                )))),
                // Majority quorums over three healthy replicas: the
                // column prices probe + linearize + fan-out on every
                // mutation and quorum probes on every read.
                "replicated" => {
                    let replicas: Vec<Arc<dyn ObjectStore>> = (0..3)
                        .map(|_| {
                            Arc::new(SimObjectStore::new(ObjFaultPlan::none()))
                                as Arc<dyn ObjectStore>
                        })
                        .collect();
                    let store = ReplicatedObjectStore::majority(replicas)
                        .map_err(|e| format!("replicated store: {e}"))?;
                    Arc::new(ObjectBackend::new(Arc::new(store) as Arc<dyn ObjectStore>))
                }
                // The full wire stack on a clean connection: every op is
                // framed, checksummed, and served by an ObjectServer; the
                // column prices the protocol itself.
                _ => {
                    let server = Arc::new(ObjectServer::new(Arc::new(SimObjectStore::new(
                        ObjFaultPlan::none(),
                    ))
                        as Arc<dyn ObjectStore>));
                    let clock = Arc::new(std::sync::Mutex::new(VirtualClock::new()));
                    let remote = Arc::new(RemoteObjectStore::new(
                        1,
                        Box::new(SimTransport::new(
                            server,
                            WireFaultPlan::none(),
                            Arc::clone(&clock),
                            2,
                        )),
                        RemoteClock::Virtual(Arc::clone(&clock)),
                        RemotePolicy::default(),
                    ));
                    Arc::new(ObjectBackend::with_clock(
                        remote as Arc<dyn ObjectStore>,
                        clock,
                    ))
                }
            };
            let cfg = FabricConfig {
                workers,
                sites_per_lease: args.per_lease,
                ..FabricConfig::default()
            };
            let t0 = Instant::now();
            let outcome = run_survey_fabric(&survey, backend, &cfg)
                .map_err(|e| format!("{workers}-worker {backend_kind} fabric: {e}"))?;
            let elapsed = t0.elapsed().as_secs_f64();
            let fp = outcome.dataset.fingerprint();
            let matches = fp == baseline_fp;
            all_match &= matches;
            rows.push((
                workers,
                backend_kind,
                elapsed,
                fp,
                matches,
                outcome.stats,
                outcome.health.backend,
            ));
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"sites\": {},", args.sites);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"sites_per_lease\": {},", args.per_lease);
    let _ = writeln!(json, "  \"baseline_fingerprint\": \"{baseline_fp:016x}\",");
    let _ = writeln!(json, "  \"baseline_elapsed_s\": {baseline_s:.3},");
    let _ = writeln!(json, "  \"baseline_sites_per_s\": {baseline_rate:.1},");
    let _ = writeln!(json, "  \"fingerprints_match\": {all_match},");
    json.push_str("  \"workers\": [\n");
    let n = rows.len();
    for (i, (workers, backend_kind, elapsed, fp, matches, stats, backend)) in
        rows.into_iter().enumerate()
    {
        let rate = args.sites as f64 / elapsed.max(1e-9);
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"workers\": {workers},");
        let _ = writeln!(json, "      \"backend\": \"{backend_kind}\",");
        let _ = writeln!(json, "      \"elapsed_s\": {elapsed:.3},");
        let _ = writeln!(json, "      \"sites_per_s\": {rate:.1},");
        let _ = writeln!(
            json,
            "      \"speedup_vs_baseline\": {:.2},",
            rate / baseline_rate
        );
        let _ = writeln!(json, "      \"fingerprint\": \"{fp:016x}\",");
        let _ = writeln!(json, "      \"fingerprint_matches\": {matches},");
        let _ = writeln!(json, "      \"leases_total\": {},", stats.leases_total);
        let _ = writeln!(
            json,
            "      \"leases_completed\": {},",
            stats.leases_completed
        );
        let _ = writeln!(
            json,
            "      \"publishes_fenced\": {},",
            stats.publishes_fenced
        );
        let _ = writeln!(json, "      \"remote_ops\": {},", backend.remote_ops);
        let _ = writeln!(
            json,
            "      \"remote_retries\": {},",
            backend.remote_retries
        );
        let _ = writeln!(
            json,
            "      \"remote_reconnects\": {},",
            backend.remote_reconnects
        );
        let _ = writeln!(json, "      \"replicas\": {},", backend.replicas);
        let _ = writeln!(
            json,
            "      \"replica_quorum_writes\": {},",
            backend.replica_quorum_writes
        );
        let _ = writeln!(
            json,
            "      \"replica_quorum_reads\": {},",
            backend.replica_quorum_reads
        );
        let _ = writeln!(
            json,
            "      \"replica_read_repairs\": {}",
            backend.replica_read_repairs
        );
        json.push_str(if i + 1 == n { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).map_err(|e| e.to_string())?;
    eprintln!("# fingerprints_match={all_match} → {}", args.out.display());
    if all_match {
        Ok(())
    } else {
        Err("a fabric configuration diverged from the single-process fingerprint".into())
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
