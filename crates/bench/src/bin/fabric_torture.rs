//! `fabric_torture` — the survey-fabric crash-recovery sweep, standalone.
//!
//! Enumerates every step a fault-free simulated fabric run announces
//! (worker crawl/seal/publish, coordinator issue/merge), then re-runs the
//! whole schedule once per step with a kill at exactly that point,
//! verifying every schedule recovers to the uninterrupted single-process
//! fingerprint. Two dedicated schedules ride along: double-issue (every
//! lease handed to two workers; the loser must fence) and the zombie
//! publish replay baked into every kill at a publish step.
//!
//! The second half runs the same fabric over the whole-object backend
//! (`bfu-objstore`): every backend op partitioned (delayed visibility,
//! stale reads/listings), the kill × partition diagonal, and seeded chaos
//! schedules (lost-then-replayed puts included) — all required to recover
//! the identical fingerprint.
//!
//! ```text
//! cargo run -p bfu-bench --release --bin fabric_torture -- \
//!     [--sites N] [--seed N] [--stride N] [--out PATH]
//! ```
//!
//! `--stride 1` (the default) is the exhaustive sweep; `scripts/ci.sh`
//! bounds it unless `BFU_TORTURE_FULL=1`. Exit status is non-zero if any
//! schedule diverges, accepts a stale publish, or panics.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bfu_core::fabric::{run_sim, FabricConfig, FabricFaultPlan, SimOutcome};
use bfu_core::objstore::{ObjFaultPlan, ObjectBackend, SimObjectStore};
use bfu_core::store::{FaultFs, StorageBackend, StoreFaultPlan};
use bfu_crawler::{CrawlConfig, Survey};
use bfu_webgen::{SyntheticWeb, WebConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    sites: usize,
    seed: u64,
    stride: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut sites = 8usize;
    let mut seed = 137u64;
    let mut stride = 1usize;
    let mut out = std::path::PathBuf::from("BENCH_fabric_torture.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--sites" => {
                sites = argv
                    .next()
                    .ok_or("--sites needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --sites: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--stride" => {
                stride = argv
                    .next()
                    .ok_or("--stride needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --stride: {e}"))?;
                if stride == 0 {
                    return Err("--stride must be >= 1".into());
                }
            }
            "--out" => {
                out = std::path::PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: fabric_torture [--sites N] [--seed N] [--stride N] [--out PATH]",
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(Args {
        sites,
        seed,
        stride,
        out,
    })
}

fn survey_for(sites: usize, seed: u64) -> Survey {
    let web = SyntheticWeb::generate(WebConfig {
        sites,
        seed,
        script_weight: 0,
    });
    let mut config = CrawlConfig::quick(seed ^ 0xFAB);
    config.threads = 1;
    config.rounds_per_profile = 1;
    config.pages_per_site = 2;
    config.page_budget_ms = 2_000;
    Survey::new(web, config)
}

fn torture_config() -> FabricConfig {
    FabricConfig {
        workers: 1,
        sites_per_lease: 3,
        lease_ms: 10_000,
        site_ms: 1_000,
        shard_capacity: 2,
        scrub_threads: 2,
    }
}

fn sim_with(survey: &Survey, plan: &FabricFaultPlan) -> Result<SimOutcome, String> {
    let backend: Arc<dyn StorageBackend> = Arc::new(FaultFs::new(StoreFaultPlan::none()));
    run_sim(survey, backend, &torture_config(), plan).map_err(|e| e.to_string())
}

fn obj_sim_with(
    survey: &Survey,
    plan: &FabricFaultPlan,
    obj_plan: ObjFaultPlan,
) -> (Result<SimOutcome, String>, Arc<SimObjectStore>) {
    let store = Arc::new(SimObjectStore::new(obj_plan));
    let backend: Arc<dyn StorageBackend> = Arc::new(ObjectBackend::new(store.clone()));
    (
        run_sim(survey, backend, &torture_config(), plan).map_err(|e| e.to_string()),
        store,
    )
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let survey = survey_for(args.sites, args.seed);
    let t0 = Instant::now();

    eprintln!("# baseline: uninterrupted run ({} sites)…", args.sites);
    let baseline_fp = survey.run().fingerprint();

    let healthy = sim_with(&survey, &FabricFaultPlan::default())?;
    if healthy.outcome.dataset.fingerprint() != baseline_fp {
        return Err("healthy fabric run diverged from the direct run".into());
    }
    let total = healthy.steps;
    eprintln!(
        "# healthy schedule: {total} fabric steps; sweeping every {} …",
        args.stride
    );

    let mut swept = 0usize;
    let mut worker_kills = 0u64;
    let mut coordinator_kills = 0u64;
    let mut fenced_replays = 0u64;
    let points: Vec<u64> = (0..total).step_by(args.stride).collect();
    let n = points.len();
    for (i, k) in points.into_iter().enumerate() {
        let plan = FabricFaultPlan {
            kill_at: Some(k),
            ..FabricFaultPlan::default()
        };
        let label = healthy
            .trace
            .get(k as usize)
            .map(String::as_str)
            .unwrap_or("?");
        let sim = sim_with(&survey, &plan).map_err(|e| format!("kill point {k} ({label}): {e}"))?;
        if sim.outcome.dataset.fingerprint() != baseline_fp {
            return Err(format!(
                "kill point {k} ({label}): recovered dataset diverged ({:016x} != {baseline_fp:016x})",
                sim.outcome.dataset.fingerprint()
            ));
        }
        if sim.worker_deaths + sim.coordinator_crashes != 1 {
            return Err(format!(
                "kill point {k} ({label}): expected exactly one death, saw {} worker + {} coordinator",
                sim.worker_deaths, sim.coordinator_crashes
            ));
        }
        worker_kills += sim.worker_deaths;
        coordinator_kills += sim.coordinator_crashes;
        fenced_replays += sim.fenced_replays;
        swept += 1;
        if (i + 1) % 25 == 0 || i + 1 == n {
            eprintln!("#   kill sweep: {}/{n} schedules recovered", i + 1);
        }
    }

    eprintln!("# double-issue schedule…");
    let plan = FabricFaultPlan {
        double_issue: true,
        ..FabricFaultPlan::default()
    };
    let doubled = sim_with(&survey, &plan)?;
    if doubled.outcome.dataset.fingerprint() != baseline_fp {
        return Err("double-issue schedule diverged".into());
    }
    let leases = doubled.outcome.stats.leases_total;
    if doubled.outcome.stats.publishes_fenced != leases {
        return Err(format!(
            "double-issue: expected {leases} fenced publishes, saw {}",
            doubled.outcome.stats.publishes_fenced
        ));
    }

    eprintln!("# object-store: healthy fabric run over the whole-object backend…");
    let (obj_healthy, obj_store) =
        obj_sim_with(&survey, &FabricFaultPlan::default(), ObjFaultPlan::none());
    let obj_healthy = obj_healthy?;
    if obj_healthy.outcome.dataset.fingerprint() != baseline_fp {
        return Err("healthy object-store fabric run diverged".into());
    }
    let total_ops = obj_store.ops().max(1);
    eprintln!(
        "# object-store schedule: {total_ops} backend ops; partitioning every {} …",
        args.stride
    );
    let mut partitions_swept = 0usize;
    let op_points: Vec<u64> = (0..total_ops).step_by(args.stride).collect();
    let m = op_points.len();
    for (i, p) in op_points.into_iter().enumerate() {
        let (sim, store) = obj_sim_with(
            &survey,
            &FabricFaultPlan::default(),
            ObjFaultPlan::none().with_partition_at(p),
        );
        let sim = sim.map_err(|e| format!("partition at op {p}: {e}"))?;
        if sim.outcome.dataset.fingerprint() != baseline_fp {
            return Err(format!(
                "partition at op {p} ({:?}): recovered dataset diverged",
                store.op_trace().get(p as usize)
            ));
        }
        partitions_swept += 1;
        if (i + 1) % 25 == 0 || i + 1 == m {
            eprintln!("#   partition sweep: {}/{m} schedules recovered", i + 1);
        }
    }

    eprintln!("# kill × partition diagonal…");
    let mut diagonal_swept = 0usize;
    for k in (0..total).step_by(args.stride) {
        let p = (k.wrapping_mul(7) + 3) % total_ops;
        let plan = FabricFaultPlan {
            kill_at: Some(k),
            ..FabricFaultPlan::default()
        };
        let (sim, _) = obj_sim_with(&survey, &plan, ObjFaultPlan::none().with_partition_at(p));
        let sim = sim.map_err(|e| format!("kill {k} + partition {p}: {e}"))?;
        if sim.outcome.dataset.fingerprint() != baseline_fp {
            return Err(format!(
                "kill {k} + partition {p}: recovered dataset diverged"
            ));
        }
        diagonal_swept += 1;
    }

    eprintln!("# seeded chaos schedules (lost replays, stale reads, shuffled lists)…");
    let chaos_seeds: [u64; 3] = [1, 0xC4A05, 0xDEAD_BEEF];
    for seed in chaos_seeds {
        let (sim, _) = obj_sim_with(
            &survey,
            &FabricFaultPlan::default(),
            ObjFaultPlan::chaos(seed),
        );
        let sim = sim.map_err(|e| format!("chaos seed {seed:#x}: {e}"))?;
        if sim.outcome.dataset.fingerprint() != baseline_fp {
            return Err(format!("chaos seed {seed:#x}: recovered dataset diverged"));
        }
    }

    let elapsed = t0.elapsed().as_secs_f64();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"sites\": {},", args.sites);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"stride\": {},", args.stride);
    let _ = writeln!(json, "  \"fingerprint\": \"{baseline_fp:016x}\",");
    let _ = writeln!(json, "  \"fabric_steps\": {total},");
    let _ = writeln!(json, "  \"kill_points_recovered\": {swept},");
    let _ = writeln!(json, "  \"worker_kills\": {worker_kills},");
    let _ = writeln!(json, "  \"coordinator_kills\": {coordinator_kills},");
    let _ = writeln!(json, "  \"fenced_replays\": {fenced_replays},");
    let _ = writeln!(
        json,
        "  \"double_issue_fenced\": {},",
        doubled.outcome.stats.publishes_fenced
    );
    let _ = writeln!(json, "  \"backend_ops\": {total_ops},");
    let _ = writeln!(
        json,
        "  \"partition_points_recovered\": {partitions_swept},"
    );
    let _ = writeln!(
        json,
        "  \"kill_partition_pairs_recovered\": {diagonal_swept},"
    );
    let _ = writeln!(json, "  \"chaos_seeds_recovered\": {},", chaos_seeds.len());
    let _ = writeln!(json, "  \"elapsed_s\": {elapsed:.3}");
    json.push_str("}\n");
    std::fs::write(&args.out, &json).map_err(|e| e.to_string())?;
    eprintln!(
        "# all {swept} kill points, {partitions_swept} partitions, {diagonal_swept} kill×partition pairs + double-issue and chaos recovered identically in {elapsed:.1}s → {}",
        args.out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
