//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro --all                         # everything at the default scale
//! repro --experiment table2           # one table/figure
//! repro --sites 2000 --seed 7 --all   # bigger ranking
//! repro --full-depth --all            # paper-depth crawl (5 rounds × 13 pages × 30 s)
//! repro --store results/ -e table2    # memoized: crawl once, re-render forever
//! ```
//!
//! With `--store DIR`, survey results persist to crash-safe shards in `DIR`:
//! the first run crawls and writes, a killed run resumes from where it died,
//! and subsequent runs regenerate any table/figure from the stored dataset
//! with zero crawl activity (reported by the `store:` cache line).
//!
//! Default scale is 600 sites at reduced depth — enough for every shape the
//! paper reports while finishing in minutes on a laptop core. The numbers in
//! EXPERIMENTS.md were produced with `--sites 2000 --full-depth`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bfu_bench::{build_study, build_study_with_store, run_experiment, Experiment};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    experiments: Vec<Experiment>,
    sites: usize,
    seed: u64,
    full_depth: bool,
    store: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut experiments = Vec::new();
    let mut sites = 600usize;
    let mut seed = 0x0B5E_55EDu64;
    let mut full_depth = false;
    let mut all = false;
    let mut store = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--experiment" | "-e" => {
                let v = argv.next().ok_or("--experiment needs a value")?;
                experiments.push(v.parse::<Experiment>()?);
            }
            "--sites" => {
                sites = argv
                    .next()
                    .ok_or("--sites needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --sites: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--full-depth" => full_depth = true,
            "--store" => {
                store = Some(PathBuf::from(argv.next().ok_or("--store needs a value")?));
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: repro [--all] [--experiment <table1|table2|table3|fig1..fig9|headline>]... \
                     [--sites N] [--seed N] [--full-depth] [--store DIR]",
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if all || experiments.is_empty() {
        experiments = Experiment::all().to_vec();
    }
    Ok(Args {
        experiments,
        sites,
        seed,
        full_depth,
        store,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# building study: {} sites, seed {}, {} depth…",
        args.sites,
        args.seed,
        if args.full_depth { "paper" } else { "reduced" }
    );
    let t0 = std::time::Instant::now();
    let study = match &args.store {
        Some(dir) => {
            let stored = match build_study_with_store(args.sites, args.seed, args.full_depth, dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("# {}", stored.cache_line());
            if stored.report.any_loss() {
                eprintln!(
                    "# store damage recovered around: {} corrupt records, \
                     {} truncated shards, {} checksum-mismatched shards, \
                     {} out-of-range records",
                    stored.report.records_corrupt,
                    stored.report.shards_truncated,
                    stored.report.shards_checksum_mismatch,
                    stored.report.records_out_of_range,
                );
            }
            stored.study
        }
        None => build_study(args.sites, args.seed, args.full_depth),
    };
    eprintln!(
        "# study ready in {:.1}s ({} sites measured)",
        t0.elapsed().as_secs_f64(),
        study.dataset().measured_sites()
    );
    for &e in &args.experiments {
        println!("================ {e} ================");
        println!("{}", run_experiment(&study, e));
    }
    ExitCode::SUCCESS
}
