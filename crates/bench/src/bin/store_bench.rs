//! `store_bench` — wall-clock comparison of the three ways to obtain a
//! study, written to `BENCH_store.json`:
//!
//! 1. **scratch** — full survey, nothing stored;
//! 2. **resumed** — survey resumed from a store holding half the sites
//!    (the crash-recovery path: only the missing half is crawled);
//! 3. **analysis** — every analysis regenerated from the completed store
//!    with zero crawl activity (the memoization path).
//!
//! ```text
//! cargo run -p bfu-bench --release --bin store_bench -- [--sites N] [--seed N] [--out PATH]
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bfu_core::store::{DatasetStore, StoreMeta, DEFAULT_SHARD_CAPACITY};
use bfu_core::{Study, StudyConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    sites: usize,
    seed: u64,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut sites = 48usize;
    let mut seed = 0x0B5E_55EDu64;
    let mut out = std::path::PathBuf::from("BENCH_store.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--sites" => {
                sites = argv
                    .next()
                    .ok_or("--sites needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --sites: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                out = std::path::PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: store_bench [--sites N] [--seed N] [--out PATH]",
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(Args { sites, seed, out })
}

fn meta_for(config: &StudyConfig) -> StoreMeta {
    let crawl = config.crawl_config();
    StoreMeta {
        fingerprint: config.fingerprint(),
        crawl_seed: crawl.seed,
        web_seed: config.seed,
        sites: config.sites,
        rounds_per_profile: crawl.rounds_per_profile,
        profiles: crawl.profiles,
        shard_capacity: DEFAULT_SHARD_CAPACITY,
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let config = StudyConfig::quick(args.sites, args.seed);
    let store_dir = std::env::temp_dir().join(format!(
        "bfu-store-bench-{}-{}",
        std::process::id(),
        args.seed
    ));
    let _ = std::fs::remove_dir_all(&store_dir);

    // 1. Survey from scratch.
    eprintln!("# scratch: surveying {} sites…", args.sites);
    let t0 = Instant::now();
    let scratch = Study::run(config.clone());
    let scratch_s = t0.elapsed().as_secs_f64();
    let fingerprint = scratch.dataset().fingerprint();

    // 2. Survey resumed from a store holding the first half of the sites —
    // what a crawl killed at the 50% mark leaves behind.
    let store = DatasetStore::open(&store_dir, meta_for(&config)).map_err(|e| e.to_string())?;
    let half = args.sites / 2;
    for m in scratch.dataset().sites.iter().take(half) {
        store.append(m).map_err(|e| e.to_string())?;
    }
    drop(store); // killed before sealing, like a real crash
    eprintln!("# resumed: store holds {half} sites, crawling the rest…");
    let t0 = Instant::now();
    let resumed = Study::run_with_store(config.clone(), &store_dir).map_err(|e| e.to_string())?;
    let resumed_s = t0.elapsed().as_secs_f64();
    if resumed.study.dataset().fingerprint() != fingerprint {
        return Err("resumed dataset fingerprint diverged from scratch run".into());
    }

    // 3. Analysis from the (now complete) store: load + full report, no crawl.
    eprintln!("# analysis: regenerating the full report from the store…");
    let t0 = Instant::now();
    let loaded = Study::from_store(config, &store_dir).map_err(|e| e.to_string())?;
    let report = loaded.study.report();
    let rendered = report.render_all();
    let analysis_s = t0.elapsed().as_secs_f64();
    if loaded.crawled_sites != 0 {
        return Err("analysis path crawled sites; memoization broken".into());
    }
    if loaded.study.dataset().fingerprint() != fingerprint {
        return Err("stored dataset fingerprint diverged from scratch run".into());
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"sites\": {},", args.sites);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"fingerprint\": \"{fingerprint:016x}\",");
    let _ = writeln!(json, "  \"survey_scratch_s\": {scratch_s:.3},");
    let _ = writeln!(json, "  \"survey_resumed_half_s\": {resumed_s:.3},");
    let _ = writeln!(json, "  \"analysis_from_store_s\": {analysis_s:.3},");
    let _ = writeln!(
        json,
        "  \"resumed_speedup\": {:.2},",
        scratch_s / resumed_s.max(1e-9)
    );
    let _ = writeln!(
        json,
        "  \"analysis_speedup\": {:.2},",
        scratch_s / analysis_s.max(1e-9)
    );
    let _ = writeln!(json, "  \"resumed_sites\": {},", resumed.resumed_sites);
    let _ = writeln!(json, "  \"crawled_sites\": {},", resumed.crawled_sites);
    let _ = writeln!(json, "  \"report_bytes\": {}", rendered.len());
    json.push_str("}\n");
    std::fs::write(&args.out, &json).map_err(|e| e.to_string())?;
    let _ = std::fs::remove_dir_all(&store_dir);
    eprintln!(
        "# scratch {scratch_s:.2}s | resumed-from-half {resumed_s:.2}s | \
         analysis-from-store {analysis_s:.2}s → {}",
        args.out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
