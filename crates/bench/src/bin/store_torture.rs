//! `store_torture` — the crash-consistency torture harness, standalone.
//!
//! Enumerates every backend operation a survey-to-store run performs on the
//! deterministic fault-injecting `FaultFs`, then re-runs the workload once
//! per operation with a simulated power cut at exactly that point, power
//! cycles, resumes, and verifies the recovered dataset is
//! fingerprint-identical to the uninterrupted run's. Two workloads are
//! swept: a fresh crawl-to-store run, and a scrub/heal pass over a
//! fragmented store with a corrupt squatter shard.
//!
//! ```text
//! cargo run -p bfu-bench --release --bin store_torture -- \
//!     [--sites N] [--seed N] [--stride N] [--out PATH]
//! ```
//!
//! `--stride 1` (the default) is the exhaustive sweep; larger strides are
//! the CI-fast bounded mode (`scripts/ci.sh` picks the stride via
//! `BFU_TORTURE_FULL`). Exit status is non-zero if any crash point fails to
//! recover, loses data, or panics.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bfu_core::store::{
    resume_survey_on, DatasetStore, FaultFs, ResumeOutcome, StorageBackend, StoreError,
    StoreFaultPlan, StoreMeta,
};
use bfu_crawler::{CrawlConfig, Dataset, Provenance, Survey};
use bfu_webgen::{SyntheticWeb, WebConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    sites: usize,
    seed: u64,
    stride: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut sites = 6usize;
    let mut seed = 91u64;
    let mut stride = 1usize;
    let mut out = std::path::PathBuf::from("BENCH_store_torture.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--sites" => {
                sites = argv
                    .next()
                    .ok_or("--sites needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --sites: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--stride" => {
                stride = argv
                    .next()
                    .ok_or("--stride needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --stride: {e}"))?;
                if stride == 0 {
                    return Err("--stride must be >= 1".into());
                }
            }
            "--out" => {
                out = std::path::PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: store_torture [--sites N] [--seed N] [--stride N] [--out PATH]",
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(Args {
        sites,
        seed,
        stride,
        out,
    })
}

fn survey_for(sites: usize, seed: u64) -> Survey {
    let web = SyntheticWeb::generate(WebConfig {
        sites,
        seed,
        script_weight: 0,
    });
    let mut config = CrawlConfig::quick(seed ^ 0x70FF);
    // One worker makes the backend op sequence — the crash-point coordinate
    // system — identical across runs; measurements are thread-invariant.
    config.threads = 1;
    config.rounds_per_profile = 1;
    config.pages_per_site = 2;
    config.page_budget_ms = 2_000;
    Survey::new(web, config)
}

fn resume_on(fs: &Arc<FaultFs>, survey: &Survey) -> Result<ResumeOutcome, StoreError> {
    let backend: Arc<dyn StorageBackend> = fs.clone();
    resume_survey_on(survey, backend)
}

fn check_crash(err: &StoreError, k: u64) -> Result<(), String> {
    match err {
        StoreError::Io(e) if FaultFs::is_crash(e) => Ok(()),
        other => Err(format!("crash point {k}: unexpected error class: {other}")),
    }
}

/// Pre-populate `fs` with two fragmented sealed shards and a garbage
/// squatter object, returning the ops consumed.
fn build_fragmented(fs: &Arc<FaultFs>, survey: &Survey, baseline: &Dataset) -> Result<u64, String> {
    let mut meta = StoreMeta::for_survey(survey);
    meta.shard_capacity = 4;
    for range in [0..2usize, 2..3] {
        let backend: Arc<dyn StorageBackend> = fs.clone();
        let store = DatasetStore::open_on(backend, meta.clone()).map_err(|e| e.to_string())?;
        for m in &baseline.sites[range] {
            store.append(m).map_err(|e| e.to_string())?;
        }
        store
            .finish(&Provenance::of(survey, baseline))
            .map_err(|e| e.to_string())?;
    }
    fs.put("shard-00031.bfu", b"squatter: not a shard")
        .map_err(|e| e.to_string())?;
    fs.sync_dir().map_err(|e| e.to_string())?;
    Ok(fs.ops())
}

/// Sweep crash points `first..total` (step `stride`) over a workload that
/// replays `setup` then resumes the survey. Returns the number of points
/// swept, or the first failure.
fn sweep(
    name: &str,
    survey: &Survey,
    baseline_fp: u64,
    first: u64,
    total: u64,
    stride: usize,
    setup: impl Fn(&Arc<FaultFs>) -> Result<(), String>,
) -> Result<usize, String> {
    let mut swept = 0usize;
    let points: Vec<u64> = (first..total).step_by(stride).collect();
    let n = points.len();
    for (i, k) in points.into_iter().enumerate() {
        let plan = StoreFaultPlan::none()
            .with_seed(0xC4A5 ^ k)
            .with_crash_at(k);
        let fs = Arc::new(FaultFs::new(plan));
        setup(&fs)?;
        let err = resume_on(&fs, survey)
            .err()
            .ok_or_else(|| format!("{name}: crash point {k} never fired"))?;
        check_crash(&err, k)?;
        fs.power_cycle();
        let recovered = resume_on(&fs, survey)
            .map_err(|e| format!("{name}: crash point {k}: recovery failed: {e}"))?;
        if recovered.dataset.fingerprint() != baseline_fp {
            return Err(format!(
                "{name}: crash point {k}: recovered dataset diverged ({:016x} != {baseline_fp:016x})",
                recovered.dataset.fingerprint()
            ));
        }
        swept += 1;
        if (i + 1) % 25 == 0 || i + 1 == n {
            eprintln!("#   {name}: {}/{n} crash points recovered", i + 1);
        }
    }
    Ok(swept)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let survey = survey_for(args.sites, args.seed);
    let t0 = Instant::now();

    eprintln!("# baseline: uninterrupted run ({} sites)…", args.sites);
    let baseline = survey.run();
    let baseline_fp = baseline.fingerprint();

    // Workload A: fresh crawl-to-store run.
    let fs = Arc::new(FaultFs::new(StoreFaultPlan::none()));
    let outcome = resume_on(&fs, &survey).map_err(|e| e.to_string())?;
    if outcome.dataset.fingerprint() != baseline_fp {
        return Err("store-backed run diverged from the direct run".into());
    }
    let fresh_ops = fs.ops();
    eprintln!(
        "# fresh-run workload: {fresh_ops} backend ops; sweeping every {} op(s)…",
        args.stride
    );
    let fresh_swept = sweep(
        "fresh",
        &survey,
        baseline_fp,
        0,
        fresh_ops,
        args.stride,
        |_| Ok(()),
    )?;

    // Workload B: scrub/heal over a fragmented store with a corrupt shard.
    let fs = Arc::new(FaultFs::new(StoreFaultPlan::none()));
    let setup_ops = build_fragmented(&fs, &survey, &baseline)?;
    let outcome = resume_on(&fs, &survey).map_err(|e| e.to_string())?;
    if outcome.dataset.fingerprint() != baseline_fp {
        return Err("scrub/heal run diverged from the direct run".into());
    }
    if outcome.scrub.shards_quarantined == 0 {
        return Err("scrub workload failed to exercise quarantine".into());
    }
    let heal_ops = fs.ops();
    eprintln!(
        "# scrub/heal workload: {} backend ops after setup; sweeping…",
        heal_ops - setup_ops
    );
    let heal_swept = sweep(
        "heal",
        &survey,
        baseline_fp,
        setup_ops,
        heal_ops,
        args.stride,
        |fs| {
            let built = build_fragmented(fs, &survey, &baseline)?;
            if built != setup_ops {
                return Err("setup op sequence not deterministic".into());
            }
            Ok(())
        },
    )?;

    let elapsed = t0.elapsed().as_secs_f64();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"sites\": {},", args.sites);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"stride\": {},", args.stride);
    let _ = writeln!(json, "  \"fingerprint\": \"{baseline_fp:016x}\",");
    let _ = writeln!(json, "  \"fresh_run_ops\": {fresh_ops},");
    let _ = writeln!(json, "  \"fresh_points_recovered\": {fresh_swept},");
    let _ = writeln!(json, "  \"heal_run_ops\": {},", heal_ops - setup_ops);
    let _ = writeln!(json, "  \"heal_points_recovered\": {heal_swept},");
    let _ = writeln!(json, "  \"elapsed_s\": {elapsed:.3}");
    json.push_str("}\n");
    std::fs::write(&args.out, &json).map_err(|e| e.to_string())?;
    eprintln!(
        "# all {} crash points recovered identically in {elapsed:.1}s → {}",
        fresh_swept + heal_swept,
        args.out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
