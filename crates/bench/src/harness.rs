//! The experiment harness behind the `repro` binary.
//!
//! Each [`Experiment`] regenerates one table or figure of the paper from a
//! fresh (or cached) study run, printing the same rows/series the paper
//! reports, alongside the paper's published values where they exist.

use bfu_analysis::report;
use bfu_core::{Study, StudyConfig};
use std::fmt;
use std::str::FromStr;

/// Every table/figure of the paper, plus the §5.3 headline block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table 1: crawl scale.
    Table1,
    /// Table 2: per-standard popularity, block rate, CVEs.
    Table2,
    /// Table 3: new standards per round.
    Table3,
    /// Fig. 1: standards and browser LoC over time.
    Fig1,
    /// Fig. 2: the measurement pipeline (illustrated with real log lines).
    Fig2,
    /// Fig. 3: CDF of standard popularity.
    Fig3,
    /// Fig. 4: popularity vs block rate.
    Fig4,
    /// Fig. 5: site share vs visit share.
    Fig5,
    /// Fig. 6: introduction date vs popularity.
    Fig6,
    /// Fig. 7: ad-only vs tracker-only block rates.
    Fig7,
    /// Fig. 8: standards per site.
    Fig8,
    /// Fig. 9: external validation histogram.
    Fig9,
    /// §5.3 headline statistics.
    Headline,
}

impl Experiment {
    /// All experiments, in presentation order.
    pub fn all() -> &'static [Experiment] {
        &[
            Experiment::Table1,
            Experiment::Headline,
            Experiment::Fig1,
            Experiment::Fig2,
            Experiment::Fig3,
            Experiment::Fig4,
            Experiment::Fig5,
            Experiment::Fig6,
            Experiment::Fig7,
            Experiment::Fig8,
            Experiment::Fig9,
            Experiment::Table2,
            Experiment::Table3,
        ]
    }
}

impl FromStr for Experiment {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "table1" => Experiment::Table1,
            "table2" => Experiment::Table2,
            "table3" => Experiment::Table3,
            "fig1" => Experiment::Fig1,
            "fig2" => Experiment::Fig2,
            "fig3" => Experiment::Fig3,
            "fig4" => Experiment::Fig4,
            "fig5" => Experiment::Fig5,
            "fig6" => Experiment::Fig6,
            "fig7" => Experiment::Fig7,
            "fig8" => Experiment::Fig8,
            "fig9" => Experiment::Fig9,
            "headline" => Experiment::Headline,
            other => return Err(format!("unknown experiment {other:?}")),
        })
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format!("{self:?}").to_ascii_lowercase())
    }
}

/// Render one experiment from a completed study.
pub fn run_experiment(study: &Study, experiment: Experiment) -> String {
    let rep = study.report();
    match experiment {
        Experiment::Table1 => report::render_table1(&rep.table1),
        Experiment::Table2 => report::render_table2(&rep.table2),
        Experiment::Table3 => report::render_table3(&rep.table3),
        Experiment::Fig1 => report::render_fig1(),
        Experiment::Fig2 => render_fig2(study),
        Experiment::Fig3 => report::render_fig3(&rep.fig3),
        Experiment::Fig4 => report::render_fig4(&rep.fig4),
        Experiment::Fig5 => report::render_fig5(&rep.fig5),
        Experiment::Fig6 => report::render_fig6(&rep.fig6),
        Experiment::Fig7 => report::render_fig7(&rep.fig7),
        Experiment::Fig8 => report::render_fig8(&rep.fig8),
        Experiment::Fig9 => {
            let h = study.external_validation(92.min(study.config().sites));
            report::render_fig9(&h)
        }
        Experiment::Headline => rep.headline_text(),
    }
}

/// Fig. 2 is the measurement-pipeline diagram; we reproduce it by crawling
/// one site in both configurations and printing the extension's log lines,
/// exactly in the figure's `profile,domain,Feature(),count` format.
fn render_fig2(study: &Study) -> String {
    use bfu_crawler::BrowserProfile;
    let mut out = String::from(
        "Fig 2: one measurement iteration — extension log lines (profile,domain,feature,count)\n",
    );
    let dataset = study.dataset();
    let registry = study.registry();
    let Some(site) = dataset
        .sites
        .iter()
        .find(|s| s.measured(BrowserProfile::Default))
    else {
        out.push_str("(no site measured under the default profile)\n");
        return out;
    };
    for (profile, label) in [
        (BrowserProfile::Blocking, "blocking"),
        (BrowserProfile::Default, "default"),
    ] {
        if let Some(rounds) = site.rounds_for(profile) {
            if let Some(round) = rounds.first() {
                for line in round
                    .log
                    .render_lines(label, &site.domain, registry)
                    .iter()
                    .take(8)
                {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
    }
    out
}

/// The configuration `repro` uses at the requested scale.
pub fn study_config(sites: usize, seed: u64, full_depth: bool) -> StudyConfig {
    if full_depth {
        StudyConfig {
            sites,
            seed,
            ..StudyConfig::default()
        }
    } else {
        StudyConfig::quick(sites, seed)
    }
}

/// Build the study used by `repro` at the requested scale.
pub fn build_study(sites: usize, seed: u64, full_depth: bool) -> Study {
    Study::run(study_config(sites, seed, full_depth))
}

/// Obtain the study through the dataset store at `dir`: load it outright if
/// complete, otherwise resume the crawl into it. Only a fingerprint mismatch
/// or I/O failure errors out.
pub fn build_study_with_store(
    sites: usize,
    seed: u64,
    full_depth: bool,
    dir: &std::path::Path,
) -> Result<bfu_core::StoredStudy, bfu_core::store::StoreError> {
    use bfu_core::store::StoreError;
    let config = study_config(sites, seed, full_depth);
    match Study::from_store(config.clone(), dir) {
        Ok(stored) => Ok(stored),
        Err(StoreError::NoStore(_)) | Err(StoreError::Incomplete { .. }) => {
            Study::run_with_store(config, dir)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    static STUDY: OnceLock<Study> = OnceLock::new();

    fn study() -> &'static Study {
        STUDY.get_or_init(|| build_study(20, 3, false))
    }

    #[test]
    fn experiment_names_roundtrip() {
        for &e in Experiment::all() {
            let name = e.to_string();
            assert_eq!(name.parse::<Experiment>().unwrap(), e, "{name}");
        }
        assert!("nope".parse::<Experiment>().is_err());
    }

    #[test]
    fn every_experiment_renders() {
        for &e in Experiment::all() {
            let text = run_experiment(study(), e);
            assert!(!text.trim().is_empty(), "{e} rendered nothing");
        }
    }

    #[test]
    fn fig2_lines_match_paper_format() {
        let text = run_experiment(study(), Experiment::Fig2);
        let line = text
            .lines()
            .find(|l| l.starts_with("default,") || l.starts_with("blocking,"))
            .expect("log lines present");
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 4, "{line}");
        assert!(fields[3].parse::<u64>().is_ok());
    }
}
