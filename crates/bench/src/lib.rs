//! # bfu-bench
//!
//! Benchmark harness and the `repro` binary.
//!
//! `cargo bench -p bfu-bench` runs Criterion benches covering every table
//! and figure plus the ablations called out in DESIGN.md. The `repro`
//! binary regenerates each table/figure as text:
//!
//! ```text
//! cargo run -p bfu-bench --release --bin repro -- --experiment table2
//! cargo run -p bfu-bench --release --bin repro -- --all
//! ```

// Bench binaries gate CI: a panic mid-run reads as a perf regression, so
// fallible paths must return errors instead of unwrapping.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod harness;

pub use harness::{build_study, build_study_with_store, run_experiment, study_config, Experiment};
