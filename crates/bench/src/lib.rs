//! # bfu-bench
//!
//! Benchmark harness and the `repro` binary.
//!
//! `cargo bench -p bfu-bench` runs Criterion benches covering every table
//! and figure plus the ablations called out in DESIGN.md. The `repro`
//! binary regenerates each table/figure as text:
//!
//! ```text
//! cargo run -p bfu-bench --release --bin repro -- --experiment table2
//! cargo run -p bfu-bench --release --bin repro -- --all
//! ```

pub mod harness;

pub use harness::{build_study, build_study_with_store, run_experiment, study_config, Experiment};
