//! The filter matching engine.
//!
//! Naively, every request checks every rule — EasyList has tens of thousands.
//! Like production blockers, we index rules by an 8-byte token drawn from
//! each rule's longest literal fragment; a request only tests rules whose
//! token appears in its URL. Rules with no usable token fall into a small
//! always-checked bucket. The `bench` crate ablates this index against the
//! naive scan.

use crate::filter::{FilterParseError, FilterRule, RuleKind};
use bfu_net::HttpRequest;
use std::collections::HashMap;

/// Minimum token length for the index.
const TOKEN_LEN: usize = 8;

/// A compiled filter list.
#[derive(Debug, Default)]
pub struct FilterEngine {
    block_rules: Vec<FilterRule>,
    exception_rules: Vec<FilterRule>,
    hide_rules: Vec<FilterRule>,
    /// token -> indices into `block_rules`.
    index: HashMap<u64, Vec<u32>>,
    /// Block rules with no indexable token.
    unindexed: Vec<u32>,
    /// Lines that failed to parse (kept for diagnostics).
    rejected: usize,
}

fn hash_token(t: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in t {
        h ^= u64::from(b.to_ascii_lowercase());
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl FilterEngine {
    /// Compile a filter list from its text. Comment/blank lines are skipped;
    /// malformed rules are counted but don't fail the load (real blockers
    /// tolerate junk lines in crowd-sourced lists).
    pub fn from_list(text: &str) -> Self {
        let mut engine = FilterEngine::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('!') || line.starts_with('[') {
                continue;
            }
            match FilterRule::parse(line) {
                Ok(rule) => engine.add_rule(rule),
                Err(FilterParseError(_)) => engine.rejected += 1,
            }
        }
        engine
    }

    /// Add one parsed rule.
    pub fn add_rule(&mut self, rule: FilterRule) {
        match (&rule.kind, rule.exception) {
            (RuleKind::ElementHide { .. }, _) => self.hide_rules.push(rule),
            (RuleKind::Network, true) => self.exception_rules.push(rule),
            (RuleKind::Network, false) => {
                let ix = u32::try_from(self.block_rules.len()).expect("too many rules");
                let token = rule
                    .literal_fragments()
                    .into_iter()
                    .flat_map(|frag| frag.as_bytes().windows(TOKEN_LEN))
                    .next_back();
                match token {
                    Some(t) => self.index.entry(hash_token(t)).or_default().push(ix),
                    None => self.unindexed.push(ix),
                }
                self.block_rules.push(rule);
            }
        }
    }

    /// Number of network blocking rules.
    pub fn block_rule_count(&self) -> usize {
        self.block_rules.len()
    }

    /// Number of exception rules.
    pub fn exception_rule_count(&self) -> usize {
        self.exception_rules.len()
    }

    /// Number of element hiding rules.
    pub fn hide_rule_count(&self) -> usize {
        self.hide_rules.len()
    }

    /// Lines that failed to parse during `from_list`.
    pub fn rejected_lines(&self) -> usize {
        self.rejected
    }

    /// Decide whether `req` should be blocked. Returns the matching rule's
    /// text, or `None` to allow. Exceptions override blocks.
    pub fn match_request(&self, req: &HttpRequest) -> Option<&str> {
        let url = req.url.to_string();
        let blocked = self.match_via_index(req, &url)?;
        // An exception rule rescues the request.
        for exc in &self.exception_rules {
            if exc.options_allow(req) && exc.matches_url(&url) {
                return None;
            }
        }
        Some(blocked)
    }

    fn match_via_index(&self, req: &HttpRequest, url: &str) -> Option<&str> {
        let bytes = url.as_bytes();
        let mut seen: Vec<u32> = Vec::new();
        for w in bytes.windows(TOKEN_LEN) {
            if let Some(rules) = self.index.get(&hash_token(w)) {
                seen.extend_from_slice(rules);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        for &ix in seen.iter().chain(&self.unindexed) {
            let rule = &self.block_rules[ix as usize];
            if rule.options_allow(req) && rule.matches_url(url) {
                return Some(&rule.raw);
            }
        }
        None
    }

    /// Same decision computed by scanning every rule (no token index).
    /// Used by tests and the ablation bench to validate the index.
    pub fn match_request_naive(&self, req: &HttpRequest) -> Option<&str> {
        let url = req.url.to_string();
        let mut hit = None;
        for rule in &self.block_rules {
            if rule.options_allow(req) && rule.matches_url(&url) {
                hit = Some(rule.raw.as_str());
                break;
            }
        }
        hit?;
        for exc in &self.exception_rules {
            if exc.options_allow(req) && exc.matches_url(&url) {
                return None;
            }
        }
        hit
    }

    /// Element-hiding selectors applicable on a page whose registrable
    /// domain is `domain`.
    pub fn hiding_selectors(&self, domain: &str) -> Vec<&str> {
        self.hide_rules
            .iter()
            .filter(|r| {
                r.hide_domains.is_empty()
                    || r.hide_domains
                        .iter()
                        .any(|d| domain == d || domain.ends_with(&format!(".{d}")))
            })
            .filter_map(|r| match &r.kind {
                RuleKind::ElementHide { selector } => Some(selector.as_str()),
                RuleKind::Network => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_net::{ResourceType, Url};

    fn req(url: &str, ty: ResourceType, initiator: Option<&str>) -> HttpRequest {
        let mut r = HttpRequest::get(Url::parse(url).unwrap(), ty);
        if let Some(i) = initiator {
            r = r.with_initiator(Url::parse(i).unwrap());
        }
        r
    }

    const LIST: &str = r#"
! Test list
[Adblock Plus 2.0]
||ads.example.com^
||tracker.net^$script,third-party
/banner/*/img^
@@||ads.example.com/acceptable^
##.ad-slot
news.com##.sponsored
this line is } not a valid rule ##
"#;

    #[test]
    fn loads_list_counting_kinds() {
        let e = FilterEngine::from_list(LIST);
        assert_eq!(e.block_rule_count(), 3);
        assert_eq!(e.exception_rule_count(), 1);
        assert_eq!(e.hide_rule_count(), 2);
    }

    #[test]
    fn blocks_and_excepts() {
        let e = FilterEngine::from_list(LIST);
        assert!(e
            .match_request(&req(
                "http://ads.example.com/b.png",
                ResourceType::Image,
                None
            ))
            .is_some());
        assert!(
            e.match_request(&req(
                "http://ads.example.com/acceptable/x.png",
                ResourceType::Image,
                None
            ))
            .is_none(),
            "exception rule rescues"
        );
        assert!(e
            .match_request(&req("http://safe.org/", ResourceType::Document, None))
            .is_none());
    }

    #[test]
    fn options_respected_through_engine() {
        let e = FilterEngine::from_list(LIST);
        let third = req(
            "http://tracker.net/t.js",
            ResourceType::Script,
            Some("http://news.com/"),
        );
        assert!(e.match_request(&third).is_some());
        let first = req(
            "http://tracker.net/t.js",
            ResourceType::Script,
            Some("http://tracker.net/"),
        );
        assert!(e.match_request(&first).is_none(), "third-party only");
        let img = req(
            "http://tracker.net/t.gif",
            ResourceType::Image,
            Some("http://news.com/"),
        );
        assert!(e.match_request(&img).is_none(), "script/xhr only");
    }

    #[test]
    fn index_agrees_with_naive_scan() {
        let e = FilterEngine::from_list(LIST);
        let cases = [
            req("http://ads.example.com/b.png", ResourceType::Image, None),
            req(
                "http://x.com/banner/2016/img?a=1",
                ResourceType::Image,
                None,
            ),
            req(
                "http://tracker.net/t.js",
                ResourceType::Script,
                Some("http://news.com/"),
            ),
            req("http://clean.org/app.js", ResourceType::Script, None),
            req(
                "http://ads.example.com/acceptable/i.gif",
                ResourceType::Image,
                None,
            ),
        ];
        for c in &cases {
            assert_eq!(
                e.match_request(c).is_some(),
                e.match_request_naive(c).is_some(),
                "{}",
                c.url
            );
        }
    }

    #[test]
    fn short_pattern_rules_fall_back_to_unindexed() {
        let mut e = FilterEngine::default();
        e.add_rule(FilterRule::parse("/ad^").unwrap());
        assert_eq!(e.block_rule_count(), 1);
        assert!(e
            .match_request(&req("http://x.com/ad?z=1", ResourceType::Image, None))
            .is_some());
    }

    #[test]
    fn hiding_selectors_scoped_by_domain() {
        let e = FilterEngine::from_list(LIST);
        assert_eq!(e.hiding_selectors("blog.org"), vec![".ad-slot"]);
        let mut on_news = e.hiding_selectors("news.com");
        on_news.sort_unstable();
        assert_eq!(on_news, vec![".ad-slot", ".sponsored"]);
        // Subdomain of a scoped domain also matches.
        assert!(e.hiding_selectors("sub.news.com").contains(&".sponsored"));
    }

    #[test]
    fn junk_lines_counted_not_fatal() {
        let e = FilterEngine::from_list("!comment\n\n@@\n");
        assert_eq!(e.block_rule_count(), 0);
        assert_eq!(e.rejected_lines(), 1, "bare @@ is junk");
    }
}
