//! AdBlock Plus filter-rule syntax.
//!
//! Parses the rule dialect EasyList uses (the list AdBlock Plus draws from,
//! §3.6 of the paper):
//!
//! ```text
//! ! comment
//! ||ads.example.com^            domain-anchored blocking rule
//! |http://exact.start/path     start-anchored rule
//! /banner/*/img^               substring rule with wildcard + separator
//! ||tracker.net^$script,third-party   type / party options
//! ||cdn.net^$domain=news.com|~sports.news.com   domain scoping
//! @@||goodsite.com^$script     exception rule
//! ##.ad-banner                 element hiding (global)
//! news.com##.sponsored         element hiding (domain-scoped)
//! ```

use bfu_net::HttpRequest;
use std::collections::HashSet;
use std::fmt;

/// How a rule's pattern is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Plain substring match anywhere in the URL.
    None,
    /// `||` — match at a hostname label boundary.
    Domain,
    /// `|` — match at the very start of the URL.
    Start,
}

/// Kind of rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleKind {
    /// Network blocking rule (possibly an exception when `exception`).
    Network,
    /// Element hiding rule carrying a CSS selector.
    ElementHide {
        /// CSS selector to hide.
        selector: String,
    },
}

/// Parsed `$` options of a network rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterOptions {
    /// Resource types the rule applies to (empty = all types).
    pub types: HashSet<String>,
    /// Resource types excluded via `~type`.
    pub not_types: HashSet<String>,
    /// `third-party` restriction: `Some(true)` = third-party only,
    /// `Some(false)` = first-party only.
    pub third_party: Option<bool>,
    /// `domain=` inclusions (registrable domains of the *initiating* page).
    pub include_domains: Vec<String>,
    /// `domain=` exclusions (`~` prefixed).
    pub exclude_domains: Vec<String>,
}

/// One parsed filter rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterRule {
    /// Original rule text.
    pub raw: String,
    /// Network or element-hiding.
    pub kind: RuleKind,
    /// `@@` exception flag.
    pub exception: bool,
    /// Pattern anchor.
    pub anchor: Anchor,
    /// Whether the pattern requires the match to end at the URL end (`|`).
    pub anchor_end: bool,
    /// The pattern body (without anchors), still containing `*` and `^`.
    pub pattern: String,
    /// Domains scoping an element-hiding rule (empty = all domains).
    pub hide_domains: Vec<String>,
    /// Options for network rules.
    pub options: FilterOptions,
}

/// Parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterParseError(pub String);

impl fmt::Display for FilterParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad filter rule: {}", self.0)
    }
}

impl std::error::Error for FilterParseError {}

impl FilterRule {
    /// Parse one non-comment line of a filter list.
    pub fn parse(line: &str) -> Result<FilterRule, FilterParseError> {
        let raw = line.trim().to_owned();
        if raw.is_empty() || raw.starts_with('!') {
            return Err(FilterParseError("comment or empty line".into()));
        }

        // Element hiding: [domains]##selector
        if let Some((domains, selector)) = raw.split_once("##") {
            if selector.trim().is_empty() {
                return Err(FilterParseError(format!("empty selector in {raw:?}")));
            }
            let hide_domains = domains
                .split(',')
                .map(str::trim)
                .filter(|d| !d.is_empty())
                .map(|d| d.to_ascii_lowercase())
                .collect();
            return Ok(FilterRule {
                raw: raw.clone(),
                kind: RuleKind::ElementHide {
                    selector: selector.trim().to_owned(),
                },
                exception: false,
                anchor: Anchor::None,
                anchor_end: false,
                pattern: String::new(),
                hide_domains,
                options: FilterOptions::default(),
            });
        }

        let (exception, body) = match raw.strip_prefix("@@") {
            Some(b) => (true, b),
            None => (false, raw.as_str()),
        };

        let (body, options) = match body.rsplit_once('$') {
            // A '$' inside a URL path is rare in practice; treat the last '$'
            // as the options separator only if what follows parses as options.
            Some((pat, opts)) if looks_like_options(opts) => (pat, parse_options(opts)?),
            _ => (body, FilterOptions::default()),
        };

        let (anchor, body) = if let Some(b) = body.strip_prefix("||") {
            (Anchor::Domain, b)
        } else if let Some(b) = body.strip_prefix('|') {
            (Anchor::Start, b)
        } else {
            (Anchor::None, body)
        };
        let (anchor_end, body) = match body.strip_suffix('|') {
            Some(b) => (true, b),
            None => (false, body),
        };
        if body.is_empty() {
            return Err(FilterParseError(format!("empty pattern in {raw:?}")));
        }
        Ok(FilterRule {
            raw: raw.clone(),
            kind: RuleKind::Network,
            exception,
            anchor,
            anchor_end,
            pattern: body.to_owned(),
            hide_domains: Vec::new(),
            options,
        })
    }

    /// Whether this network rule's pattern matches the URL string.
    pub fn matches_url(&self, url: &str) -> bool {
        debug_assert!(matches!(self.kind, RuleKind::Network));
        let pat: Vec<char> = self.pattern.chars().collect();
        let s: Vec<char> = url.chars().collect();
        match self.anchor {
            Anchor::Start => match_from(&pat, &s, 0, self.anchor_end),
            Anchor::Domain => {
                // Match at the start of the hostname or after any dot in it.
                let Some(host_start) = url.find("://").map(|i| i + 3) else {
                    return false;
                };
                let host_end = url[host_start..]
                    .find(['/', ':', '?'])
                    .map_or(url.len(), |i| host_start + i);
                let mut starts = vec![host_start];
                for (i, b) in url[host_start..host_end].bytes().enumerate() {
                    if b == b'.' {
                        starts.push(host_start + i + 1);
                    }
                }
                starts
                    .into_iter()
                    .any(|at| match_from(&pat, &s, at, self.anchor_end))
            }
            Anchor::None => (0..=s.len()).any(|at| match_from(&pat, &s, at, self.anchor_end)),
        }
    }

    /// Whether the rule's options admit this request.
    pub fn options_allow(&self, req: &HttpRequest) -> bool {
        let opts = &self.options;
        let ty = req.resource_type.abp_option();
        if !opts.types.is_empty() && !opts.types.contains(ty) {
            return false;
        }
        if opts.not_types.contains(ty) {
            return false;
        }
        if let Some(wants_third) = opts.third_party {
            if req.is_third_party() != wants_third {
                return false;
            }
        }
        if !opts.include_domains.is_empty() || !opts.exclude_domains.is_empty() {
            let Some(init) = &req.initiator else {
                return opts.include_domains.is_empty();
            };
            let dom = init.registrable_domain();
            if opts.exclude_domains.iter().any(|d| d == dom) {
                return false;
            }
            if !opts.include_domains.is_empty() && !opts.include_domains.iter().any(|d| d == dom) {
                return false;
            }
        }
        true
    }

    /// Full decision: pattern and options both match.
    pub fn matches(&self, req: &HttpRequest) -> bool {
        self.options_allow(req) && self.matches_url(&req.url.to_string())
    }

    /// Literal (wildcard-free, separator-free) fragments of the pattern,
    /// used by the engine's token index.
    pub fn literal_fragments(&self) -> Vec<&str> {
        self.pattern
            .split(['*', '^'])
            .filter(|f| !f.is_empty())
            .collect()
    }
}

fn looks_like_options(s: &str) -> bool {
    !s.is_empty()
        && s.split(',').all(|o| {
            let o = o.trim().trim_start_matches('~');
            o.starts_with("domain=")
                || matches!(
                    o,
                    "script"
                        | "image"
                        | "stylesheet"
                        | "font"
                        | "media"
                        | "xmlhttprequest"
                        | "subdocument"
                        | "document"
                        | "ping"
                        | "websocket"
                        | "other"
                        | "third-party"
                )
        })
}

fn parse_options(s: &str) -> Result<FilterOptions, FilterParseError> {
    let mut opts = FilterOptions::default();
    for item in s.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if let Some(domains) = item.strip_prefix("domain=") {
            for d in domains.split('|') {
                let d = d.trim().to_ascii_lowercase();
                if let Some(excl) = d.strip_prefix('~') {
                    opts.exclude_domains.push(excl.to_owned());
                } else if !d.is_empty() {
                    opts.include_domains.push(d);
                }
            }
        } else if item == "third-party" {
            opts.third_party = Some(true);
        } else if item == "~third-party" {
            opts.third_party = Some(false);
        } else if let Some(t) = item.strip_prefix('~') {
            opts.not_types.insert(t.to_owned());
        } else {
            opts.types.insert(item.to_owned());
        }
    }
    Ok(opts)
}

/// Is `c` an ABP "separator" character (matched by `^`)?
fn is_separator(c: char) -> bool {
    !(c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '%')
}

/// Match pattern `pat` against `s` starting at `at`. `^` matches a separator
/// or the end of the string; `*` matches any span.
fn match_from(pat: &[char], s: &[char], at: usize, anchor_end: bool) -> bool {
    fn go(pat: &[char], s: &[char], mut si: usize, anchor_end: bool) -> bool {
        let mut pi = 0;
        while pi < pat.len() {
            match pat[pi] {
                '*' => {
                    // Greedy with backtracking: try every suffix.
                    let rest = &pat[pi + 1..];
                    if rest.is_empty() {
                        return true; // trailing '*' absorbs everything, even to the end anchor
                    }
                    for start in si..=s.len() {
                        if go(rest, s, start, anchor_end) {
                            return true;
                        }
                    }
                    return false;
                }
                '^' => {
                    if si == s.len() {
                        // `^` may match the end of the URL only if it's the
                        // final pattern char.
                        return pi == pat.len() - 1;
                    }
                    if !is_separator(s[si]) {
                        return false;
                    }
                    si += 1;
                    pi += 1;
                }
                c => {
                    if si >= s.len() || s[si] != c {
                        return false;
                    }
                    si += 1;
                    pi += 1;
                }
            }
        }
        !anchor_end || si == s.len()
    }
    if at > s.len() {
        return false;
    }
    go(pat, s, at, anchor_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_net::{ResourceType, Url};

    fn rule(s: &str) -> FilterRule {
        FilterRule::parse(s).unwrap()
    }

    fn req(url: &str, ty: ResourceType, initiator: Option<&str>) -> HttpRequest {
        let mut r = HttpRequest::get(Url::parse(url).unwrap(), ty);
        if let Some(i) = initiator {
            r = r.with_initiator(Url::parse(i).unwrap());
        }
        r
    }

    #[test]
    fn comments_rejected() {
        assert!(FilterRule::parse("! a comment").is_err());
        assert!(FilterRule::parse("").is_err());
    }

    #[test]
    fn domain_anchor_matches_label_boundaries() {
        let r = rule("||ads.example.com^");
        assert!(r.matches_url("http://ads.example.com/banner.png"));
        assert!(r.matches_url("https://sub.ads.example.com/x")); // after a dot
        assert!(
            !r.matches_url("http://notads.example.com/x"),
            "no label boundary"
        );
        assert!(!r.matches_url("http://example.com/ads.example.com"));
    }

    #[test]
    fn separator_semantics() {
        let r = rule("||example.com^");
        assert!(r.matches_url("http://example.com/"));
        assert!(r.matches_url("http://example.com:8080/"));
        assert!(r.matches_url("http://example.com")); // ^ at end of URL
        assert!(
            !r.matches_url("http://example.company.net/"),
            "'c' is not a separator"
        );
    }

    #[test]
    fn start_anchor_and_end_anchor() {
        let r = rule("|http://exact.com/path|");
        assert!(r.matches_url("http://exact.com/path"));
        assert!(!r.matches_url("http://exact.com/path/more"));
        assert!(!r.matches_url("https://pre.fix/http://exact.com/path"));
    }

    #[test]
    fn substring_and_wildcards() {
        let r = rule("/banner/*/ad^");
        assert!(r.matches_url("http://x.com/banner/2016/ad?x=1"));
        assert!(r.matches_url("http://x.com/banner/a/b/ad/"));
        assert!(!r.matches_url("http://x.com/banner/ad"));
    }

    #[test]
    fn options_types() {
        let r = rule("||tracker.net^$script,xmlhttprequest");
        assert!(r.matches(&req("http://tracker.net/t.js", ResourceType::Script, None)));
        assert!(!r.matches(&req("http://tracker.net/p.gif", ResourceType::Image, None)));
        let neg = rule("||tracker.net^$~image");
        assert!(neg.matches(&req("http://tracker.net/t.js", ResourceType::Script, None)));
        assert!(!neg.matches(&req("http://tracker.net/p.gif", ResourceType::Image, None)));
    }

    #[test]
    fn options_third_party() {
        let r = rule("||wide.net^$third-party");
        assert!(r.matches(&req(
            "http://wide.net/x.js",
            ResourceType::Script,
            Some("http://news.com/")
        )));
        assert!(!r.matches(&req(
            "http://wide.net/x.js",
            ResourceType::Script,
            Some("http://wide.net/")
        )));
    }

    #[test]
    fn options_domain_scoping() {
        let r = rule("||cdn.net^$domain=news.com|~sports.news.com");
        assert!(r.matches(&req(
            "http://cdn.net/a.js",
            ResourceType::Script,
            Some("http://www.news.com/")
        )));
        assert!(!r.matches(&req(
            "http://cdn.net/a.js",
            ResourceType::Script,
            Some("http://blog.org/")
        )));
    }

    #[test]
    fn exception_rules() {
        let r = rule("@@||goodsite.com^$script");
        assert!(r.exception);
        assert!(r.matches(&req(
            "http://goodsite.com/app.js",
            ResourceType::Script,
            None
        )));
    }

    #[test]
    fn element_hiding_rules() {
        let global = rule("##.ad-banner");
        assert!(
            matches!(&global.kind, RuleKind::ElementHide { selector } if selector == ".ad-banner")
        );
        assert!(global.hide_domains.is_empty());
        let scoped = rule("news.com,blog.org##.sponsored");
        assert_eq!(scoped.hide_domains, vec!["news.com", "blog.org"]);
        assert!(FilterRule::parse("news.com##").is_err());
    }

    #[test]
    fn dollar_in_path_not_treated_as_options() {
        let r = rule("/cgi$foo/");
        assert!(matches!(r.kind, RuleKind::Network));
        assert_eq!(r.pattern, "/cgi$foo/");
        assert!(r.matches_url("http://x.com/cgi$foo/run"));
    }

    #[test]
    fn literal_fragments_for_tokenization() {
        let r = rule("||ads.example.com^/banner/*");
        assert_eq!(r.literal_fragments(), vec!["ads.example.com", "/banner/"]);
    }

    #[test]
    fn plain_substring_rule() {
        let r = rule("doubleclick");
        assert!(r.matches_url("http://ad.doubleclick.net/pixel"));
        assert!(!r.matches_url("http://example.com/"));
    }
}
