//! # bfu-blocker
//!
//! Advertising and tracking blockers, reproduced as real request-filtering
//! engines rather than hard-coded outcomes.
//!
//! The paper installs AdBlock Plus (crowd-sourced URL filter rules plus
//! element hiding) and Ghostery (a curated tracker database). Block rates in
//! its results *emerge* from requests those extensions stop; ours do too:
//!
//! - [`filter`] — ABP filter-rule parser: `||` and `|` anchors, `^`
//!   separator, `*` wildcards, and `$` options (`script`, `image`,
//!   `third-party`, `domain=`, ...), plus `##` element-hiding rules and
//!   `@@` exceptions.
//! - [`engine`] — the matching engine with a token index so rule lookup is
//!   sublinear in list size (ablated in the benches).
//! - [`tracker`] — Ghostery-style tracker database keyed by registrable
//!   domain with categories.
//! - [`policy`] — composition into the `RequestPolicy` the browser consults.

pub mod engine;
pub mod filter;
pub mod policy;
pub mod tracker;

pub use engine::FilterEngine;
pub use filter::{FilterOptions, FilterRule, RuleKind};
pub use policy::{BlockDecision, BlockerStack};
pub use tracker::{TrackerCategory, TrackerDb};
