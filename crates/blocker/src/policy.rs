//! Composition of blockers into the request policy the browser consults.
//!
//! The paper crawls with four browser configurations: default (no blockers),
//! AdBlock Plus only, Ghostery only (both for Fig. 7), and ABP + Ghostery
//! together (the main "blocking" condition). [`BlockerStack`] models any of
//! those, plus element-hiding selector collection.

use crate::engine::FilterEngine;
use crate::tracker::TrackerDb;
use bfu_net::HttpRequest;
use std::sync::Arc;

/// Which extension blocked a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockDecision {
    /// Allowed through.
    Allow,
    /// Blocked by the ad-blocking filter list; carries the rule text.
    BlockedByAdblock(String),
    /// Blocked by the tracker database; carries the category label.
    BlockedByTracker(&'static str),
}

impl BlockDecision {
    /// Whether the request is blocked.
    pub fn is_blocked(&self) -> bool {
        !matches!(self, BlockDecision::Allow)
    }
}

/// An installed set of blocking extensions.
#[derive(Debug, Clone, Default)]
pub struct BlockerStack {
    adblock: Option<Arc<FilterEngine>>,
    ghostery: Option<Arc<TrackerDb>>,
}

impl BlockerStack {
    /// No blockers installed (the paper's default configuration).
    pub fn none() -> Self {
        Self::default()
    }

    /// Install an ABP-style filter engine.
    pub fn with_adblock(mut self, engine: Arc<FilterEngine>) -> Self {
        self.adblock = Some(engine);
        self
    }

    /// Install a Ghostery-style tracker database.
    pub fn with_ghostery(mut self, db: Arc<TrackerDb>) -> Self {
        self.ghostery = Some(db);
        self
    }

    /// Whether any blocker is installed.
    pub fn any_installed(&self) -> bool {
        self.adblock.is_some() || self.ghostery.is_some()
    }

    /// Decide a request. The ad blocker is consulted first (matching the
    /// paper's extension ordering); the tracker blocker second.
    pub fn decide(&self, req: &HttpRequest) -> BlockDecision {
        if let Some(abp) = &self.adblock {
            if let Some(rule) = abp.match_request(req) {
                return BlockDecision::BlockedByAdblock(rule.to_owned());
            }
        }
        if let Some(gh) = &self.ghostery {
            if let Some(cat) = gh.match_request(req) {
                return BlockDecision::BlockedByTracker(cat.label());
            }
        }
        BlockDecision::Allow
    }

    /// Element-hiding selectors for a page on `domain` (ad blocker only;
    /// Ghostery does not hide elements).
    pub fn hiding_selectors(&self, domain: &str) -> Vec<String> {
        self.adblock
            .as_ref()
            .map(|abp| {
                abp.hiding_selectors(domain)
                    .into_iter()
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::TrackerCategory;
    use bfu_net::{ResourceType, Url};

    fn req(url: &str, initiator: &str) -> HttpRequest {
        HttpRequest::get(Url::parse(url).unwrap(), ResourceType::Script)
            .with_initiator(Url::parse(initiator).unwrap())
    }

    fn stack() -> BlockerStack {
        let abp = FilterEngine::from_list("||adnet.com^\n##.ad\n");
        let mut db = TrackerDb::new();
        db.add("spyglass.io", TrackerCategory::Tracking);
        BlockerStack::none()
            .with_adblock(Arc::new(abp))
            .with_ghostery(Arc::new(db))
    }

    #[test]
    fn empty_stack_allows_everything() {
        let s = BlockerStack::none();
        assert!(!s.any_installed());
        assert_eq!(
            s.decide(&req("http://adnet.com/a.js", "http://x.com/")),
            BlockDecision::Allow
        );
        assert!(s.hiding_selectors("x.com").is_empty());
    }

    #[test]
    fn adblock_takes_priority() {
        let s = stack();
        let d = s.decide(&req("http://adnet.com/a.js", "http://x.com/"));
        assert!(matches!(d, BlockDecision::BlockedByAdblock(_)));
        assert!(d.is_blocked());
    }

    #[test]
    fn tracker_blocked_when_adblock_misses() {
        let s = stack();
        let d = s.decide(&req("http://spyglass.io/t.js", "http://x.com/"));
        assert_eq!(d, BlockDecision::BlockedByTracker("tracking"));
    }

    #[test]
    fn clean_request_allowed() {
        let s = stack();
        assert_eq!(
            s.decide(&req("http://x.com/app.js", "http://x.com/")),
            BlockDecision::Allow
        );
    }

    #[test]
    fn hiding_selectors_come_from_adblock() {
        let s = stack();
        assert_eq!(s.hiding_selectors("anything.com"), vec![".ad"]);
    }

    #[test]
    fn single_extension_configurations() {
        let abp_only =
            BlockerStack::none().with_adblock(Arc::new(FilterEngine::from_list("||adnet.com^")));
        assert!(abp_only
            .decide(&req("http://adnet.com/x.js", "http://a.com/"))
            .is_blocked());
        assert!(!abp_only
            .decide(&req("http://spyglass.io/t.js", "http://a.com/"))
            .is_blocked());

        let mut db = TrackerDb::new();
        db.add("spyglass.io", TrackerCategory::Tracking);
        let gh_only = BlockerStack::none().with_ghostery(Arc::new(db));
        assert!(gh_only
            .decide(&req("http://spyglass.io/t.js", "http://a.com/"))
            .is_blocked());
        assert!(!gh_only
            .decide(&req("http://adnet.com/x.js", "http://a.com/"))
            .is_blocked());
    }
}
