//! Ghostery-style tracker database.
//!
//! Ghostery (§3.6) blocks resources and cookies associated with cross-domain
//! passive tracking, as curated by its maintainer. We model that as a
//! database of registrable domains tagged with a category; third-party
//! requests to a listed domain are blocked unless the category is exempt.

use bfu_net::HttpRequest;
use std::collections::HashMap;

/// Why a domain is in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackerCategory {
    /// Cross-site audience tracking / fingerprinting.
    Tracking,
    /// Analytics beacons (page-view counting et al.).
    Analytics,
    /// Advertising exchanges that also track.
    AdTracking,
    /// Social-media widgets with embedded tracking.
    Social,
    /// Listed but exempt (e.g. essential CDNs users whitelist by default).
    Exempt,
}

impl TrackerCategory {
    /// Whether Ghostery blocks this category by default.
    pub fn blocked_by_default(self) -> bool {
        !matches!(self, TrackerCategory::Exempt)
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TrackerCategory::Tracking => "tracking",
            TrackerCategory::Analytics => "analytics",
            TrackerCategory::AdTracking => "ad-tracking",
            TrackerCategory::Social => "social",
            TrackerCategory::Exempt => "exempt",
        }
    }
}

/// The tracker database.
#[derive(Debug, Clone, Default)]
pub struct TrackerDb {
    domains: HashMap<String, TrackerCategory>,
}

impl TrackerDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a registrable domain with its category.
    pub fn add(&mut self, domain: &str, category: TrackerCategory) {
        self.domains.insert(domain.to_ascii_lowercase(), category);
    }

    /// Number of listed domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Look up the category for a host (by its registrable domain).
    pub fn category_of(&self, host: &str) -> Option<TrackerCategory> {
        let host = host.to_ascii_lowercase();
        // Exact, then registrable-domain lookup.
        if let Some(&c) = self.domains.get(&host) {
            return Some(c);
        }
        let reg = bfu_net::url::registrable_domain_of(&host);
        self.domains.get(reg).copied()
    }

    /// Decide whether a request should be blocked: it must be third-party
    /// and target a domain listed in a blocked-by-default category.
    ///
    /// Returns the category on block.
    pub fn match_request(&self, req: &HttpRequest) -> Option<TrackerCategory> {
        if !req.is_third_party() {
            return None;
        }
        let cat = self.category_of(req.url.host())?;
        cat.blocked_by_default().then_some(cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_net::{ResourceType, Url};

    fn req(url: &str, initiator: &str) -> HttpRequest {
        HttpRequest::get(Url::parse(url).unwrap(), ResourceType::Script)
            .with_initiator(Url::parse(initiator).unwrap())
    }

    fn db() -> TrackerDb {
        let mut db = TrackerDb::new();
        db.add("trackmax.net", TrackerCategory::Tracking);
        db.add("metrics.io", TrackerCategory::Analytics);
        db.add("bigcdn.com", TrackerCategory::Exempt);
        db
    }

    #[test]
    fn blocks_third_party_trackers() {
        let db = db();
        assert_eq!(
            db.match_request(&req("http://px.trackmax.net/t.js", "http://news.com/")),
            Some(TrackerCategory::Tracking)
        );
        assert_eq!(
            db.match_request(&req("http://metrics.io/m.js", "http://news.com/")),
            Some(TrackerCategory::Analytics)
        );
    }

    #[test]
    fn first_party_never_blocked() {
        let db = db();
        assert_eq!(
            db.match_request(&req("http://trackmax.net/self.js", "http://trackmax.net/")),
            None
        );
    }

    #[test]
    fn exempt_categories_allowed() {
        let db = db();
        assert_eq!(
            db.match_request(&req("http://bigcdn.com/lib.js", "http://news.com/")),
            None
        );
    }

    #[test]
    fn unlisted_domains_allowed() {
        let db = db();
        assert_eq!(
            db.match_request(&req("http://innocent.org/x.js", "http://news.com/")),
            None
        );
    }

    #[test]
    fn subdomain_lookup_via_registrable_domain() {
        let db = db();
        assert_eq!(
            db.category_of("deep.sub.trackmax.net"),
            Some(TrackerCategory::Tracking)
        );
        assert_eq!(db.category_of("unrelated.org"), None);
    }

    #[test]
    fn category_labels() {
        assert_eq!(TrackerCategory::AdTracking.label(), "ad-tracking");
        assert!(TrackerCategory::Tracking.blocked_by_default());
        assert!(!TrackerCategory::Exempt.blocked_by_default());
    }
}
