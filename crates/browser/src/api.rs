//! The Web API surface: every registry feature becomes a real method or
//! property slot on a prototype object inside the script interpreter.
//!
//! Layout mirrors a real browser:
//!
//! - one **prototype object** per WebIDL interface, carrying the interface's
//!   method features as callable natives (and a hidden `__iface` marker the
//!   instrumentation uses to attribute property writes);
//! - **inheritance** wired for the core DOM hierarchy
//!   (`HTMLElement → Element → Node`, `Document → Node`);
//! - **global constructors** (`new XMLHttpRequest()`, `new AudioContext()`,
//!   ...) whose `.prototype` is the interface prototype;
//! - **singletons** (`window`, `document`, `navigator`, `performance`) whose
//!   prototypes are their interfaces — the objects the paper's extension
//!   watches for property writes;
//! - a handful of uncounted **plumbing globals** (`setTimeout`,
//!   `clearTimeout`, `setInterval`) that exist in any browser but are not
//!   part of the 1,392-feature registry under study.
//!
//! A small set of methods carry *real behavior* against the page's DOM and
//! network (createElement, appendChild, querySelectorAll, addEventListener,
//! XHR open, sendBeacon, requestAnimationFrame, ...); the long tail are
//! plausible stubs. Either way every call flows through the prototype chain,
//! which is what the instrumentation patches.

use crate::timers::TimerQueue;
use bfu_dom::{Document, EventRegistry, NodeId};
use bfu_net::{ResourceType, Url};
use bfu_script::interp::{Interpreter, RuntimeError};
use bfu_script::object::ObjId;
use bfu_script::Value;
use bfu_util::Instant;
use bfu_webidl::{FeatureKind, FeatureRegistry};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Page-side state the API natives operate on.
#[derive(Debug)]
pub struct HostEnv {
    /// The page's DOM.
    pub doc: Document,
    /// The page URL (initiator for script-issued requests).
    pub base_url: Url,
    /// DOM event listener registry.
    pub events: EventRegistry,
    /// Listener handle → script callback.
    pub listeners: Vec<Value>,
    /// Virtual timers.
    pub timers: TimerQueue,
    /// Requests issued by scripts (XHR, beacons, fetch) awaiting the network.
    pub pending_requests: Vec<(Url, ResourceType)>,
    /// Script ↔ DOM object identity map.
    pub node_objs: HashMap<NodeId, ObjId>,
    /// Current virtual time (the page updates this before running timers).
    pub now: Instant,
    /// Compiled-selector memo, per page load: querySelector/__listen/element
    /// hiding re-query the same handful of selector strings many times per
    /// page, so each is compiled at most once (`None` = known-invalid).
    selector_cache: HashMap<String, Option<bfu_dom::Selector>>,
}

impl HostEnv {
    /// Fresh host state for a page at `base_url` with a parsed document.
    pub fn new(doc: Document, base_url: Url) -> Self {
        HostEnv {
            doc,
            base_url,
            events: EventRegistry::new(),
            listeners: Vec::new(),
            timers: TimerQueue::new(),
            pending_requests: Vec::new(),
            node_objs: HashMap::new(),
            now: Instant::ZERO,
            selector_cache: HashMap::new(),
        }
    }

    /// Register a script callback as a listener handle.
    pub fn add_listener_value(&mut self, callback: Value) -> u32 {
        let h = u32::try_from(self.listeners.len()).unwrap_or(u32::MAX);
        self.listeners.push(callback);
        h
    }

    /// Compile a selector, memoized for the life of this page load.
    /// Returns `None` for invalid selector syntax (also memoized, so a bad
    /// selector queried in a loop is diagnosed once).
    pub fn compile_selector(&mut self, src: &str) -> Option<bfu_dom::Selector> {
        if let Some(cached) = self.selector_cache.get(src) {
            return cached.clone();
        }
        let sel = bfu_dom::Selector::parse(src).ok();
        self.selector_cache.insert(src.to_owned(), sel.clone());
        sel
    }
}

/// The installed API surface.
#[derive(Debug)]
pub struct ApiSurface {
    /// Interface name → prototype object.
    pub prototypes: Rc<HashMap<String, ObjId>>,
    /// Singleton globals (`window`, `document`, `navigator`, `performance`).
    pub singletons: Vec<(String, ObjId)>,
    /// Shared host state.
    pub host: Rc<RefCell<HostEnv>>,
}

/// Hidden property marking an object's interface for the instrumentation.
pub const IFACE_MARKER: &str = "__iface";

/// Map an HTML tag to the interface backing its element objects.
fn interface_for_tag(tag: &str) -> &'static str {
    match tag {
        "canvas" => "HTMLCanvasElement",
        "form" => "HTMLFormElement",
        "input" => "HTMLInputElement",
        "a" => "HTMLAnchorElement",
        "img" => "HTMLImageElement",
        "iframe" => "HTMLIFrameElement",
        "select" => "HTMLSelectElement",
        "script" => "HTMLScriptElement",
        "video" => "HTMLVideoElement",
        "audio" => "HTMLAudioElement",
        _ => "HTMLElement",
    }
}

/// Wrap a DOM node as a script object (idempotent per node).
pub fn wrap_node(
    interp: &mut Interpreter,
    host: &Rc<RefCell<HostEnv>>,
    protos: &HashMap<String, ObjId>,
    node: NodeId,
) -> Value {
    if let Some(&obj) = host.borrow().node_objs.get(&node) {
        return Value::Obj(obj);
    }
    let tag = host.borrow().doc.tag(node).map(str::to_owned);
    let proto_name = match tag.as_deref() {
        Some(t) => interface_for_tag(t),
        None => "Node",
    };
    let proto = protos
        .get(proto_name)
        .or_else(|| protos.get("HTMLElement"))
        .or_else(|| protos.get("Element"))
        .or_else(|| protos.get("Node"))
        .copied();
    let obj = interp.heap.alloc(proto);
    interp.heap.get_mut(obj).host_tag = Some(u64::from(node.raw()));
    if let Some(t) = tag {
        interp
            .heap
            .set_prop_raw(obj, "tagName", Value::str(t.to_ascii_uppercase()));
    }
    host.borrow_mut().node_objs.insert(node, obj);
    Value::Obj(obj)
}

/// The DOM node behind a script object, if any.
pub fn node_of(interp: &Interpreter, v: &Value) -> Option<NodeId> {
    let obj = v.as_obj()?;
    interp
        .heap
        .get(obj)
        .host_tag
        .and_then(|t| u32::try_from(t).ok())
        .map(NodeId::new)
}

/// Build a script array object from values.
fn make_array(interp: &mut Interpreter, items: &[Value]) -> Value {
    let arr = interp.heap.alloc(None);
    for (i, v) in items.iter().enumerate() {
        interp.heap.set_prop_raw(arr, &i.to_string(), v.clone());
    }
    interp
        .heap
        .set_prop_raw(arr, "length", Value::Num(items.len() as f64));
    Value::Obj(arr)
}

/// Install the full API surface into `interp`.
pub fn install(
    interp: &mut Interpreter,
    registry: &FeatureRegistry,
    host: Rc<RefCell<HostEnv>>,
) -> ApiSurface {
    // 1. Prototype objects for every interface in the registry.
    let mut protos: HashMap<String, ObjId> = HashMap::new();
    for f in registry.features() {
        protos
            .entry(f.interface.clone())
            .or_insert_with(|| interp.heap.alloc(None));
    }
    // Ensure core hierarchy interfaces exist even if no feature landed there.
    for name in ["Node", "Element", "HTMLElement", "Document", "Window"] {
        protos
            .entry(name.to_owned())
            .or_insert_with(|| interp.heap.alloc(None));
    }
    // Mark interfaces and wire the DOM hierarchy.
    for (name, &obj) in &protos {
        interp
            .heap
            .set_prop_raw(obj, IFACE_MARKER, Value::str(name));
    }
    let link =
        |interp: &mut Interpreter, protos: &HashMap<String, ObjId>, child: &str, parent: &str| {
            if let (Some(&c), Some(&p)) = (protos.get(child), protos.get(parent)) {
                interp.heap.get_mut(c).proto = Some(p);
            }
        };
    link(interp, &protos, "Node", "EventTarget");
    link(interp, &protos, "Element", "Node");
    link(interp, &protos, "HTMLElement", "Element");
    link(interp, &protos, "Document", "Node");
    link(interp, &protos, "Window", "EventTarget");
    for name in protos.keys().cloned().collect::<Vec<_>>() {
        if name.starts_with("HTML") && name.ends_with("Element") && name != "HTMLElement" {
            link(interp, &protos, &name, "HTMLElement");
        }
        if name.starts_with("SVG") && name.ends_with("Element") {
            link(interp, &protos, &name, "Element");
        }
    }
    // Media elements inherit HTMLMediaElement (where `play` et al. live).
    link(interp, &protos, "HTMLMediaElement", "HTMLElement");
    link(interp, &protos, "HTMLVideoElement", "HTMLMediaElement");
    link(interp, &protos, "HTMLAudioElement", "HTMLMediaElement");
    let protos = Rc::new(protos);

    // 2. Method features → natives on prototypes.
    for f in registry.features() {
        if f.kind != FeatureKind::Method {
            continue;
        }
        let proto = protos[&f.interface];
        let native = behavior_native(interp, &f.interface, &f.member, &host, &protos);
        interp.heap.set_prop_raw(proto, &f.member, native);
    }

    // 3. Singletons.
    let mut singletons = Vec::new();
    for (global, iface) in [
        ("window", "Window"),
        ("document", "Document"),
        ("navigator", "Navigator"),
        ("performance", "Performance"),
    ] {
        let proto = protos.get(iface).copied();
        let obj = interp.heap.alloc(proto);
        interp.set_global(global, Value::Obj(obj));
        singletons.push((global.to_owned(), obj));
    }
    let window = singletons[0].1;
    for (name, obj) in &singletons[1..] {
        interp.heap.set_prop_raw(window, name, Value::Obj(*obj));
    }
    interp
        .heap
        .set_prop_raw(window, "window", Value::Obj(window));
    // document is backed by the DOM root.
    let doc_obj = singletons[1].1;
    {
        let root = host.borrow().doc.root();
        interp.heap.get_mut(doc_obj).host_tag = Some(u64::from(root.raw()));
        host.borrow_mut().node_objs.insert(root, doc_obj);
    }
    // location: a plain object, not part of the registry surface here.
    let location = interp.heap.alloc(None);
    let href = host.borrow().base_url.to_string();
    interp
        .heap
        .set_prop_raw(location, "href", Value::str(&href));
    interp
        .heap
        .set_prop_raw(window, "location", Value::Obj(location));
    interp.set_global("location", Value::Obj(location));

    // 4. Global constructors for non-singleton interfaces.
    for (name, &proto) in protos.iter() {
        if matches!(
            name.as_str(),
            "Window" | "Document" | "Navigator" | "Performance"
        ) {
            continue;
        }
        let ctor = interp.register_native(Rc::new(|_, _, _| Ok(Value::Undefined)));
        let Some(ctor_obj) = ctor.as_obj() else {
            continue;
        };
        interp
            .heap
            .set_prop_raw(ctor_obj, "prototype", Value::Obj(proto));
        interp.set_global(name, ctor);
    }

    // 5. Plumbing globals (not registry features; uncounted by design).
    install_plumbing(interp, &host);

    ApiSurface {
        prototypes: protos,
        singletons,
        host,
    }
}

fn install_plumbing(interp: &mut Interpreter, host: &Rc<RefCell<HostEnv>>) {
    let h = host.clone();
    let set_timeout = interp.register_native(Rc::new(move |_, _, args| {
        let cb = args.first().cloned().unwrap_or(Value::Undefined);
        let ms = args.get(1).map(|v| v.to_number()).unwrap_or(0.0);
        let ms = if ms.is_finite() && ms >= 0.0 {
            ms as u64
        } else {
            0
        };
        let mut host = h.borrow_mut();
        let now = host.now;
        let id = host.timers.schedule(cb, now, ms);
        Ok(Value::Num(f64::from(id)))
    }));
    interp.set_global("setTimeout", set_timeout);

    let h = host.clone();
    let set_interval = interp.register_native(Rc::new(move |_, _, args| {
        let cb = args.first().cloned().unwrap_or(Value::Undefined);
        let ms = args.get(1).map(|v| v.to_number()).unwrap_or(0.0);
        let ms = if ms.is_finite() && ms >= 1.0 {
            ms as u64
        } else {
            1
        };
        let mut host = h.borrow_mut();
        let now = host.now;
        let id = host.timers.schedule_repeating(cb, now, ms);
        Ok(Value::Num(f64::from(id)))
    }));
    interp.set_global("setInterval", set_interval);

    let h = host.clone();
    let clear = interp.register_native(Rc::new(move |_, _, args| {
        if let Some(id) = args.first().map(|v| v.to_number()) {
            if id.is_finite() && id >= 0.0 {
                h.borrow_mut().timers.cancel(id as u32);
            }
        }
        Ok(Value::Undefined)
    }));
    interp.set_global("clearTimeout", clear.clone());
    interp.set_global("clearInterval", clear);

    // `__listen(selector, type, fn)`: generator scaffolding used by the
    // synthetic web to wire interaction-triggered code without spending any
    // *registry* features on the wiring itself — so a site's measured
    // feature set equals its planned feature set exactly. Real pages would
    // use `addEventListener` (a DOM2-E feature); planned DOM2-E usage still
    // calls the real, instrumented `addEventListener`.
    let h = host.clone();
    let listen = interp.register_native(Rc::new(move |_, _, args| {
        let sel_src = args.first().map(|v| v.to_display()).unwrap_or_default();
        let ev_type = args.get(1).map(|v| v.to_display()).unwrap_or_default();
        let cb = args.get(2).cloned().unwrap_or(Value::Undefined);
        let mut hh = h.borrow_mut();
        let node = hh
            .compile_selector(&sel_src)
            .and_then(|s| s.query_first(&hh.doc))
            .unwrap_or(hh.doc.root());
        let handle = hh.add_listener_value(cb);
        hh.events.add_listener(node, &ev_type, handle, false);
        Ok(Value::Undefined)
    }));
    interp.set_global("__listen", listen);
}

/// Create the base (un-instrumented) native for a method feature.
fn behavior_native(
    interp: &mut Interpreter,
    interface: &str,
    member: &str,
    host: &Rc<RefCell<HostEnv>>,
    protos: &Rc<HashMap<String, ObjId>>,
) -> Value {
    let host = host.clone();
    let protos = protos.clone();
    match (interface, member) {
        ("Document", "createElement") => interp.register_native(Rc::new(move |i, _, args| {
            let tag = args.first().map(|v| v.to_display()).unwrap_or_default();
            let node = host.borrow_mut().doc.create_element(&tag);
            Ok(wrap_node(i, &host, &protos, node))
        })),
        ("Node", "appendChild") => interp.register_native(Rc::new(move |i, this, args| {
            let (Some(parent), Some(child)) =
                (node_of(i, &this), args.first().and_then(|a| node_of(i, a)))
            else {
                return Err(RuntimeError::TypeError("appendChild needs nodes".into()));
            };
            if !host.borrow().doc.is_ancestor(child, parent) {
                host.borrow_mut().doc.append_child(parent, child);
            }
            Ok(args[0].clone())
        })),
        ("Node", "insertBefore") => interp.register_native(Rc::new(move |i, this, args| {
            let parent = node_of(i, &this);
            let child = args.first().and_then(|a| node_of(i, a));
            let reference = args.get(1).and_then(|a| node_of(i, a));
            match (parent, child, reference) {
                (Some(p), Some(c), Some(r))
                    if host.borrow().doc.children(p).contains(&r)
                        && !host.borrow().doc.is_ancestor(c, p) =>
                {
                    host.borrow_mut().doc.insert_before(p, c, r);
                }
                (Some(p), Some(c), None) if !host.borrow().doc.is_ancestor(c, p) => {
                    host.borrow_mut().doc.append_child(p, c);
                }
                _ => {}
            }
            Ok(args.first().cloned().unwrap_or(Value::Undefined))
        })),
        ("Node", "cloneNode") => interp.register_native(Rc::new(move |i, this, _| {
            let Some(node) = node_of(i, &this) else {
                return Err(RuntimeError::TypeError("cloneNode needs a node".into()));
            };
            let copy = host.borrow_mut().doc.clone_subtree(node);
            Ok(wrap_node(i, &host, &protos, copy))
        })),
        ("Element", "remove") => interp.register_native(Rc::new(move |i, this, _| {
            if let Some(node) = node_of(i, &this) {
                host.borrow_mut().doc.detach(node);
            }
            Ok(Value::Undefined)
        })),
        (_, "querySelectorAll") | (_, "querySelector") => {
            let first_only = member == "querySelector";
            interp.register_native(Rc::new(move |i, _, args| {
                let sel_src = args.first().map(|v| v.to_display()).unwrap_or_default();
                let Some(sel) = host.borrow_mut().compile_selector(&sel_src) else {
                    return Ok(if first_only {
                        Value::Null
                    } else {
                        make_array(i, &[])
                    });
                };
                let nodes = sel.query_all(&host.borrow().doc);
                if first_only {
                    return Ok(match nodes.first() {
                        Some(&n) => wrap_node(i, &host, &protos, n),
                        None => Value::Null,
                    });
                }
                let items: Vec<Value> = nodes
                    .into_iter()
                    .map(|n| wrap_node(i, &host, &protos, n))
                    .collect();
                Ok(make_array(i, &items))
            }))
        }
        ("EventTarget", "addEventListener") => {
            interp.register_native(Rc::new(move |i, this, args| {
                let ev_type = args.first().map(|v| v.to_display()).unwrap_or_default();
                let cb = args.get(1).cloned().unwrap_or(Value::Undefined);
                let capture = args.get(2).map(|v| v.truthy()).unwrap_or(false);
                let node = node_of(i, &this).unwrap_or(host.borrow().doc.root());
                let mut h = host.borrow_mut();
                let handle = h.add_listener_value(cb);
                h.events.add_listener(node, &ev_type, handle, capture);
                Ok(Value::Undefined)
            }))
        }
        ("XMLHttpRequest", "open") => interp.register_native(Rc::new(move |i, this, args| {
            let url_str = args.get(1).map(|v| v.to_display()).unwrap_or_default();
            let mut h = host.borrow_mut();
            if let Ok(url) = h.base_url.join(&url_str) {
                h.pending_requests.push((url.clone(), ResourceType::Xhr));
                if let Some(obj) = this.as_obj() {
                    i.heap
                        .set_prop_raw(obj, "__url", Value::str(url.to_string()));
                }
            }
            Ok(Value::Undefined)
        })),
        ("Navigator", "sendBeacon") => interp.register_native(Rc::new(move |_, _, args| {
            let url_str = args.first().map(|v| v.to_display()).unwrap_or_default();
            let mut h = host.borrow_mut();
            if let Ok(url) = h.base_url.join(&url_str) {
                h.pending_requests.push((url, ResourceType::Beacon));
            }
            Ok(Value::Bool(true))
        })),
        ("Window", "fetch") => interp.register_native(Rc::new(move |i, _, args| {
            let url_str = args.first().map(|v| v.to_display()).unwrap_or_default();
            let mut h = host.borrow_mut();
            if let Ok(url) = h.base_url.join(&url_str) {
                h.pending_requests.push((url, ResourceType::Xhr));
            }
            Ok(Value::Obj(i.heap.alloc(None))) // a promise-shaped token
        })),
        ("Window", "requestAnimationFrame") => {
            interp.register_native(Rc::new(move |_, _, args| {
                let cb = args.first().cloned().unwrap_or(Value::Undefined);
                let mut h = host.borrow_mut();
                let now = h.now;
                let id = h.timers.schedule(cb, now, 16);
                Ok(Value::Num(f64::from(id)))
            }))
        }
        ("HTMLCanvasElement", "getContext") => {
            let ctx_proto = protos.get("CanvasRenderingContext2D").copied();
            interp.register_native(Rc::new(move |i, _, _| {
                Ok(Value::Obj(i.heap.alloc(ctx_proto)))
            }))
        }
        ("Performance", "now") => interp.register_native(Rc::new(move |_, _, _| {
            Ok(Value::Num(host.borrow().now.millis() as f64))
        })),
        ("Crypto", "getRandomValues") => interp.register_native(Rc::new(move |_, _, args| {
            Ok(args.first().cloned().unwrap_or(Value::Undefined))
        })),
        ("Storage", "setItem") => interp.register_native(Rc::new(move |i, this, args| {
            if let (Some(obj), Some(k), Some(v)) = (this.as_obj(), args.first(), args.get(1)) {
                i.heap
                    .set_prop_raw(obj, &format!("__item_{}", k.to_display()), v.clone());
            }
            Ok(Value::Undefined)
        })),
        ("Document", "execCommand") => {
            interp.register_native(Rc::new(move |_, _, _| Ok(Value::Bool(true))))
        }
        ("Element", "getBoundingClientRect") => interp.register_native(Rc::new(move |i, _, _| {
            let rect = i.heap.alloc(None);
            for (k, v) in [("x", 0.0), ("y", 0.0), ("width", 100.0), ("height", 20.0)] {
                i.heap.set_prop_raw(rect, k, Value::Num(v));
            }
            Ok(Value::Obj(rect))
        })),
        // Constructor-style factory methods that should return an object of
        // a related interface.
        ("Document", "createRange") => factory(interp, &protos, "Range"),
        ("Document", "evaluate") => factory(interp, &protos, "XPathResult"),
        ("IDBFactory", "open") => factory(interp, &protos, "IDBDatabase"),
        ("AudioContext", "createOscillator") => factory(interp, &protos, "OscillatorNode"),
        ("MediaDevices", "getUserMedia") => factory(interp, &protos, "MediaStream"),
        ("Window", "getSelection") => factory(interp, &protos, "Selection"),
        ("MediaSource", "addSourceBuffer") => factory(interp, &protos, "SourceBuffer"),
        ("RTCPeerConnection", "createOffer") => factory(interp, &protos, "RTCIceCandidate"),
        ("Document", "createTouch") => factory(interp, &protos, "Touch"),
        // Numeric-returning stubs for a few known measurement methods.
        ("SVGTextContentElement", "getComputedTextLength") => {
            interp.register_native(Rc::new(move |_, _, _| Ok(Value::Num(128.0))))
        }
        // Everything else: a plausible stub.
        _ => interp.register_native(Rc::new(move |_, _, _| Ok(Value::Undefined))),
    }
}

fn factory(interp: &mut Interpreter, protos: &Rc<HashMap<String, ObjId>>, iface: &str) -> Value {
    let proto = protos.get(iface).copied();
    interp.register_native(Rc::new(move |i, _, _| Ok(Value::Obj(i.heap.alloc(proto)))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_dom::html;

    fn setup() -> (Interpreter, ApiSurface, FeatureRegistry) {
        let registry = FeatureRegistry::build();
        let mut interp = Interpreter::new();
        let doc = html::parse("<html><head></head><body><div id=main></div></body></html>");
        let url = Url::parse("http://site.com/").unwrap();
        let host = Rc::new(RefCell::new(HostEnv::new(doc, url)));
        let api = install(&mut interp, &registry, host);
        (interp, api, registry)
    }

    #[test]
    fn create_element_and_append() {
        let (mut interp, api, _) = setup();
        interp
            .run_source(
                r#"
                var el = document.createElement('p');
                var main = document.querySelector('#main');
                main.appendChild(el);
            "#,
            )
            .unwrap();
        let host = api.host.borrow();
        let main = bfu_dom::Selector::parse("#main")
            .unwrap()
            .query_first(&host.doc)
            .unwrap();
        assert_eq!(host.doc.children(main).len(), 1);
        assert_eq!(host.doc.tag(host.doc.children(main)[0]), Some("p"));
    }

    #[test]
    fn query_selector_all_returns_array() {
        let (mut interp, _, _) = setup();
        let n = interp
            .run_source("document.querySelectorAll('div').length;")
            .unwrap();
        assert_eq!(n.to_number(), 1.0);
    }

    #[test]
    fn add_event_listener_registers() {
        let (mut interp, api, _) = setup();
        interp
            .run_source(
                r#"
                var main = document.querySelector('#main');
                main.addEventListener('click', function() { clicked = 1; });
            "#,
            )
            .unwrap();
        let host = api.host.borrow();
        assert_eq!(host.listeners.len(), 1);
        assert_eq!(host.events.listener_count(), 1);
    }

    #[test]
    fn xhr_open_queues_request() {
        let (mut interp, api, _) = setup();
        interp
            .run_source(
                r#"
                var x = new XMLHttpRequest();
                x.open('GET', '/api/data');
            "#,
            )
            .unwrap();
        let host = api.host.borrow();
        assert_eq!(host.pending_requests.len(), 1);
        assert_eq!(
            host.pending_requests[0].0.to_string(),
            "http://site.com/api/data"
        );
        assert_eq!(host.pending_requests[0].1, ResourceType::Xhr);
    }

    #[test]
    fn send_beacon_queues_beacon() {
        let (mut interp, api, _) = setup();
        interp
            .run_source("navigator.sendBeacon('http://metrics.io/b');")
            .unwrap();
        let host = api.host.borrow();
        assert_eq!(host.pending_requests[0].1, ResourceType::Beacon);
    }

    #[test]
    fn set_timeout_schedules_virtual_timer() {
        let (mut interp, api, _) = setup();
        interp
            .run_source("setTimeout(function() { fired = 1; }, 500);")
            .unwrap();
        assert_eq!(api.host.borrow().timers.len(), 1);
    }

    #[test]
    fn constructors_build_instances_with_interface_protos() {
        let (mut interp, _, _) = setup();
        let v = interp
            .run_source("var a = new AudioContext(); typeof a.createOscillator;")
            .unwrap();
        assert_eq!(v.to_display(), "function");
        // The factory returns an OscillatorNode-backed object.
        let o = interp
            .run_source("var osc = a.createOscillator(); osc;")
            .unwrap();
        let obj = o.as_obj().unwrap();
        assert_eq!(
            interp.heap.get_prop(obj, IFACE_MARKER).to_display(),
            "OscillatorNode"
        );
    }

    #[test]
    fn singleton_prototypes_marked() {
        let (mut interp, _, _) = setup();
        let v = interp.run_source("navigator;").unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(
            interp.heap.get_prop(obj, IFACE_MARKER).to_display(),
            "Navigator"
        );
    }

    #[test]
    fn performance_now_reads_virtual_clock() {
        let (mut interp, api, _) = setup();
        api.host.borrow_mut().now = Instant(1234);
        let v = interp.run_source("performance.now();").unwrap();
        assert_eq!(v.to_number(), 1234.0);
    }

    #[test]
    fn dom_hierarchy_wired() {
        let (mut interp, api, _) = setup();
        // An element object created via createElement should reach Node's
        // methods through the chain (HTMLElement -> Element -> Node).
        interp
            .run_source("var d = document.createElement('span'); d.cloneNode();")
            .unwrap();
        let _ = api; // chain lookup succeeding is the assertion
    }

    #[test]
    fn every_registry_method_is_callable() {
        // Spot-check a sample: every 37th method feature must resolve to a
        // callable through its interface prototype.
        let (interp, api, registry) = setup();
        for f in registry.features().iter().step_by(37) {
            if f.kind != FeatureKind::Method {
                continue;
            }
            let proto = api.prototypes[&f.interface];
            let v = interp.heap.get_prop(proto, &f.member);
            let obj = v.as_obj().unwrap_or_else(|| panic!("{} missing", f.name));
            assert!(interp.heap.is_callable(obj), "{} not callable", f.name);
        }
    }
}
