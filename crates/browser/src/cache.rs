//! The browser-side compilation cache: scripts and iframe documents.
//!
//! One [`CompileCache`] is shared (via `Arc`) across every page load of a
//! survey — all sites, rounds, browser profiles, and worker threads. It
//! bundles two content-addressed maps:
//!
//! - the script compilation cache ([`bfu_script::ScriptCache`]): source
//!   bytes → parsed `Arc<Program>` (or a cached parse error), and
//! - a frame-document cache: iframe body bytes → the extracted list of
//!   script resources. Ad iframes are served from a small set of templates,
//!   so identical frame bodies recur across thousands of pages; extracting
//!   their `<script>` tags once replaces a full `html::parse` per visit.
//!
//! Both lookups are pure functions of content, so sharing them cannot
//! change any measurement — see the determinism notes on
//! [`bfu_script::cache`].

use bfu_dom::html;
use bfu_script::cache::CacheStats;
use bfu_script::ScriptCache;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One script resource extracted from a frame document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameScript {
    /// `<script src="...">` — the unresolved target attribute.
    External(String),
    /// `<script>...</script>` — the inline source text.
    Inline(String),
}

/// Extract the script resources of a frame document, in document order.
/// This is the pure function the frame cache memoizes.
pub fn extract_frame_scripts(frame_body: &str) -> Vec<FrameScript> {
    let subdoc = html::parse(frame_body);
    let mut scripts = Vec::new();
    for node in subdoc.elements() {
        if subdoc.tag(node) == Some("script") {
            match subdoc.attr(node, "src") {
                Some(src) => scripts.push(FrameScript::External(src.to_owned())),
                None => scripts.push(FrameScript::Inline(subdoc.text_content(node))),
            }
        }
    }
    scripts
}

/// Survey-wide compilation cache: parsed scripts plus frame-script lists.
///
/// # Examples
///
/// ```
/// use bfu_browser::cache::CompileCache;
/// let cache = CompileCache::new();
/// let body = "<html><script>var x = 1;</script></html>";
/// let a = cache.frame_scripts(body);
/// let b = cache.frame_scripts(body);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// ```
#[derive(Debug, Default)]
pub struct CompileCache {
    scripts: ScriptCache,
    frames: Mutex<HashMap<u64, Arc<Vec<FrameScript>>>>,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// The script compilation cache.
    pub fn scripts(&self) -> &ScriptCache {
        &self.scripts
    }

    /// Script-cache totals (hits/misses/negative hits/unique sources).
    pub fn script_stats(&self) -> CacheStats {
        self.scripts.stats()
    }

    /// The extracted script list for a frame body, parsed at most once per
    /// distinct body content.
    pub fn frame_scripts(&self, frame_body: &str) -> Arc<Vec<FrameScript>> {
        let key = ScriptCache::content_hash(frame_body);
        let mut frames = match self.frames.lock() {
            Ok(f) => f,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(cached) = frames.get(&key) {
            return Arc::clone(cached);
        }
        let extracted = Arc::new(extract_frame_scripts(frame_body));
        frames.insert(key, Arc::clone(&extracted));
        extracted
    }

    /// Distinct frame bodies resident.
    pub fn unique_frames(&self) -> usize {
        match self.frames.lock() {
            Ok(f) => f.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_extraction_matches_fresh_parse() {
        let body = r#"<html><body>
            <script src="https://ads.example/a.js"></script>
            <p>copy</p>
            <script>var inline = 1;</script>
        </body></html>"#;
        let cache = CompileCache::new();
        let cached = cache.frame_scripts(body);
        assert_eq!(*cached, extract_frame_scripts(body));
        assert_eq!(
            *cached,
            vec![
                FrameScript::External("https://ads.example/a.js".to_owned()),
                FrameScript::Inline("var inline = 1;".to_owned()),
            ]
        );
    }

    #[test]
    fn identical_bodies_share_one_entry() {
        let cache = CompileCache::new();
        let a = cache.frame_scripts("<html><script>f();</script></html>");
        let b = cache.frame_scripts("<html><script>f();</script></html>");
        let c = cache.frame_scripts("<html><script>g();</script></html>");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.unique_frames(), 2);
    }

    #[test]
    fn script_cache_reachable_through_bundle() {
        let cache = CompileCache::new();
        cache.scripts().lookup_or_parse("var ok = 1;").unwrap();
        cache.scripts().lookup_or_parse("var ok = 1;").unwrap();
        let stats = cache.script_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
