//! The measuring extension (§4.2 of the paper).
//!
//! Three techniques, implemented exactly as the paper describes them:
//!
//! 1. **Method calls** (§4.2.1): every registry method feature's prototype
//!    slot is overwritten with a wrapper that logs the invocation and then
//!    calls the original, which survives only inside the wrapper's closure —
//!    page code cannot reach around the shim.
//! 2. **Property writes on singletons** (§4.2.2): `window`, `document`,
//!    `navigator` and `performance` get an `Object.watch`-style handler that
//!    logs any write whose `(interface, property)` pair is a registry
//!    feature.
//! 3. **Property writes on instances**: the wrappers for constructors and
//!    object-returning methods attach the same watch handler to every object
//!    they hand to page code, so writes like `el.innerHTML = ...` are also
//!    attributed. (The paper could only watch singletons — a limitation it
//!    documents; since our wrappers see every instance they create, we can
//!    close that gap while using the identical mechanism.)
//!
//! Installation happens after the API surface is built and **before any page
//! script runs**, mirroring the paper's injection at the start of `<head>`.

use crate::api::{ApiSurface, IFACE_MARKER};
use crate::log::FeatureLog;
use bfu_script::interp::Interpreter;
use bfu_script::object::ObjId;
use bfu_script::Value;
use bfu_webidl::{FeatureKind, FeatureRegistry};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Pre-built `(interface, member) → FeatureId` lookup for the registry's
/// property features — the table the property-write watcher resolves against.
///
/// Building it walks every registry feature and clones its interface/member
/// strings, which is far too expensive to redo on every page load (the
/// registry never changes between loads). The browser builds one per
/// registry and shares it across every install; [`Instrumentation::install`]
/// builds a throwaway one for callers that don't keep a browser around.
#[derive(Debug, Clone)]
pub struct PropIndex(Rc<HashMap<(String, String), bfu_webidl::FeatureId>>);

impl PropIndex {
    /// Index every property feature of `registry`.
    pub fn build(registry: &FeatureRegistry) -> PropIndex {
        PropIndex(Rc::new(
            registry
                .features()
                .iter()
                .enumerate()
                .filter(|(_, f)| f.kind == FeatureKind::Property)
                .map(|(i, f)| {
                    (
                        (f.interface.clone(), f.member.clone()),
                        bfu_webidl::FeatureId::from_usize(i),
                    )
                })
                .collect(),
        ))
    }
}

/// Handle to the installed instrumentation.
#[derive(Debug)]
pub struct Instrumentation {
    /// Shared invocation log (also held by every wrapper).
    pub log: Rc<RefCell<FeatureLog>>,
    /// The watch handler attached to singletons and instances.
    watch_handler: ObjId,
}

impl Instrumentation {
    /// Install the measuring extension, building a fresh [`PropIndex`].
    ///
    /// One-shot convenience for tests and embedders without a [`crate::Browser`];
    /// the browser's load path uses [`Instrumentation::install_with_index`]
    /// so the index is built once per registry, not once per page.
    pub fn install(
        interp: &mut Interpreter,
        api: &ApiSurface,
        registry: &Rc<FeatureRegistry>,
        log: Rc<RefCell<FeatureLog>>,
    ) -> Instrumentation {
        let index = PropIndex::build(registry);
        Self::install_with_index(interp, api, registry, log, &index)
    }

    /// Install the measuring extension with a pre-built property index.
    pub fn install_with_index(
        interp: &mut Interpreter,
        api: &ApiSurface,
        registry: &Rc<FeatureRegistry>,
        log: Rc<RefCell<FeatureLog>>,
        prop_index: &PropIndex,
    ) -> Instrumentation {
        // --- property-write watcher -------------------------------------
        // Resolves (this.__iface, propName) against the registry; writes to
        // unknown pairs and internal (`__`-prefixed) props are ignored.
        let prop_index = Rc::clone(&prop_index.0);
        let watch_log = log.clone();
        let iface_marker = bfu_util::Atom::intern(IFACE_MARKER);
        let watch_handler = interp.register_native_obj(Rc::new(move |i, this, args| {
            let prop = args.first().map(|v| v.to_display()).unwrap_or_default();
            if prop.starts_with("__") {
                return Ok(Value::Undefined);
            }
            if let Some(obj) = this.as_obj() {
                // Walk the prototype chain through __iface markers so a
                // write on an HTMLCanvasElement can match features declared
                // on HTMLElement, Element, or Node as well.
                let mut cur = Some(obj);
                let mut hops = 0;
                while let Some(o) = cur {
                    let iface = i.heap.get(o).props.get(&iface_marker).cloned();
                    if let Some(iface) = iface {
                        let key = (iface.to_display(), prop.clone());
                        if let Some(&fid) = prop_index.get(&key) {
                            watch_log.borrow_mut().record(fid);
                            break;
                        }
                    }
                    cur = i.heap.get(o).proto;
                    hops += 1;
                    if hops > 16 {
                        break;
                    }
                }
            }
            Ok(Value::Undefined)
        }));

        // Watch the singletons (the paper's Object.watch on window etc.).
        for (_, obj) in &api.singletons {
            interp.heap.watch(*obj, watch_handler);
        }

        // --- method wrappers --------------------------------------------
        for (ix, f) in registry.features().iter().enumerate() {
            if f.kind != FeatureKind::Method {
                continue;
            }
            let fid = bfu_webidl::FeatureId::from_usize(ix);
            let proto = api.prototypes[&f.interface];
            let original = interp.heap.get_prop(proto, &f.member);
            let wrapper_log = log.clone();
            let wrapper = interp.register_native(Rc::new(move |i, this, args| {
                wrapper_log.borrow_mut().record(fid);
                let result = i.call_value(&original, this, args)?;
                // Attach the watch to any fresh object the API hands out, so
                // subsequent property writes on it are attributable.
                if let Some(out_obj) = result.as_obj() {
                    if i.heap.get(out_obj).watch_all.is_none() && !i.heap.is_callable(out_obj) {
                        // handler id is threaded via a global (set below).
                        if let Some(h) = i.get_global("__bfu_watch").as_obj() {
                            i.heap.watch(out_obj, h);
                        }
                    }
                }
                Ok(result)
            }));
            interp.heap.set_prop_raw(proto, &f.member, wrapper);
        }

        // Wrap constructors so `new XMLHttpRequest()` instances get watched.
        // The `new` machinery allocates the instance and passes it as `this`
        // to the constructor — our wrapper watches it there.
        interp.set_global("__bfu_watch", Value::Obj(watch_handler));
        for (name, &_proto) in api.prototypes.iter() {
            let ctor = interp.get_global(name);
            let Some(ctor_obj) = ctor.as_obj() else {
                continue;
            };
            if !interp.heap.is_callable(ctor_obj) {
                continue;
            }
            let inner = ctor.clone();
            let wrapped_obj = interp.register_native_obj(Rc::new(move |i, this, args| {
                if let Some(instance) = this.as_obj() {
                    if let Some(h) = i.get_global("__bfu_watch").as_obj() {
                        i.heap.watch(instance, h);
                    }
                }
                i.call_value(&inner, this, args)
            }));
            // The wrapped constructor must expose the same .prototype.
            let proto_val = interp.heap.get_prop(ctor_obj, "prototype");
            interp
                .heap
                .set_prop_raw(wrapped_obj, "prototype", proto_val);
            interp.set_global(name, Value::Obj(wrapped_obj));
        }

        Instrumentation { log, watch_handler }
    }

    /// The watch handler object (for attaching to additional objects, e.g.
    /// subdocument singletons).
    pub fn watch_handler(&self) -> ObjId {
        self.watch_handler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{self, HostEnv};
    use bfu_dom::html;
    use bfu_net::Url;

    struct Rig {
        interp: Interpreter,
        api: ApiSurface,
        registry: Rc<FeatureRegistry>,
        log: Rc<RefCell<FeatureLog>>,
    }

    fn rig() -> Rig {
        let registry = Rc::new(FeatureRegistry::build());
        let mut interp = Interpreter::new();
        let doc = html::parse("<html><head></head><body><div id=main></div></body></html>");
        let url = Url::parse("http://site.com/").unwrap();
        let host = Rc::new(RefCell::new(HostEnv::new(doc, url)));
        let api = api::install(&mut interp, &registry, host);
        let log = Rc::new(RefCell::new(FeatureLog::new()));
        Instrumentation::install(&mut interp, &api, &registry, log.clone());
        Rig {
            interp,
            api,
            registry,
            log,
        }
    }

    #[test]
    fn method_calls_counted() {
        let mut r = rig();
        r.interp
            .run_source("document.createElement('div'); document.createElement('p');")
            .unwrap();
        let fid = r
            .registry
            .by_name("Document.prototype.createElement")
            .unwrap();
        assert_eq!(r.log.borrow().count(fid), 2);
    }

    #[test]
    fn wrapped_methods_preserve_behavior() {
        let mut r = rig();
        r.interp
            .run_source(
                r#"
                var el = document.createElement('p');
                var main = document.querySelector('#main');
                main.appendChild(el);
            "#,
            )
            .unwrap();
        let host = r.api.host.borrow();
        let main = bfu_dom::Selector::parse("#main")
            .unwrap()
            .query_first(&host.doc)
            .unwrap();
        assert_eq!(
            host.doc.children(main).len(),
            1,
            "behavior intact under shim"
        );
        drop(host);
        let append = r.registry.by_name("Node.prototype.appendChild").unwrap();
        assert!(r.log.borrow().saw(append));
    }

    #[test]
    fn singleton_property_writes_counted() {
        let mut r = rig();
        // Find a property feature on Navigator (partial interfaces put some
        // there in the corpus).
        let feat = r
            .registry
            .features()
            .iter()
            .find(|f| f.kind == FeatureKind::Property && f.interface == "Navigator")
            .expect("corpus has Navigator properties");
        let member = feat.member.clone();
        r.interp
            .run_source(&format!("navigator.{member} = 42;"))
            .unwrap();
        let fid = r.registry.by_name(&feat.name).unwrap();
        assert_eq!(r.log.borrow().count(fid), 1);
    }

    #[test]
    fn instance_property_writes_counted_via_constructor_watch() {
        let mut r = rig();
        let feat = r
            .registry
            .features()
            .iter()
            .find(|f| {
                f.kind == FeatureKind::Property
                    && !matches!(
                        f.interface.as_str(),
                        "Window" | "Document" | "Navigator" | "Performance"
                    )
            })
            .expect("instance property feature exists");
        let iface = feat.interface.clone();
        let member = feat.member.clone();
        r.interp
            .run_source(&format!("var o = new {iface}(); o.{member} = 'x';"))
            .unwrap();
        let fid = r.registry.by_name(&feat.name).unwrap();
        assert_eq!(r.log.borrow().count(fid), 1, "{}", feat.name);
    }

    #[test]
    fn unknown_property_writes_ignored() {
        let mut r = rig();
        r.interp
            .run_source("navigator.myCustomThing = 1; window.__private = 2;")
            .unwrap();
        assert_eq!(r.log.borrow().total_invocations(), 0);
    }

    #[test]
    fn pages_cannot_bypass_via_fresh_lookup() {
        // The paper's closure argument: once the prototype is patched, even a
        // freshly-created instance routes through the wrapper.
        let mut r = rig();
        r.interp
            .run_source("var x = new XMLHttpRequest(); x.open('GET', '/a');")
            .unwrap();
        let open = r.registry.by_name("XMLHttpRequest.prototype.open").unwrap();
        assert_eq!(r.log.borrow().count(open), 1);
        // And the behavior still queued the request.
        assert_eq!(r.api.host.borrow().pending_requests.len(), 1);
    }

    #[test]
    fn uninstrumented_rig_logs_nothing() {
        let registry = Rc::new(FeatureRegistry::build());
        let mut interp = Interpreter::new();
        let doc = html::parse("<html><body></body></html>");
        let host = Rc::new(RefCell::new(HostEnv::new(
            doc,
            Url::parse("http://x.com/").unwrap(),
        )));
        let _api = api::install(&mut interp, &registry, host);
        interp.run_source("document.createElement('div');").unwrap();
        // No instrumentation installed: nothing to assert on a log — but the
        // call must succeed, demonstrating the base surface works alone.
    }

    #[test]
    fn factory_returned_objects_get_watched() {
        let mut r = rig();
        // getContext returns a fresh context object; writing a property
        // feature of CanvasRenderingContext2D on it must count.
        let feat =
            r.registry.features().iter().find(|f| {
                f.kind == FeatureKind::Property && f.interface == "CanvasRenderingContext2D"
            });
        let Some(feat) = feat else {
            return; // corpus happened to give the context no properties
        };
        let member = feat.member.clone();
        r.interp
            .run_source(&format!(
                "var c = document.createElement('canvas');
                 var ctx = c.getContext('2d');
                 ctx.{member} = 5;"
            ))
            .unwrap();
        let fid = r.registry.by_name(&feat.name).unwrap();
        assert_eq!(r.log.borrow().count(fid), 1);
    }
}
