//! # bfu-browser
//!
//! The simulated browser engine: page loading, the Web API surface, the
//! event loop, and — centrally — the measuring extension from §4.2 of the
//! paper.
//!
//! A [`page::Page`] is loaded through the full pipeline: fetch the document
//! over `bfu-net`, parse HTML into a `bfu-dom` tree, fetch subresources
//! (scripts, images, frames) subject to any installed [`RequestPolicy`]
//! (blockers), bind the 1,392-feature Web API surface onto a fresh
//! `bfu-script` interpreter, inject the instrumentation extension *before*
//! page scripts run (the paper injects at the start of `<head>`), execute
//! scripts, and then run timers and dispatched events on a virtual clock.
//!
//! - [`api`] — Web API bindings: every registry feature becomes a callable
//!   method or watchable property on the right prototype object.
//! - [`cache`] — survey-wide compilation cache (scripts + frame documents).
//! - [`instrument`] — the measuring extension: prototype patching and
//!   watchpoints producing [`log::FeatureLog`] records.
//! - [`page`] — the load pipeline and interaction surface.
//! - [`timers`] — `setTimeout`-style virtual timer queue.
//! - [`log`] — invocation records (the paper's Fig. 2 log lines).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod api;
pub mod cache;
pub mod instrument;
pub mod log;
pub mod page;
pub mod timers;

pub use api::{ApiSurface, HostEnv};
pub use bfu_script::Engine;
pub use cache::CompileCache;
pub use instrument::{Instrumentation, PropIndex};
pub use log::{FeatureLog, LogRecord};
pub use page::{
    AllowAll, Browser, BrowserConfig, ClickOutcome, LoadError, LoadStats, Page, RequestPolicy,
};
