//! Feature invocation logging — the output of the measuring extension.
//!
//! The paper's extension emits lines like (Fig. 2):
//!
//! ```text
//! blocking,example.com,Crypto.getRandomValues(),1
//! default,example.com,Node.cloneNode(),10
//! ```
//!
//! [`FeatureLog`] is the in-memory form: a count per [`FeatureId`], merged
//! across pages/rounds by the crawler; [`LogRecord`] with
//! [`FeatureLog::render_lines`] reproduces the textual form.

use bfu_webidl::{FeatureId, FeatureKind, FeatureRegistry};
use std::collections::HashMap;

/// One rendered log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Feature that executed.
    pub feature: FeatureId,
    /// Number of invocations observed.
    pub count: u64,
}

/// Counts of feature invocations observed on one page (or merged across a
/// site's pages).
#[derive(Debug, Clone, Default)]
pub struct FeatureLog {
    counts: HashMap<FeatureId, u64>,
}

impl FeatureLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one invocation of `feature`.
    pub fn record(&mut self, feature: FeatureId) {
        *self.counts.entry(feature).or_insert(0) += 1;
    }

    /// Record `n` invocations.
    pub fn record_n(&mut self, feature: FeatureId, n: u64) {
        *self.counts.entry(feature).or_insert(0) += n;
    }

    /// Merge another log into this one.
    pub fn merge(&mut self, other: &FeatureLog) {
        for (&f, &n) in &other.counts {
            self.record_n(f, n);
        }
    }

    /// Number of distinct features observed.
    pub fn distinct_features(&self) -> usize {
        self.counts.len()
    }

    /// Total invocations observed.
    pub fn total_invocations(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Count for one feature.
    pub fn count(&self, feature: FeatureId) -> u64 {
        self.counts.get(&feature).copied().unwrap_or(0)
    }

    /// Whether a feature was seen at least once.
    pub fn saw(&self, feature: FeatureId) -> bool {
        self.count(feature) > 0
    }

    /// Features observed, sorted by id for determinism.
    pub fn features(&self) -> Vec<FeatureId> {
        let mut v: Vec<FeatureId> = self.counts.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Sorted records.
    pub fn records(&self) -> Vec<LogRecord> {
        self.features()
            .into_iter()
            .map(|f| LogRecord {
                feature: f,
                count: self.counts[&f],
            })
            .collect()
    }

    /// Render the Fig. 2 log lines: `profile,domain,Feature(),count`.
    pub fn render_lines(
        &self,
        profile: &str,
        domain: &str,
        registry: &FeatureRegistry,
    ) -> Vec<String> {
        self.records()
            .iter()
            .map(|r| {
                let info = registry.feature(r.feature);
                let suffix = match info.kind {
                    FeatureKind::Method => "()",
                    FeatureKind::Property => "",
                };
                format!(
                    "{profile},{domain},{}.{}{suffix},{}",
                    info.interface, info.member, r.count
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut log = FeatureLog::new();
        let f = FeatureId::new(3);
        log.record(f);
        log.record(f);
        log.record(FeatureId::new(5));
        assert_eq!(log.count(f), 2);
        assert_eq!(log.distinct_features(), 2);
        assert_eq!(log.total_invocations(), 3);
        assert!(log.saw(f));
        assert!(!log.saw(FeatureId::new(9)));
    }

    #[test]
    fn merge_sums() {
        let mut a = FeatureLog::new();
        a.record(FeatureId::new(1));
        let mut b = FeatureLog::new();
        b.record(FeatureId::new(1));
        b.record(FeatureId::new(2));
        a.merge(&b);
        assert_eq!(a.count(FeatureId::new(1)), 2);
        assert_eq!(a.count(FeatureId::new(2)), 1);
    }

    #[test]
    fn records_sorted() {
        let mut log = FeatureLog::new();
        log.record(FeatureId::new(9));
        log.record(FeatureId::new(2));
        let recs = log.records();
        assert_eq!(recs[0].feature, FeatureId::new(2));
        assert_eq!(recs[1].feature, FeatureId::new(9));
    }

    #[test]
    fn render_lines_match_fig2_format() {
        let registry = FeatureRegistry::build();
        let fid = registry
            .by_name("Crypto.prototype.getRandomValues")
            .expect("WCR flagship");
        let mut log = FeatureLog::new();
        log.record(fid);
        let lines = log.render_lines("blocking", "example.com", &registry);
        assert_eq!(
            lines,
            vec!["blocking,example.com,Crypto.getRandomValues(),1"]
        );
    }
}
