//! Page loading and interaction: the browser engine proper.
//!
//! [`Browser::load`] runs the full pipeline — fetch the document, parse it,
//! install the API surface, inject the instrumentation *before page scripts
//! run* (the paper's extension injects at the start of `<head>`), apply the
//! blockers' element-hiding rules, then fetch and execute subresources in
//! document order, consulting the [`RequestPolicy`] for every request the
//! way AdBlock Plus and Ghostery intercept loads.
//!
//! The resulting [`Page`] exposes the interaction surface the monkey
//! ([`bfu-monkey`]) drives: event dispatch, virtual timers, link extraction,
//! and script-issued network traffic.

use crate::api::{self, ApiSurface, HostEnv};
use crate::cache::{extract_frame_scripts, CompileCache, FrameScript};
use crate::instrument::{Instrumentation, PropIndex};
use crate::log::FeatureLog;
use bfu_dom::{html, NodeId};
use bfu_net::{HttpRequest, NetError, ResourceType, SimNet, Url};
use bfu_script::cache::{CacheOutcome, ChunkError};
use bfu_script::interp::Interpreter;
use bfu_script::{compile, run_chunk, Engine, ResourceBudget, RuntimeError, ScriptError, Value};
use bfu_util::{Instant, VirtualClock};
use bfu_webidl::FeatureRegistry;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Decides whether requests load — the hook blockers install.
pub trait RequestPolicy {
    /// `Some(reason)` blocks the request; `None` allows it.
    fn decide(&self, req: &HttpRequest) -> Option<String>;

    /// Element-hiding selectors for pages on `domain`.
    fn hiding_selectors(&self, _domain: &str) -> Vec<String> {
        Vec::new()
    }
}

/// The default configuration: everything loads.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl RequestPolicy for AllowAll {
    fn decide(&self, _req: &HttpRequest) -> Option<String> {
        None
    }
}

/// Engine configuration.
///
/// Script execution is governed per *phase*: the initial run of each page
/// script, each event-listener dispatch, and each timer callback all get a
/// fresh [`ResourceBudget`], so one hostile phase cannot starve the others
/// and every page degrades to partial feature logs instead of a lost visit.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowserConfig {
    /// Step budget per executed script (initial-run phase).
    pub script_fuel: u64,
    /// Step budget per event-listener or timer callback.
    pub callback_fuel: u64,
    /// Parse-phase budget: scripts larger than this many bytes are rejected
    /// before the parser sees them.
    pub max_script_bytes: usize,
    /// Heap cells a single execution phase may allocate.
    pub max_heap_cells: usize,
    /// String bytes a single execution phase may concatenate.
    pub max_string_bytes: u64,
    /// Interpreter call-depth cap.
    pub max_call_depth: u32,
    /// Timer-drain budget: callbacks per [`Page::run_timers`] drain (guards
    /// against interval storms that reschedule themselves forever).
    pub max_timer_callbacks: u32,
    /// Whether to install the measuring extension.
    pub instrument: bool,
    /// Cap on subresource fetches per page (defense against generator bugs).
    pub max_subresources: usize,
    /// Which script engine executes page scripts. The bytecode VM is the
    /// default; the tree-walk interpreter remains the differential oracle.
    /// Either engine produces bit-identical feature logs and fingerprints.
    pub engine: Engine,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig {
            script_fuel: 400_000,
            callback_fuel: 400_000,
            max_script_bytes: 1 << 20,
            max_heap_cells: 1 << 20,
            max_string_bytes: 16 << 20,
            max_call_depth: 64,
            max_timer_callbacks: 10_000,
            instrument: true,
            max_subresources: 256,
            engine: Engine::default(),
        }
    }
}

impl BrowserConfig {
    /// The budget installed before each page script's initial run.
    pub fn run_budget(&self) -> ResourceBudget {
        ResourceBudget {
            max_steps: self.script_fuel,
            max_heap_cells: self.max_heap_cells,
            max_string_bytes: self.max_string_bytes,
            max_call_depth: self.max_call_depth,
        }
    }

    /// The budget installed before each event or timer callback.
    pub fn callback_budget(&self) -> ResourceBudget {
        ResourceBudget {
            max_steps: self.callback_fuel,
            ..self.run_budget()
        }
    }
}

/// The browser: a registry plus configuration; `load` produces pages.
#[derive(Debug, Clone)]
pub struct Browser {
    /// The instrumented feature universe.
    pub registry: Rc<FeatureRegistry>,
    /// Engine configuration.
    pub config: BrowserConfig,
    /// Shared compilation cache, when the embedder opted in. `None` means
    /// every script is parsed from scratch (identical measurements, more
    /// CPU — see [`crate::cache`]).
    compile_cache: Option<Arc<CompileCache>>,
    /// Property-feature lookup for the instrumentation watcher, built once
    /// per registry instead of once per page load.
    prop_index: PropIndex,
}

/// Counters from one page load + interaction session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Requests attempted (including the document and blocked ones).
    pub requests_attempted: u32,
    /// Requests blocked by the policy.
    pub requests_blocked: u32,
    /// Requests that failed at the network layer.
    pub requests_failed: u32,
    /// Scripts that aborted with a runtime/parse error.
    pub script_errors: u32,
    /// Subset of `script_errors` that failed to parse at all (the paper's
    /// "syntax errors in their JavaScript" class).
    pub script_parse_errors: u32,
    /// Subset of `script_errors` that exhausted their step budget.
    pub script_budget_errors: u32,
    /// Subset of `script_errors` that exceeded the heap-cell or string-byte
    /// allocation budget (allocation/string bombs).
    pub script_heap_errors: u32,
    /// Subset of `script_errors` that exceeded the call-depth budget
    /// (unbounded recursion).
    pub script_depth_errors: u32,
    /// Scripts rejected before parsing for exceeding the size budget.
    pub script_oversize_errors: u32,
    /// Scripts executed (at least partially).
    pub scripts_run: u32,
    /// Compilation-cache probes that reused a parsed program.
    pub script_cache_hits: u32,
    /// Compilation-cache probes that parsed fresh source.
    pub script_cache_misses: u32,
    /// Compilation-cache probes that replayed a cached parse error.
    pub script_cache_negative_hits: u32,
}

impl LoadStats {
    /// Scripts stopped by any resource-governor axis (steps, heap, string,
    /// depth, or source size) — the trap-class total the crawler uses to
    /// attribute a site loss to the `ScriptBudget` class.
    pub fn budget_trips(&self) -> u32 {
        self.script_budget_errors
            + self.script_heap_errors
            + self.script_depth_errors
            + self.script_oversize_errors
    }
}

/// Why a page failed to load at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Network-level failure fetching the document.
    Network(NetError),
    /// Non-success HTTP status for the document.
    Http(u16),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Network(e) => write!(f, "document fetch failed: {e}"),
            LoadError::Http(s) => write!(f, "document returned HTTP {s}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Result of a click interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClickOutcome {
    /// Navigation the click would have caused (intercepted, per §4.3.1).
    pub navigation: Option<Url>,
    /// Listener invocations performed.
    pub listeners_fired: u32,
}

/// A loaded page.
pub struct Page {
    /// Final page URL.
    pub url: Url,
    /// The engine configuration this page was loaded under; event dispatch
    /// and timer drains draw their budgets from here.
    pub config: BrowserConfig,
    /// The script engine with the API surface installed.
    pub interp: Interpreter,
    /// The installed API surface (prototypes, singletons, host state).
    pub api: ApiSurface,
    /// The instrumentation log (empty log if instrumentation disabled).
    pub log: Rc<RefCell<FeatureLog>>,
    /// Load/interaction counters.
    pub stats: LoadStats,
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Page")
            .field("url", &self.url.to_string())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Browser {
    /// A browser over the given feature registry with default config.
    pub fn new(registry: Rc<FeatureRegistry>) -> Self {
        let prop_index = PropIndex::build(&registry);
        Browser {
            registry,
            config: BrowserConfig::default(),
            compile_cache: None,
            prop_index,
        }
    }

    /// A browser with an explicit engine configuration (crawlers route
    /// their `CrawlConfig.browser` budgets through here).
    pub fn with_config(registry: Rc<FeatureRegistry>, config: BrowserConfig) -> Self {
        let prop_index = PropIndex::build(&registry);
        Browser {
            registry,
            config,
            compile_cache: None,
            prop_index,
        }
    }

    /// Share a compilation cache with this browser. The survey driver hands
    /// every worker thread's browser the same `Arc`, so a script parsed on
    /// any thread is never parsed again anywhere.
    pub fn set_compile_cache(&mut self, cache: Arc<CompileCache>) {
        self.compile_cache = Some(cache);
    }

    /// The shared compilation cache, if one is installed.
    pub fn compile_cache(&self) -> Option<&Arc<CompileCache>> {
        self.compile_cache.as_ref()
    }

    /// Load `url`, execute its resources, and return the interactive page.
    pub fn load(
        &self,
        net: &mut SimNet,
        url: &Url,
        policy: &dyn RequestPolicy,
        clock: &mut VirtualClock,
    ) -> Result<Page, LoadError> {
        let mut stats = LoadStats::default();

        // 1. Fetch the document.
        stats.requests_attempted += 1;
        let doc_req = HttpRequest::get(url.clone(), ResourceType::Document);
        let resp = net.fetch(&doc_req, clock).map_err(LoadError::Network)?;
        if !resp.status.is_success() {
            return Err(LoadError::Http(resp.status.0));
        }
        let body = String::from_utf8_lossy(&resp.body).into_owned();

        // 2. Parse.
        let doc = html::parse(&body);
        let host = Rc::new(RefCell::new(HostEnv::new(doc, url.clone())));
        host.borrow_mut().now = clock.now();

        // 3. Engine + API + instrumentation (before page scripts, like the
        //    paper's <head> injection).
        let mut interp = Interpreter::new();
        let api = api::install(&mut interp, &self.registry, host.clone());
        let log = Rc::new(RefCell::new(FeatureLog::new()));
        if self.config.instrument {
            Instrumentation::install_with_index(
                &mut interp,
                &api,
                &self.registry,
                log.clone(),
                &self.prop_index,
            );
        }
        Self::bind_document_tree_globals(&mut interp, &api);

        // 4. Element hiding. Selector compilation is memoized per page load
        //    in the host env (the same memo querySelector and __listen use).
        let domain = url.registrable_domain().to_owned();
        for sel_src in policy.hiding_selectors(&domain) {
            let compiled = api.host.borrow_mut().compile_selector(&sel_src);
            if let Some(sel) = compiled {
                let targets = sel.query_all(&api.host.borrow().doc);
                let mut h = api.host.borrow_mut();
                for t in targets {
                    h.doc.set_attr(t, "data-bfu-hidden", "1");
                }
            }
        }

        // 5. Subresources in document order.
        let resources = Self::collect_resources(&api);
        for res in resources.into_iter().take(self.config.max_subresources) {
            match res {
                Resource::InlineScript(src) => {
                    host.borrow_mut().now = clock.now();
                    run_page_script(
                        &mut interp,
                        &src,
                        &self.config,
                        &mut stats,
                        self.compile_cache.as_deref(),
                    );
                }
                Resource::External(target, rtype) => {
                    let Ok(res_url) = url.join(&target) else {
                        continue;
                    };
                    stats.requests_attempted += 1;
                    let req = HttpRequest::get(res_url.clone(), rtype).with_initiator(url.clone());
                    if policy.decide(&req).is_some() {
                        stats.requests_blocked += 1;
                        continue;
                    }
                    match net.fetch(&req, clock) {
                        Err(_) => stats.requests_failed += 1,
                        Ok(resp) if !resp.status.is_success() => {
                            stats.requests_failed += 1;
                        }
                        Ok(resp) => match rtype {
                            ResourceType::Script => {
                                let src = String::from_utf8_lossy(&resp.body).into_owned();
                                host.borrow_mut().now = clock.now();
                                run_page_script(
                                    &mut interp,
                                    &src,
                                    &self.config,
                                    &mut stats,
                                    self.compile_cache.as_deref(),
                                );
                            }
                            ResourceType::SubDocument => {
                                let frame_body = String::from_utf8_lossy(&resp.body).into_owned();
                                self.load_subdocument(
                                    net,
                                    &res_url,
                                    &frame_body,
                                    policy,
                                    clock,
                                    &mut interp,
                                    &host,
                                    &mut stats,
                                );
                            }
                            _ => {}
                        },
                    }
                }
            }
        }

        Ok(Page {
            url: url.clone(),
            config: self.config.clone(),
            interp,
            api,
            log,
            stats,
        })
    }

    /// Fetch an iframe's document and execute its scripts (one level deep).
    /// Requests from inside the frame are attributed to the frame's URL, so
    /// third-party logic matches real browsers.
    #[allow(clippy::too_many_arguments)]
    fn load_subdocument(
        &self,
        net: &mut SimNet,
        frame_url: &Url,
        frame_body: &str,
        policy: &dyn RequestPolicy,
        clock: &mut VirtualClock,
        interp: &mut Interpreter,
        host: &Rc<RefCell<HostEnv>>,
        stats: &mut LoadStats,
    ) {
        // Ad frames are served from a small template pool, so identical
        // frame bodies recur constantly; with a cache installed the body is
        // HTML-parsed once per distinct content and the extracted script
        // list is shared. Execution still happens per visit, in this
        // engine (features from ads in frames count toward the page, as in
        // the paper's measurements).
        let scripts: Arc<Vec<FrameScript>> = match &self.compile_cache {
            Some(cache) => cache.frame_scripts(frame_body),
            None => Arc::new(extract_frame_scripts(frame_body)),
        };
        for s in scripts.iter() {
            match s {
                FrameScript::Inline(src) => {
                    run_page_script(
                        interp,
                        src,
                        &self.config,
                        stats,
                        self.compile_cache.as_deref(),
                    );
                }
                FrameScript::External(target) => {
                    let Ok(u) = frame_url.join(target) else {
                        continue;
                    };
                    stats.requests_attempted += 1;
                    let req =
                        HttpRequest::get(u, ResourceType::Script).with_initiator(frame_url.clone());
                    if policy.decide(&req).is_some() {
                        stats.requests_blocked += 1;
                        continue;
                    }
                    match net.fetch(&req, clock) {
                        Ok(r) if r.status.is_success() => {
                            let src = String::from_utf8_lossy(&r.body).into_owned();
                            host.borrow_mut().now = clock.now();
                            run_page_script(
                                interp,
                                &src,
                                &self.config,
                                stats,
                                self.compile_cache.as_deref(),
                            );
                        }
                        _ => stats.requests_failed += 1,
                    }
                }
            }
        }
    }

    fn bind_document_tree_globals(interp: &mut Interpreter, api: &ApiSurface) {
        // `api::install` always registers the document singleton; without it
        // there is simply nothing to bind.
        let Some(doc_obj) = api
            .singletons
            .iter()
            .find(|(n, _)| n == "document")
            .map(|(_, o)| *o)
        else {
            return;
        };
        let (body, head, html_el) = {
            let h = api.host.borrow();
            (
                h.doc.first_by_tag("body"),
                h.doc.first_by_tag("head"),
                h.doc.first_by_tag("html"),
            )
        };
        for (prop, node) in [("body", body), ("head", head), ("documentElement", html_el)] {
            if let Some(n) = node {
                let v = api::wrap_node(interp, &api.host, &api.prototypes, n);
                interp.heap.set_prop_raw(doc_obj, prop, v);
            }
        }
    }

    fn collect_resources(api: &ApiSurface) -> Vec<Resource> {
        let h = api.host.borrow();
        let mut out = Vec::new();
        for node in h.doc.elements() {
            match h.doc.tag(node) {
                Some("script") => match h.doc.attr(node, "src") {
                    Some(src) => out.push(Resource::External(src.to_owned(), ResourceType::Script)),
                    None => out.push(Resource::InlineScript(h.doc.text_content(node))),
                },
                Some("img") => {
                    if let Some(src) = h.doc.attr(node, "src") {
                        out.push(Resource::External(src.to_owned(), ResourceType::Image));
                    }
                }
                Some("iframe") => {
                    if let Some(src) = h.doc.attr(node, "src") {
                        out.push(Resource::External(
                            src.to_owned(),
                            ResourceType::SubDocument,
                        ));
                    }
                }
                Some("link") if h.doc.attr(node, "rel") == Some("stylesheet") => {
                    if let Some(href) = h.doc.attr(node, "href") {
                        out.push(Resource::External(
                            href.to_owned(),
                            ResourceType::Stylesheet,
                        ));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

enum Resource {
    InlineScript(String),
    External(String, ResourceType),
}

/// Tally a runtime failure into the per-axis governor counters (plain
/// language errors like `TypeError` only count toward `script_errors`).
fn classify_runtime(stats: &mut LoadStats, e: &RuntimeError) {
    match e {
        RuntimeError::OutOfFuel => stats.script_budget_errors += 1,
        RuntimeError::HeapExhausted | RuntimeError::StringOverflow => {
            stats.script_heap_errors += 1;
        }
        RuntimeError::StackOverflow => stats.script_depth_errors += 1,
        RuntimeError::TypeError(_) | RuntimeError::ReferenceError(_) => {}
    }
}

/// Execute one page script, classifying any failure into the stats counters
/// (parse failures and each budget axis get their own tallies so the
/// crawler can attribute a site loss to the right fault class).
fn run_page_script(
    interp: &mut Interpreter,
    src: &str,
    config: &BrowserConfig,
    stats: &mut LoadStats,
    cache: Option<&CompileCache>,
) {
    stats.scripts_run += 1;
    if src.len() > config.max_script_bytes {
        // Parse-phase budget: don't even lex a source bomb. Checked before
        // the cache probe so oversize handling is cache-invariant.
        stats.script_errors += 1;
        stats.script_oversize_errors += 1;
        return;
    }
    let Some(cache) = cache else {
        // Scratch path: no cache installed, compile (or parse) per script.
        match config.engine {
            Engine::TreeWalk => {
                interp.set_budget(&config.run_budget());
                if let Err(e) = interp.run_source(src) {
                    stats.script_errors += 1;
                    match e {
                        ScriptError::Parse(_) => stats.script_parse_errors += 1,
                        ScriptError::Runtime(e) => classify_runtime(stats, &e),
                    }
                }
            }
            Engine::Vm => {
                // Parse and compile burn no fuel (budgets are per execution
                // phase), so the VM path is observably identical to the
                // tree-walk path for every measurement.
                let program = match bfu_script::parser::parse(src) {
                    Ok(p) => p,
                    Err(_) => {
                        stats.script_errors += 1;
                        stats.script_parse_errors += 1;
                        return;
                    }
                };
                interp.set_budget(&config.run_budget());
                let run = match compile(&program) {
                    Ok(chunk) => run_chunk(interp, &chunk),
                    // Lowering is total over parser-accepted programs; the
                    // fallback exists only so a compiler limit (e.g. chunk
                    // overflow) degrades to the oracle, never to a loss.
                    Err(_) => interp.run(&program),
                };
                if let Err(e) = run {
                    stats.script_errors += 1;
                    classify_runtime(stats, &e);
                }
            }
        }
        return;
    };
    // Cached path. Parsing and compilation consume no interpreter fuel
    // (budgets are installed per execution phase), so replaying a cached
    // AST or chunk — or a cached parse error — is observably identical to
    // the scratch path.
    match config.engine {
        Engine::TreeWalk => {
            let (result, outcome) = cache.scripts().lookup_or_parse_counted(src);
            match outcome {
                CacheOutcome::Hit => stats.script_cache_hits += 1,
                CacheOutcome::Miss => stats.script_cache_misses += 1,
                CacheOutcome::NegativeHit => stats.script_cache_negative_hits += 1,
            }
            match result {
                Ok(program) => {
                    interp.set_budget(&config.run_budget());
                    if let Err(e) = interp.run(&program) {
                        stats.script_errors += 1;
                        classify_runtime(stats, &e);
                    }
                }
                Err(_) => {
                    stats.script_errors += 1;
                    stats.script_parse_errors += 1;
                }
            }
        }
        Engine::Vm => {
            let (result, outcome) = cache.scripts().lookup_or_compile_counted(src);
            match outcome {
                CacheOutcome::Hit => stats.script_cache_hits += 1,
                CacheOutcome::Miss => stats.script_cache_misses += 1,
                CacheOutcome::NegativeHit => stats.script_cache_negative_hits += 1,
            }
            match result {
                Ok(chunk) => {
                    interp.set_budget(&config.run_budget());
                    if let Err(e) = run_chunk(interp, &chunk) {
                        stats.script_errors += 1;
                        classify_runtime(stats, &e);
                    }
                }
                Err(ChunkError::Parse(_)) => {
                    stats.script_errors += 1;
                    stats.script_parse_errors += 1;
                }
                Err(ChunkError::Compile(_)) => {
                    // Compiler-limit fallback: run the cached AST through the
                    // oracle so the page still executes identically.
                    match cache.scripts().lookup_or_parse(src) {
                        Ok(program) => {
                            interp.set_budget(&config.run_budget());
                            if let Err(e) = interp.run(&program) {
                                stats.script_errors += 1;
                                classify_runtime(stats, &e);
                            }
                        }
                        Err(_) => {
                            stats.script_errors += 1;
                            stats.script_parse_errors += 1;
                        }
                    }
                }
            }
        }
    }
}

impl Page {
    /// Dispatch a DOM event at `target`, invoking listeners in spec order.
    /// Returns the number of listeners fired.
    pub fn dispatch_event(&mut self, target: NodeId, event_type: &str) -> u32 {
        let order = {
            let h = self.api.host.borrow();
            h.events.dispatch_order(&h.doc, target, event_type)
        };
        let mut fired = 0;
        for inv in order {
            let (cb, this) = {
                let cb = self.api.host.borrow().listeners[inv.handle as usize].clone();
                let this = api::wrap_node(
                    &mut self.interp,
                    &self.api.host,
                    &self.api.prototypes,
                    inv.node,
                );
                (cb, this)
            };
            let event = self.make_event_object(event_type, target);
            self.interp.set_budget(&self.config.callback_budget());
            if let Err(e) = self.interp.call_value(&cb, this, &[event]) {
                self.stats.script_errors += 1;
                classify_runtime(&mut self.stats, &e);
            }
            fired += 1;
        }
        fired
    }

    fn make_event_object(&mut self, event_type: &str, target: NodeId) -> Value {
        let target_v = api::wrap_node(
            &mut self.interp,
            &self.api.host,
            &self.api.prototypes,
            target,
        );
        let ev = self.interp.heap.alloc(None);
        self.interp
            .heap
            .set_prop_raw(ev, "type", Value::str(event_type));
        self.interp.heap.set_prop_raw(ev, "target", target_v);
        Value::Obj(ev)
    }

    /// Click an element: dispatch `click`, and if the element (or an
    /// ancestor) is a link, report the navigation it would have caused —
    /// intercepted rather than followed, exactly like the paper's crawler.
    pub fn click(&mut self, target: NodeId) -> ClickOutcome {
        let listeners_fired = self.dispatch_event(target, "click");
        let navigation = {
            let h = self.api.host.borrow();
            let mut cur = Some(target);
            let mut nav = None;
            while let Some(n) = cur {
                if h.doc.tag(n) == Some("a") {
                    if let Some(href) = h.doc.attr(n, "href") {
                        nav = self.url.join(href).ok();
                    }
                    break;
                }
                cur = h.doc.parent(n);
            }
            nav
        };
        ClickOutcome {
            navigation,
            listeners_fired,
        }
    }

    /// Dispatch a scroll event at the document root.
    pub fn scroll(&mut self) -> u32 {
        let root = self.api.host.borrow().doc.root();
        self.dispatch_event(root, "scroll")
    }

    /// Type into an element: dispatch `input` at it.
    pub fn type_into(&mut self, target: NodeId) -> u32 {
        self.dispatch_event(target, "input")
    }

    /// Run all timers due up to `until`, advancing the shared clock to each
    /// timer's fire time. Returns the number of callbacks run.
    pub fn run_timers(&mut self, clock: &mut VirtualClock, until: Instant) -> u32 {
        let mut ran = 0;
        loop {
            let next = {
                let mut h = self.api.host.borrow_mut();
                h.timers.pop_due(until)
            };
            let Some((at, cb)) = next else { break };
            clock.advance_to(at);
            self.api.host.borrow_mut().now = at;
            self.interp.set_budget(&self.config.callback_budget());
            if let Err(e) = self.interp.call_value(&cb, Value::Undefined, &[]) {
                self.stats.script_errors += 1;
                classify_runtime(&mut self.stats, &e);
            }
            ran += 1;
            if ran >= self.config.max_timer_callbacks {
                break; // timer-drain budget: runaway interval guard
            }
        }
        ran
    }

    /// Issue the network requests scripts queued (XHR, beacons), subject to
    /// the policy. Returns `(allowed, blocked)` counts.
    pub fn pump_network(
        &mut self,
        net: &mut SimNet,
        policy: &dyn RequestPolicy,
        clock: &mut VirtualClock,
    ) -> (u32, u32) {
        let pending: Vec<(Url, ResourceType)> =
            std::mem::take(&mut self.api.host.borrow_mut().pending_requests);
        let (mut allowed, mut blocked) = (0, 0);
        for (url, rtype) in pending {
            self.stats.requests_attempted += 1;
            let req = HttpRequest::get(url, rtype).with_initiator(self.url.clone());
            if policy.decide(&req).is_some() {
                self.stats.requests_blocked += 1;
                blocked += 1;
                continue;
            }
            if net.fetch(&req, clock).is_err() {
                self.stats.requests_failed += 1;
            }
            allowed += 1;
        }
        (allowed, blocked)
    }

    /// Same-document links, resolved absolute.
    pub fn links(&self) -> Vec<Url> {
        let h = self.api.host.borrow();
        h.doc
            .elements()
            .into_iter()
            .filter(|&n| h.doc.tag(n) == Some("a"))
            .filter_map(|n| h.doc.attr(n, "href").map(str::to_owned))
            .filter_map(|href| self.url.join(&href).ok())
            .collect()
    }

    /// Visible elements a user could plausibly interact with, in document
    /// order — the monkey's click/type candidates.
    pub fn interactive_elements(&self) -> Vec<NodeId> {
        let h = self.api.host.borrow();
        h.doc
            .elements()
            .into_iter()
            .filter(|&n| h.doc.is_visible(n))
            .filter(|&n| {
                matches!(
                    h.doc.tag(n),
                    Some(
                        "a" | "button"
                            | "input"
                            | "select"
                            | "textarea"
                            | "div"
                            | "span"
                            | "li"
                            | "img"
                            | "p"
                            | "h1"
                            | "h2"
                            | "h3"
                    )
                )
            })
            .collect()
    }

    /// Elements that currently have listeners for `event_type`.
    pub fn listening_elements(&self, event_type: &str) -> Vec<NodeId> {
        self.api.host.borrow().events.nodes_listening(event_type)
    }
}
