//! Virtual timer queue (`setTimeout` / `setInterval`).
//!
//! Timers fire on the page's virtual clock during the 30-second interaction
//! window — ad and analytics scripts in the wild commonly defer work behind
//! timeouts, and the synthetic web does the same, so timer semantics matter
//! for which features the crawl elicits.

use bfu_script::Value;
use bfu_util::Instant;
use std::collections::BinaryHeap;

/// A scheduled callback.
#[derive(Debug)]
struct Timer {
    due: Instant,
    seq: u64,
    callback: Value,
    /// Repeat interval for `setInterval`-style timers.
    every_ms: Option<u64>,
    id: u32,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so the earliest timer pops first;
        // ties break by insertion order.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The timer queue.
#[derive(Debug, Default)]
pub struct TimerQueue {
    heap: BinaryHeap<Timer>,
    next_seq: u64,
    next_id: u32,
    cancelled: Vec<u32>,
}

impl TimerQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `callback` to fire `delay_ms` after `now`. Returns a timer id
    /// (for `clearTimeout`).
    pub fn schedule(&mut self, callback: Value, now: Instant, delay_ms: u64) -> u32 {
        self.schedule_inner(callback, now, delay_ms, None)
    }

    /// Schedule a repeating timer.
    pub fn schedule_repeating(&mut self, callback: Value, now: Instant, every_ms: u64) -> u32 {
        self.schedule_inner(callback, now, every_ms, Some(every_ms.max(1)))
    }

    fn schedule_inner(
        &mut self,
        callback: Value,
        now: Instant,
        delay_ms: u64,
        every_ms: Option<u64>,
    ) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Timer {
            due: now.plus(delay_ms),
            seq,
            callback,
            every_ms,
            id,
        });
        id
    }

    /// Cancel a timer by id (`clearTimeout` / `clearInterval`).
    pub fn cancel(&mut self, id: u32) {
        self.cancelled.push(id);
    }

    /// Pop the next timer due at or before `now`. Repeating timers
    /// reschedule themselves. Returns `(fire_time, callback)`.
    pub fn pop_due(&mut self, now: Instant) -> Option<(Instant, Value)> {
        loop {
            match self.heap.peek() {
                Some(top) if top.due <= now => {}
                _ => return None,
            }
            let timer = self.heap.pop()?;
            if self.cancelled.contains(&timer.id) {
                continue;
            }
            let cb = timer.callback.clone();
            let due = timer.due;
            if let Some(every) = timer.every_ms {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.heap.push(Timer {
                    due: due.plus(every),
                    seq,
                    callback: timer.callback,
                    every_ms: Some(every),
                    id: timer.id,
                });
            }
            return Some((due, cb));
        }
    }

    /// The due time of the next pending timer.
    pub fn next_due(&self) -> Option<Instant> {
        self.heap.peek().map(|t| t.due)
    }

    /// Number of pending timers (including cancelled-but-not-reaped).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: f64) -> Value {
        Value::Num(n)
    }

    #[test]
    fn fires_in_time_order() {
        let mut q = TimerQueue::new();
        q.schedule(v(2.0), Instant::ZERO, 200);
        q.schedule(v(1.0), Instant::ZERO, 100);
        q.schedule(v(3.0), Instant::ZERO, 300);
        let now = Instant(250);
        let (t1, c1) = q.pop_due(now).unwrap();
        let (t2, c2) = q.pop_due(now).unwrap();
        assert_eq!((t1, c1.to_number()), (Instant(100), 1.0));
        assert_eq!((t2, c2.to_number()), (Instant(200), 2.0));
        assert!(q.pop_due(now).is_none(), "300ms timer not yet due");
        assert_eq!(q.next_due(), Some(Instant(300)));
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = TimerQueue::new();
        q.schedule(v(1.0), Instant::ZERO, 50);
        q.schedule(v(2.0), Instant::ZERO, 50);
        assert_eq!(q.pop_due(Instant(50)).unwrap().1.to_number(), 1.0);
        assert_eq!(q.pop_due(Instant(50)).unwrap().1.to_number(), 2.0);
    }

    #[test]
    fn cancelled_timers_skipped() {
        let mut q = TimerQueue::new();
        let id = q.schedule(v(1.0), Instant::ZERO, 10);
        q.schedule(v(2.0), Instant::ZERO, 20);
        q.cancel(id);
        assert_eq!(q.pop_due(Instant(100)).unwrap().1.to_number(), 2.0);
        assert!(q.pop_due(Instant(100)).is_none());
    }

    #[test]
    fn repeating_reschedules() {
        let mut q = TimerQueue::new();
        let id = q.schedule_repeating(v(9.0), Instant::ZERO, 100);
        assert_eq!(q.pop_due(Instant(100)).unwrap().0, Instant(100));
        assert_eq!(q.pop_due(Instant(250)).unwrap().0, Instant(200));
        q.cancel(id);
        assert!(q.pop_due(Instant(1000)).is_none());
    }

    #[test]
    fn empty_queue() {
        let mut q = TimerQueue::new();
        assert!(q.is_empty());
        assert!(q.pop_due(Instant(1_000_000)).is_none());
        assert_eq!(q.next_due(), None);
    }
}
