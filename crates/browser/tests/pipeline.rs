//! Full-pipeline tests: HTML over the simulated network → parse → API →
//! instrumentation → script execution → interaction → feature log.

use bfu_browser::{AllowAll, Browser, RequestPolicy};
use bfu_net::{HttpRequest, HttpResponse, SimNet, Url};
use bfu_util::{Instant, SimRng, VirtualClock};
use bfu_webidl::FeatureRegistry;
use std::rc::Rc;
use std::sync::Arc;

const PAGE: &str = r#"
<html><head>
<script src="/app.js"></script>
</head><body>
<div id="content"><a id="next" href="/news/story1">Story</a></div>
<div class="ad-slot"><img src="http://ads.adnet.test/banner.png"></div>
<script>
  var el = document.createElement('section');
  document.body.appendChild(el);
  var btn = document.querySelector('#next');
  btn.addEventListener('click', function(ev) {
    var x = new XMLHttpRequest();
    x.open('GET', '/api/click');
  });
  setTimeout(function() { navigator.sendBeacon('http://metrics.test/b'); }, 2000);
</script>
</body></html>
"#;

const APP_JS: &str = r#"
var boxes = document.querySelectorAll('div');
var i = 0;
while (i < boxes.length) { i = i + 1; }
"#;

fn build_net() -> SimNet {
    let mut net = SimNet::new(SimRng::new(11));
    net.register(
        "site.test",
        Arc::new(|req: &HttpRequest| match req.url.path() {
            "/" => HttpResponse::html(PAGE),
            "/app.js" => HttpResponse::javascript(APP_JS),
            _ => HttpResponse::html("<html><body>inner</body></html>"),
        }),
    );
    net.register(
        "ads.adnet.test",
        Arc::new(|_: &HttpRequest| HttpResponse::ok("image/png", "PNGDATA")),
    );
    net.register(
        "metrics.test",
        Arc::new(|_: &HttpRequest| HttpResponse::ok("text/plain", "ok")),
    );
    net
}

fn load_default() -> (bfu_browser::Page, SimNet, VirtualClock) {
    let registry = Rc::new(FeatureRegistry::build());
    let browser = Browser::new(registry);
    let mut net = build_net();
    let mut clock = VirtualClock::new();
    let url = Url::parse("http://site.test/").unwrap();
    let page = browser.load(&mut net, &url, &AllowAll, &mut clock).unwrap();
    (page, net, clock)
}

#[test]
fn load_executes_scripts_and_counts_features() {
    let (page, _, _) = load_default();
    assert_eq!(page.stats.script_errors, 0, "{:?}", page.stats);
    assert_eq!(page.stats.scripts_run, 2);
    let registry = FeatureRegistry::build();
    let log = page.log.borrow();
    for name in [
        "Document.prototype.createElement",
        "Node.prototype.appendChild",
        "Document.prototype.querySelector",
        "Document.prototype.querySelectorAll",
        "EventTarget.prototype.addEventListener",
    ] {
        let fid = registry.by_name(name).unwrap();
        assert!(log.saw(fid), "{name} not logged");
    }
}

#[test]
fn click_fires_listener_and_reports_navigation() {
    let (mut page, mut net, mut clock) = load_default();
    let link = page
        .interactive_elements()
        .into_iter()
        .find(|&n| page.api.host.borrow().doc.tag(n) == Some("a"))
        .unwrap();
    let outcome = page.click(link);
    assert_eq!(outcome.listeners_fired, 1);
    assert_eq!(
        outcome.navigation.unwrap().to_string(),
        "http://site.test/news/story1"
    );
    // The listener queued an XHR; pump it.
    let (allowed, blocked) = page.pump_network(&mut net, &AllowAll, &mut clock);
    assert_eq!((allowed, blocked), (1, 0));
    let registry = FeatureRegistry::build();
    assert!(page
        .log
        .borrow()
        .saw(registry.by_name("XMLHttpRequest.prototype.open").unwrap()));
}

#[test]
fn timers_fire_on_virtual_clock() {
    let (mut page, mut net, mut clock) = load_default();
    let start = clock.now();
    let ran = page.run_timers(&mut clock, start.plus(30_000));
    assert_eq!(ran, 1, "the 2s beacon timer fires within the 30s budget");
    let (allowed, _) = page.pump_network(&mut net, &AllowAll, &mut clock);
    assert_eq!(allowed, 1, "beacon request issued");
    let registry = FeatureRegistry::build();
    assert!(page
        .log
        .borrow()
        .saw(registry.by_name("Navigator.prototype.sendBeacon").unwrap()));
}

#[test]
fn timers_do_not_fire_before_due() {
    let (mut page, _, mut clock) = load_default();
    let start = clock.now();
    assert_eq!(page.run_timers(&mut clock, start.plus(100)), 0);
}

/// A policy blocking the ad host and hiding `.ad-slot`.
struct TestBlocker;

impl RequestPolicy for TestBlocker {
    fn decide(&self, req: &HttpRequest) -> Option<String> {
        (req.url.host() == "ads.adnet.test").then(|| "||adnet.test^".to_owned())
    }

    fn hiding_selectors(&self, _domain: &str) -> Vec<String> {
        vec![".ad-slot".to_owned()]
    }
}

#[test]
fn blocking_policy_stops_requests_and_hides_elements() {
    let registry = Rc::new(FeatureRegistry::build());
    let browser = Browser::new(registry);
    let mut net = build_net();
    let mut clock = VirtualClock::new();
    let url = Url::parse("http://site.test/").unwrap();
    let page = browser
        .load(&mut net, &url, &TestBlocker, &mut clock)
        .unwrap();
    assert_eq!(page.stats.requests_blocked, 1, "ad image blocked");
    // The hidden ad container is no longer an interaction candidate.
    let host = page.api.host.borrow();
    let hidden = bfu_dom::Selector::parse(".ad-slot")
        .unwrap()
        .query_first(&host.doc)
        .unwrap();
    assert!(!host.doc.is_visible(hidden));
}

#[test]
fn dead_document_host_is_a_load_error() {
    let registry = Rc::new(FeatureRegistry::build());
    let browser = Browser::new(registry);
    let mut net = build_net();
    let mut clock = VirtualClock::new();
    let url = Url::parse("http://gone.test/").unwrap();
    assert!(browser.load(&mut net, &url, &AllowAll, &mut clock).is_err());
}

#[test]
fn uninstrumented_load_logs_nothing_but_behaves_the_same() {
    let registry = Rc::new(FeatureRegistry::build());
    let mut browser = Browser::new(registry);
    browser.config.instrument = false;
    let mut net = build_net();
    let mut clock = VirtualClock::new();
    let url = Url::parse("http://site.test/").unwrap();
    let page = browser.load(&mut net, &url, &AllowAll, &mut clock).unwrap();
    assert_eq!(page.stats.script_errors, 0);
    assert_eq!(page.log.borrow().total_invocations(), 0);
}

#[test]
fn load_is_deterministic() {
    let run = || {
        let (page, net, clock) = load_default();
        let invocations = page.log.borrow().total_invocations();
        (invocations, page.stats, net.stats(), clock.now())
    };
    assert_eq!(run(), run());
}

#[test]
fn clock_advances_during_load() {
    let (_, _, clock) = load_default();
    assert!(clock.now() > Instant::ZERO);
}
