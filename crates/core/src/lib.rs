//! # bfu-core
//!
//! The study facade: configure → generate web → crawl → analyze, as one
//! documented API. This is the crate downstream users depend on; everything
//! else is re-exported through it.
//!
//! ```no_run
//! use bfu_core::{Study, StudyConfig};
//!
//! let study = Study::run(StudyConfig::quick(200, 7));
//! let report = study.report();
//! println!("{}", report.headline_text());
//! ```

pub mod study;

pub use study::{StoredStudy, Study, StudyConfig, StudyReport};

pub use bfu_analysis as analysis;
pub use bfu_blocker as blocker;
pub use bfu_browser as browser;
pub use bfu_crawler as crawler;
pub use bfu_dom as dom;
pub use bfu_fabric as fabric;
pub use bfu_monkey as monkey;
pub use bfu_net as net;
pub use bfu_objstore as objstore;
pub use bfu_script as script;
pub use bfu_store as store;
pub use bfu_util as util;
pub use bfu_webgen as webgen;
pub use bfu_webidl as webidl;
