//! The study facade: the whole paper as one API call.
//!
//! [`Study::run`] generates the synthetic web, crawls it under the
//! configured browser profiles, and exposes every analysis of the paper
//! through [`Study::report`]. This is the entry point downstream users (and
//! the `repro` binary, examples, and benches) build on.

use bfu_analysis::blocking::{fig4_points, fig7_points, Fig4Point, Fig7Point};
use bfu_analysis::complexity::{complexity, ComplexityDistribution};
use bfu_analysis::convergence::new_standards_per_round;
use bfu_analysis::traffic::{fig5_points, Fig5Point};
use bfu_analysis::validation::{histogram, ValidationHistogram};
use bfu_analysis::{age, report, tables};
use bfu_analysis::{headline, FeaturePopularity, HeadlineStats, StandardPopularity};
use bfu_crawler::{BrowserProfile, CrawlConfig, Dataset, Survey};
use bfu_webgen::{SyntheticWeb, WebConfig};
use bfu_webidl::FeatureRegistry;

/// Configuration for one end-to-end study.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Number of ranked sites to generate and crawl (paper: 10,000).
    pub sites: usize,
    /// Master seed for the web and the crawl.
    pub seed: u64,
    /// Measurement rounds per profile (paper: 5).
    pub rounds: u32,
    /// Pages per site per round (paper: 13).
    pub pages_per_site: usize,
    /// Virtual interaction budget per page in ms (paper: 30,000).
    pub page_budget_ms: u64,
    /// Also crawl the ad-only / tracker-only profiles needed for Fig. 7.
    pub fig7_profiles: bool,
    /// Worker threads.
    pub threads: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            sites: 10_000,
            seed: 0x0B5E_55ED,
            rounds: 5,
            pages_per_site: 13,
            page_budget_ms: 30_000,
            fig7_profiles: true,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl StudyConfig {
    /// A laptop-scale configuration preserving the paper's *shape*: fewer
    /// sites and rounds, same structure. Good for examples and CI.
    pub fn quick(sites: usize, seed: u64) -> Self {
        StudyConfig {
            sites,
            seed,
            rounds: 3,
            pages_per_site: 6,
            page_budget_ms: 10_000,
            fig7_profiles: true,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }

    /// The crawl configuration this study runs under.
    pub fn crawl_config(&self) -> CrawlConfig {
        let mut profiles = vec![BrowserProfile::Default, BrowserProfile::Blocking];
        if self.fig7_profiles {
            profiles.push(BrowserProfile::AdblockOnly);
            profiles.push(BrowserProfile::GhosteryOnly);
        }
        CrawlConfig {
            rounds_per_profile: self.rounds,
            pages_per_site: self.pages_per_site,
            fanout: 3,
            page_budget_ms: self.page_budget_ms,
            profiles,
            threads: self.threads,
            seed: self.seed ^ 0xC4A31,
            retry: bfu_crawler::RetryPolicy::default(),
            breaker: bfu_crawler::BreakerPolicy::default(),
            browser: bfu_crawler::BrowserConfig::default(),
            compile_cache: true,
        }
    }

    /// The survey fingerprint this configuration produces — the dataset
    /// store's key — computed without generating the web. Thread count is
    /// excluded (measurements are thread-invariant), so the same study
    /// resumed on a different machine still matches its store.
    pub fn fingerprint(&self) -> u64 {
        bfu_crawler::survey_fingerprint(self.seed, self.sites, &self.crawl_config(), None)
    }
}

/// A completed study: the web, the dataset, and the registry.
#[derive(Debug)]
pub struct Study {
    web: SyntheticWeb,
    dataset: Dataset,
    registry: FeatureRegistry,
    config: StudyConfig,
}

/// A study obtained through the dataset store: the study itself plus how it
/// was assembled (recovered vs freshly crawled) and the shard read report.
#[derive(Debug)]
pub struct StoredStudy {
    /// The complete study.
    pub study: Study,
    /// Sites recovered from the store instead of being crawled.
    pub resumed_sites: usize,
    /// Sites crawled fresh (always 0 for [`Study::from_store`]).
    pub crawled_sites: usize,
    /// What reading the store's shards observed.
    pub report: bfu_store::ReadReport,
    /// What the pre-resume scrub found and repaired (`None` for
    /// [`Study::from_store`], which never mutates the store).
    pub scrub: Option<bfu_store::ScrubReport>,
}

impl StoredStudy {
    /// One human-readable cache line: how much crawling the store saved.
    pub fn cache_line(&self) -> String {
        let total = self.resumed_sites + self.crawled_sites;
        if self.crawled_sites == 0 {
            format!(
                "store: HIT ({}/{total} sites from shards, zero crawl activity)",
                self.resumed_sites
            )
        } else if self.resumed_sites == 0 {
            format!("store: MISS (crawled all {total} sites, shards written)")
        } else {
            format!(
                "store: PARTIAL ({}/{total} sites from shards, {} crawled)",
                self.resumed_sites, self.crawled_sites
            )
        }
    }
}

impl Study {
    fn survey_for(config: &StudyConfig) -> (SyntheticWeb, Survey) {
        let web = SyntheticWeb::generate(WebConfig {
            sites: config.sites,
            seed: config.seed,
            script_weight: 0,
        });
        let survey = Survey::new(web.clone(), config.crawl_config());
        (web, survey)
    }

    /// Assemble a study from already-obtained parts (a stored dataset).
    pub fn from_parts(web: SyntheticWeb, dataset: Dataset, config: StudyConfig) -> Study {
        Study {
            web,
            dataset,
            registry: FeatureRegistry::build(),
            config,
        }
    }

    /// Generate the web and run the full crawl.
    pub fn run(config: StudyConfig) -> Study {
        let (web, survey) = Study::survey_for(&config);
        let dataset = survey.run();
        Study::from_parts(web, dataset, config)
    }

    /// Run the study, persisting results to (and resuming from) the dataset
    /// store at `dir`. Sites already in the store are not re-crawled; sites
    /// crawled fresh stream into new shards as they complete, so a killed
    /// run resumes on the next call.
    pub fn run_with_store(
        config: StudyConfig,
        dir: &std::path::Path,
    ) -> Result<StoredStudy, bfu_store::StoreError> {
        let (web, survey) = Study::survey_for(&config);
        let outcome = bfu_store::resume_survey(&survey, dir)?;
        Ok(StoredStudy {
            study: Study::from_parts(web, outcome.dataset, config),
            resumed_sites: outcome.resumed_sites,
            crawled_sites: outcome.crawled_sites,
            report: outcome.report,
            scrub: Some(outcome.scrub),
        })
    }

    /// Load a completed study from the dataset store at `dir` with zero
    /// crawl activity. Fails with [`bfu_store::StoreError::Incomplete`] when
    /// the store is missing sites (resume with [`Study::run_with_store`]).
    pub fn from_store(
        config: StudyConfig,
        dir: &std::path::Path,
    ) -> Result<StoredStudy, bfu_store::StoreError> {
        let (web, survey) = Study::survey_for(&config);
        match bfu_store::load_survey_dataset(&survey, dir)? {
            bfu_store::LoadOutcome::Complete { dataset, report } => {
                let resumed_sites = dataset.sites.len();
                Ok(StoredStudy {
                    study: Study::from_parts(web, dataset, config),
                    resumed_sites,
                    crawled_sites: 0,
                    report,
                    scrub: None,
                })
            }
            bfu_store::LoadOutcome::Incomplete {
                present, missing, ..
            } => Err(bfu_store::StoreError::Incomplete { present, missing }),
        }
    }

    /// The crawled dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The synthetic web under study.
    pub fn web(&self) -> &SyntheticWeb {
        &self.web
    }

    /// The feature registry.
    pub fn registry(&self) -> &FeatureRegistry {
        &self.registry
    }

    /// The configuration used.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Compute every analysis.
    pub fn report(&self) -> StudyReport {
        let features = FeaturePopularity::compute(&self.dataset, &self.registry);
        let standards = StandardPopularity::compute(&self.dataset, &self.registry);
        let headline_stats = headline(&features, &standards);
        let table1 = tables::table1(&self.dataset);
        let table2 = tables::table2_full(&standards, &self.registry);
        let table3 =
            new_standards_per_round(&self.dataset, &self.registry, BrowserProfile::Default);
        let fig3 = standards.popularity_cdf(BrowserProfile::Default);
        let fig4 = fig4_points(&standards, &self.registry);
        let fig5 = fig5_points(&self.dataset, &self.registry);
        let fig6 = age::fig6_points(&standards, &self.registry);
        let fig7 = fig7_points(&standards, &self.registry);
        let fig8 = complexity(&self.dataset, &self.registry);
        StudyReport {
            features,
            standards,
            headline: headline_stats,
            table1,
            table2,
            table3,
            fig3,
            fig4,
            fig5,
            fig6,
            fig7,
            fig8,
        }
    }

    /// Run the §6.2 external validation against `n` traffic-weighted sites.
    pub fn external_validation(&self, n: usize) -> ValidationHistogram {
        let crawl = CrawlConfig {
            profiles: vec![BrowserProfile::Default],
            ..self.config.crawl_config()
        };
        let survey = Survey::new(self.web.clone(), crawl);
        histogram(&survey.external_validation(&self.dataset, n).sites)
    }
}

/// Every computed analysis of one study.
#[derive(Debug)]
pub struct StudyReport {
    /// Per-feature popularity.
    pub features: FeaturePopularity,
    /// Per-standard popularity and block rates.
    pub standards: StandardPopularity,
    /// §5.3 headline statistics.
    pub headline: HeadlineStats,
    /// Table 1 aggregates.
    pub table1: tables::Table1,
    /// Full 75-row Table 2.
    pub table2: Vec<tables::Table2Row>,
    /// Table 3 (new standards per round).
    pub table3: Vec<f64>,
    /// Fig. 3 CDF points.
    pub fig3: Vec<(f64, f64)>,
    /// Fig. 4 points.
    pub fig4: Vec<Fig4Point>,
    /// Fig. 5 points.
    pub fig5: Vec<Fig5Point>,
    /// Fig. 6 points.
    pub fig6: Vec<age::Fig6Point>,
    /// Fig. 7 points (empty without the Fig. 7 profiles).
    pub fig7: Vec<Fig7Point>,
    /// Fig. 8 distribution.
    pub fig8: ComplexityDistribution,
}

impl StudyReport {
    /// The §5.3 headline, rendered.
    pub fn headline_text(&self) -> String {
        report::render_headline(&self.headline)
    }

    /// Every table and figure, rendered as one text document.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        out.push_str(&report::render_table1(&self.table1));
        out.push('\n');
        out.push_str(&self.headline_text());
        out.push('\n');
        out.push_str(&report::render_fig1());
        out.push('\n');
        out.push_str(&report::render_fig3(&self.fig3));
        out.push('\n');
        out.push_str(&report::render_fig4(&self.fig4));
        out.push('\n');
        out.push_str(&report::render_fig5(&self.fig5));
        out.push('\n');
        out.push_str(&report::render_fig6(&self.fig6));
        out.push('\n');
        out.push_str(&report::render_fig7(&self.fig7));
        out.push('\n');
        out.push_str(&report::render_fig8(&self.fig8));
        out.push('\n');
        out.push_str(&report::render_table2(&self.table2));
        out.push('\n');
        out.push_str(&report::render_table3(&self.table3));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    static STUDY: OnceLock<Study> = OnceLock::new();

    fn study() -> &'static Study {
        STUDY.get_or_init(|| Study::run(StudyConfig::quick(25, 7)))
    }

    #[test]
    fn quick_study_produces_full_report() {
        let report = study().report();
        assert_eq!(report.table2.len(), 75);
        assert!(report.table1.domains_measured > 15);
        assert!(!report.fig4.is_empty());
        assert!(!report.fig7.is_empty(), "fig7 profiles crawled");
        assert!(report.headline.features_never_used > 0);
        let text = report.render_all();
        assert!(text.contains("Table 1"));
        assert!(text.contains("Fig 8"));
        assert!(text.contains("Headline"));
    }

    #[test]
    fn external_validation_runs() {
        let h = study().external_validation(5);
        assert!(h.total_sites > 0);
    }

    #[test]
    fn config_fingerprint_matches_survey_and_ignores_threads() {
        let config = StudyConfig::quick(12, 5);
        let (_, survey) = Study::survey_for(&config);
        assert_eq!(config.fingerprint(), survey.fingerprint());
        let mut other_threads = config.clone();
        other_threads.threads = config.threads + 3;
        assert_eq!(config.fingerprint(), other_threads.fingerprint());
        let mut other_seed = config;
        other_seed.seed ^= 1;
        assert_ne!(other_seed.fingerprint(), other_threads.fingerprint());
    }

    #[test]
    fn store_run_then_load_fingerprints_match() {
        let dir = std::env::temp_dir().join(format!("bfu-core-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StudyConfig::quick(6, 31);
        let fresh = Study::run(config.clone());
        let written = Study::run_with_store(config.clone(), &dir).expect("run with store");
        assert_eq!(written.crawled_sites, 6);
        assert_eq!(
            written.study.dataset().fingerprint(),
            fresh.dataset().fingerprint()
        );
        let loaded = Study::from_store(config, &dir).expect("load from store");
        assert_eq!(loaded.crawled_sites, 0, "load must not crawl");
        assert_eq!(loaded.resumed_sites, 6);
        assert!(loaded.cache_line().contains("HIT"));
        assert_eq!(
            loaded.study.dataset().fingerprint(),
            fresh.dataset().fingerprint()
        );
    }

    #[test]
    fn studies_are_reproducible() {
        let a = Study::run(StudyConfig::quick(8, 42));
        let b = Study::run(StudyConfig::quick(8, 42));
        assert_eq!(
            a.dataset().total_invocations(),
            b.dataset().total_invocations()
        );
        assert_eq!(a.dataset().total_pages(), b.dataset().total_pages());
    }
}
