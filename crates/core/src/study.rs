//! The study facade: the whole paper as one API call.
//!
//! [`Study::run`] generates the synthetic web, crawls it under the
//! configured browser profiles, and exposes every analysis of the paper
//! through [`Study::report`]. This is the entry point downstream users (and
//! the `repro` binary, examples, and benches) build on.

use bfu_analysis::blocking::{fig4_points, fig7_points, Fig4Point, Fig7Point};
use bfu_analysis::complexity::{complexity, ComplexityDistribution};
use bfu_analysis::convergence::new_standards_per_round;
use bfu_analysis::traffic::{fig5_points, Fig5Point};
use bfu_analysis::validation::{histogram, ValidationHistogram};
use bfu_analysis::{age, report, tables};
use bfu_analysis::{headline, FeaturePopularity, HeadlineStats, StandardPopularity};
use bfu_crawler::{BrowserProfile, CrawlConfig, Dataset, Survey};
use bfu_webgen::{SyntheticWeb, WebConfig};
use bfu_webidl::FeatureRegistry;

/// Configuration for one end-to-end study.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Number of ranked sites to generate and crawl (paper: 10,000).
    pub sites: usize,
    /// Master seed for the web and the crawl.
    pub seed: u64,
    /// Measurement rounds per profile (paper: 5).
    pub rounds: u32,
    /// Pages per site per round (paper: 13).
    pub pages_per_site: usize,
    /// Virtual interaction budget per page in ms (paper: 30,000).
    pub page_budget_ms: u64,
    /// Also crawl the ad-only / tracker-only profiles needed for Fig. 7.
    pub fig7_profiles: bool,
    /// Worker threads.
    pub threads: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            sites: 10_000,
            seed: 0x0B5E_55ED,
            rounds: 5,
            pages_per_site: 13,
            page_budget_ms: 30_000,
            fig7_profiles: true,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl StudyConfig {
    /// A laptop-scale configuration preserving the paper's *shape*: fewer
    /// sites and rounds, same structure. Good for examples and CI.
    pub fn quick(sites: usize, seed: u64) -> Self {
        StudyConfig {
            sites,
            seed,
            rounds: 3,
            pages_per_site: 6,
            page_budget_ms: 10_000,
            fig7_profiles: true,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

/// A completed study: the web, the dataset, and the registry.
#[derive(Debug)]
pub struct Study {
    web: SyntheticWeb,
    dataset: Dataset,
    registry: FeatureRegistry,
    config: StudyConfig,
}

impl Study {
    /// Generate the web and run the full crawl.
    pub fn run(config: StudyConfig) -> Study {
        let web = SyntheticWeb::generate(WebConfig {
            sites: config.sites,
            seed: config.seed,
        });
        let mut profiles = vec![BrowserProfile::Default, BrowserProfile::Blocking];
        if config.fig7_profiles {
            profiles.push(BrowserProfile::AdblockOnly);
            profiles.push(BrowserProfile::GhosteryOnly);
        }
        let crawl = CrawlConfig {
            rounds_per_profile: config.rounds,
            pages_per_site: config.pages_per_site,
            fanout: 3,
            page_budget_ms: config.page_budget_ms,
            profiles,
            threads: config.threads,
            seed: config.seed ^ 0xC4A31,
            retry: bfu_crawler::RetryPolicy::default(),
        };
        let dataset = Survey::new(web.clone(), crawl).run();
        let registry = FeatureRegistry::build();
        Study {
            web,
            dataset,
            registry,
            config,
        }
    }

    /// The crawled dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The synthetic web under study.
    pub fn web(&self) -> &SyntheticWeb {
        &self.web
    }

    /// The feature registry.
    pub fn registry(&self) -> &FeatureRegistry {
        &self.registry
    }

    /// The configuration used.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Compute every analysis.
    pub fn report(&self) -> StudyReport {
        let features = FeaturePopularity::compute(&self.dataset, &self.registry);
        let standards = StandardPopularity::compute(&self.dataset, &self.registry);
        let headline_stats = headline(&features, &standards);
        let table1 = tables::table1(&self.dataset);
        let table2 = tables::table2_full(&standards, &self.registry);
        let table3 =
            new_standards_per_round(&self.dataset, &self.registry, BrowserProfile::Default);
        let fig3 = standards.popularity_cdf(BrowserProfile::Default);
        let fig4 = fig4_points(&standards, &self.registry);
        let fig5 = fig5_points(&self.dataset, &self.registry);
        let fig6 = age::fig6_points(&standards, &self.registry);
        let fig7 = fig7_points(&standards, &self.registry);
        let fig8 = complexity(&self.dataset, &self.registry);
        StudyReport {
            features,
            standards,
            headline: headline_stats,
            table1,
            table2,
            table3,
            fig3,
            fig4,
            fig5,
            fig6,
            fig7,
            fig8,
        }
    }

    /// Run the §6.2 external validation against `n` traffic-weighted sites.
    pub fn external_validation(&self, n: usize) -> ValidationHistogram {
        let crawl = CrawlConfig {
            rounds_per_profile: self.config.rounds,
            pages_per_site: self.config.pages_per_site,
            fanout: 3,
            page_budget_ms: self.config.page_budget_ms,
            profiles: vec![BrowserProfile::Default],
            threads: self.config.threads,
            seed: self.config.seed ^ 0xC4A31,
            retry: bfu_crawler::RetryPolicy::default(),
        };
        let survey = Survey::new(self.web.clone(), crawl);
        histogram(&survey.external_validation(&self.dataset, n).sites)
    }
}

/// Every computed analysis of one study.
#[derive(Debug)]
pub struct StudyReport {
    /// Per-feature popularity.
    pub features: FeaturePopularity,
    /// Per-standard popularity and block rates.
    pub standards: StandardPopularity,
    /// §5.3 headline statistics.
    pub headline: HeadlineStats,
    /// Table 1 aggregates.
    pub table1: tables::Table1,
    /// Full 75-row Table 2.
    pub table2: Vec<tables::Table2Row>,
    /// Table 3 (new standards per round).
    pub table3: Vec<f64>,
    /// Fig. 3 CDF points.
    pub fig3: Vec<(f64, f64)>,
    /// Fig. 4 points.
    pub fig4: Vec<Fig4Point>,
    /// Fig. 5 points.
    pub fig5: Vec<Fig5Point>,
    /// Fig. 6 points.
    pub fig6: Vec<age::Fig6Point>,
    /// Fig. 7 points (empty without the Fig. 7 profiles).
    pub fig7: Vec<Fig7Point>,
    /// Fig. 8 distribution.
    pub fig8: ComplexityDistribution,
}

impl StudyReport {
    /// The §5.3 headline, rendered.
    pub fn headline_text(&self) -> String {
        report::render_headline(&self.headline)
    }

    /// Every table and figure, rendered as one text document.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        out.push_str(&report::render_table1(&self.table1));
        out.push('\n');
        out.push_str(&self.headline_text());
        out.push('\n');
        out.push_str(&report::render_fig1());
        out.push('\n');
        out.push_str(&report::render_fig3(&self.fig3));
        out.push('\n');
        out.push_str(&report::render_fig4(&self.fig4));
        out.push('\n');
        out.push_str(&report::render_fig5(&self.fig5));
        out.push('\n');
        out.push_str(&report::render_fig6(&self.fig6));
        out.push('\n');
        out.push_str(&report::render_fig7(&self.fig7));
        out.push('\n');
        out.push_str(&report::render_fig8(&self.fig8));
        out.push('\n');
        out.push_str(&report::render_table2(&self.table2));
        out.push('\n');
        out.push_str(&report::render_table3(&self.table3));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    static STUDY: OnceLock<Study> = OnceLock::new();

    fn study() -> &'static Study {
        STUDY.get_or_init(|| Study::run(StudyConfig::quick(25, 7)))
    }

    #[test]
    fn quick_study_produces_full_report() {
        let report = study().report();
        assert_eq!(report.table2.len(), 75);
        assert!(report.table1.domains_measured > 15);
        assert!(!report.fig4.is_empty());
        assert!(!report.fig7.is_empty(), "fig7 profiles crawled");
        assert!(report.headline.features_never_used > 0);
        let text = report.render_all();
        assert!(text.contains("Table 1"));
        assert!(text.contains("Fig 8"));
        assert!(text.contains("Headline"));
    }

    #[test]
    fn external_validation_runs() {
        let h = study().external_validation(5);
        assert!(h.total_sites > 0);
    }

    #[test]
    fn studies_are_reproducible() {
        let a = Study::run(StudyConfig::quick(8, 42));
        let b = Study::run(StudyConfig::quick(8, 42));
        assert_eq!(
            a.dataset().total_invocations(),
            b.dataset().total_invocations()
        );
        assert_eq!(a.dataset().total_pages(), b.dataset().total_pages());
    }
}
