//! Per-host circuit breakers.
//!
//! A host that repeatedly traps the script governor (infinite loops,
//! allocation bombs — the `ScriptBudget` fault class) costs the crawl its
//! full page budget on every visit while yielding no measurements. The
//! breaker contains that: after [`BreakerPolicy::trip_threshold`]
//! *consecutive* trap-class rounds the breaker **opens** and the host's
//! remaining rounds are skipped (each recorded as a
//! [`CrawlError::CircuitOpen`] loss, so the skip is itself a measurement).
//!
//! Cool-downs are paid from the virtual clock, never the wall clock: a
//! skipped round forfeits its time slot (the round watchdog budget), and
//! once the remaining cool-down fits inside one slot the breaker goes
//! **half-open** — the next round waits out the remainder on the virtual
//! clock and probes the host. A clean probe closes the breaker; another
//! trap re-opens it with an escalated cool-down (capped at
//! [`BreakerPolicy::max_cooldown_ms`]).
//!
//! Breakers are scoped to one site's crawl (created per [`crawl_site`]
//! call and shared across its profiles and rounds), so the state machine is
//! driven by a deterministic, single-threaded sequence of rounds — the
//! skip/probe pattern is invariant across crawl thread counts like the rest
//! of the supervision layer.
//!
//! [`crawl_site`]: crate::Survey
//! [`CrawlError::CircuitOpen`]: crate::CrawlError::CircuitOpen

use crate::error::CrawlError;

/// Tuning for the per-host breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive trap-class rounds that open the breaker.
    pub trip_threshold: u32,
    /// Initial cool-down, in virtual milliseconds.
    pub cooldown_ms: u64,
    /// Cool-down multiplier applied on each re-open from half-open.
    pub cooldown_factor: u32,
    /// Ceiling on the escalated cool-down.
    pub max_cooldown_ms: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            trip_threshold: 3,
            cooldown_ms: 30_000,
            cooldown_factor: 4,
            max_cooldown_ms: 600_000,
        }
    }
}

impl BreakerPolicy {
    /// A breaker that never trips (supervision without containment).
    pub fn disabled() -> Self {
        BreakerPolicy {
            trip_threshold: u32::MAX,
            ..BreakerPolicy::default()
        }
    }
}

/// Breaker state, exposed for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; counting consecutive trap-class failures.
    Closed {
        /// Consecutive trap-class rounds seen so far.
        consecutive_traps: u32,
    },
    /// Tripped: rounds are skipped until the cool-down is paid down.
    Open {
        /// Virtual milliseconds of cool-down still unpaid.
        remaining_ms: u64,
        /// The full cool-down this open period started with (basis for
        /// escalation if the eventual probe fails).
        cooldown_ms: u64,
    },
    /// Cool-down paid: the next round is a probe.
    HalfOpen {
        /// The cool-down that was just paid (escalation basis).
        cooldown_ms: u64,
    },
}

/// What the breaker allows for the next round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the round. `wait_ms` of residual cool-down must first be paid by
    /// advancing the round's virtual clock; `probe` marks a half-open trial.
    Proceed {
        /// Residual cool-down to pay before touching the host.
        wait_ms: u64,
        /// Whether this round is a half-open probe.
        probe: bool,
    },
    /// Skip the round entirely and record a [`CrawlError::CircuitOpen`]
    /// loss. The round's time slot is forfeited against the cool-down.
    Skip,
}

/// The deterministic closed → open → half-open breaker for one host.
#[derive(Debug, Clone)]
pub struct HostBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
}

impl HostBreaker {
    /// A fresh (closed) breaker.
    pub fn new(policy: BreakerPolicy) -> Self {
        HostBreaker {
            policy,
            state: BreakerState::Closed {
                consecutive_traps: 0,
            },
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Decide the next round. `slot_ms` is the round's full time budget (the
    /// watchdog allowance): an open breaker whose remaining cool-down fits
    /// in the slot goes half-open and the round proceeds as a probe after
    /// waiting out the remainder; otherwise the round is skipped and the
    /// slot is paid against the cool-down.
    pub fn admit(&mut self, slot_ms: u64) -> Admission {
        match self.state {
            BreakerState::Closed { .. } => Admission::Proceed {
                wait_ms: 0,
                probe: false,
            },
            BreakerState::HalfOpen { .. } => Admission::Proceed {
                wait_ms: 0,
                probe: true,
            },
            BreakerState::Open {
                remaining_ms,
                cooldown_ms,
            } => {
                if remaining_ms <= slot_ms {
                    self.state = BreakerState::HalfOpen { cooldown_ms };
                    Admission::Proceed {
                        wait_ms: remaining_ms,
                        probe: true,
                    }
                } else {
                    self.state = BreakerState::Open {
                        remaining_ms: remaining_ms - slot_ms,
                        cooldown_ms,
                    };
                    Admission::Skip
                }
            }
        }
    }

    /// Record the outcome of an admitted (non-skipped) round.
    pub fn observe(&mut self, error: Option<CrawlError>) {
        let trap = matches!(error, Some(CrawlError::ScriptBudget));
        match self.state {
            BreakerState::Closed { consecutive_traps } => {
                if !trap {
                    self.state = BreakerState::Closed {
                        consecutive_traps: 0,
                    };
                } else if consecutive_traps + 1 >= self.policy.trip_threshold {
                    self.state = BreakerState::Open {
                        remaining_ms: self.policy.cooldown_ms,
                        cooldown_ms: self.policy.cooldown_ms,
                    };
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_traps: consecutive_traps + 1,
                    };
                }
            }
            BreakerState::HalfOpen { cooldown_ms } => {
                if trap {
                    let next = cooldown_ms
                        .saturating_mul(u64::from(self.policy.cooldown_factor))
                        .min(self.policy.max_cooldown_ms);
                    self.state = BreakerState::Open {
                        remaining_ms: next,
                        cooldown_ms: next,
                    };
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_traps: 0,
                    };
                }
            }
            // Skipped rounds are never observed; nothing ran while open.
            BreakerState::Open { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BreakerPolicy {
        BreakerPolicy {
            trip_threshold: 2,
            cooldown_ms: 30_000,
            cooldown_factor: 4,
            max_cooldown_ms: 100_000,
        }
    }

    const SLOT: u64 = 36_000;

    fn trap() -> Option<CrawlError> {
        Some(CrawlError::ScriptBudget)
    }

    #[test]
    fn opens_after_consecutive_traps() {
        let mut b = HostBreaker::new(policy());
        assert_eq!(
            b.admit(SLOT),
            Admission::Proceed {
                wait_ms: 0,
                probe: false
            }
        );
        b.observe(trap());
        assert_eq!(
            b.state(),
            BreakerState::Closed {
                consecutive_traps: 1
            }
        );
        b.admit(SLOT);
        b.observe(trap());
        assert_eq!(
            b.state(),
            BreakerState::Open {
                remaining_ms: 30_000,
                cooldown_ms: 30_000
            }
        );
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = HostBreaker::new(policy());
        b.admit(SLOT);
        b.observe(trap());
        b.admit(SLOT);
        b.observe(None);
        b.admit(SLOT);
        b.observe(trap());
        // One success between two traps: still closed.
        assert_eq!(
            b.state(),
            BreakerState::Closed {
                consecutive_traps: 1
            }
        );
    }

    #[test]
    fn non_trap_faults_do_not_trip() {
        let mut b = HostBreaker::new(policy());
        for _ in 0..5 {
            b.admit(SLOT);
            b.observe(Some(CrawlError::Stall));
        }
        assert_eq!(
            b.state(),
            BreakerState::Closed {
                consecutive_traps: 0
            }
        );
    }

    #[test]
    fn affordable_cooldown_goes_half_open_with_a_wait() {
        let mut b = HostBreaker::new(policy());
        b.admit(SLOT);
        b.observe(trap());
        b.admit(SLOT);
        b.observe(trap()); // Open { 30_000 }
        assert_eq!(
            b.admit(SLOT),
            Admission::Proceed {
                wait_ms: 30_000,
                probe: true
            }
        );
        assert_eq!(
            b.state(),
            BreakerState::HalfOpen {
                cooldown_ms: 30_000
            }
        );
    }

    #[test]
    fn probe_success_closes() {
        let mut b = HostBreaker::new(policy());
        b.admit(SLOT);
        b.observe(trap());
        b.admit(SLOT);
        b.observe(trap());
        b.admit(SLOT); // half-open probe
        b.observe(None);
        assert_eq!(
            b.state(),
            BreakerState::Closed {
                consecutive_traps: 0
            }
        );
    }

    #[test]
    fn probe_failure_escalates_cooldown_capped() {
        let mut b = HostBreaker::new(policy());
        b.admit(SLOT);
        b.observe(trap());
        b.admit(SLOT);
        b.observe(trap()); // Open { 30_000 }
        b.admit(SLOT); // probe
        b.observe(trap()); // escalate: 30_000 * 4 capped at 100_000
        assert_eq!(
            b.state(),
            BreakerState::Open {
                remaining_ms: 100_000,
                cooldown_ms: 100_000
            }
        );
    }

    #[test]
    fn unaffordable_cooldown_skips_and_pays_the_slot() {
        let mut b = HostBreaker::new(policy());
        b.admit(SLOT);
        b.observe(trap());
        b.admit(SLOT);
        b.observe(trap());
        b.admit(SLOT); // probe
        b.observe(trap()); // Open { 100_000 }
        assert_eq!(b.admit(SLOT), Admission::Skip); // 100_000 -> 64_000
        assert_eq!(b.admit(SLOT), Admission::Skip); // 64_000 -> 28_000
        assert_eq!(
            b.admit(SLOT),
            Admission::Proceed {
                wait_ms: 28_000,
                probe: true
            }
        );
    }

    #[test]
    fn disabled_policy_never_trips() {
        let mut b = HostBreaker::new(BreakerPolicy::disabled());
        for _ in 0..1_000 {
            assert_eq!(
                b.admit(SLOT),
                Admission::Proceed {
                    wait_ms: 0,
                    probe: false
                }
            );
            b.observe(trap());
        }
    }
}
