//! Crawl configuration.

use crate::retry::RetryPolicy;

/// A browser configuration the survey crawls with (§4.3 / §5.7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrowserProfile {
    /// Unmodified browser.
    Default,
    /// AdBlock Plus + Ghostery installed (the paper's "blocking" case).
    Blocking,
    /// AdBlock Plus only (Fig. 7 x-axis).
    AdblockOnly,
    /// Ghostery only (Fig. 7 y-axis).
    GhosteryOnly,
}

impl BrowserProfile {
    /// Label used in logs and seed derivation.
    pub fn label(self) -> &'static str {
        match self {
            BrowserProfile::Default => "default",
            BrowserProfile::Blocking => "blocking",
            BrowserProfile::AdblockOnly => "adblock-only",
            BrowserProfile::GhosteryOnly => "ghostery-only",
        }
    }
}

/// Survey parameters; defaults mirror the paper's §4.3.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Measurement rounds per profile (paper: 5 + 5).
    pub rounds_per_profile: u32,
    /// Pages interacted with per site per round (paper: 13 = 1 + 3 + 9).
    pub pages_per_site: usize,
    /// Links followed per visited page (paper: 3, breadth-first).
    pub fanout: usize,
    /// Virtual interaction budget per page (paper: 30 s).
    pub page_budget_ms: u64,
    /// Which browser configurations to crawl.
    pub profiles: Vec<BrowserProfile>,
    /// Worker threads (sites crawl independently).
    pub threads: usize,
    /// Master crawl seed (independent of the web's generation seed).
    pub seed: u64,
    /// Retry policy for transient page-load failures.
    pub retry: RetryPolicy,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            rounds_per_profile: 5,
            pages_per_site: 13,
            fanout: 3,
            page_budget_ms: 30_000,
            profiles: vec![BrowserProfile::Default, BrowserProfile::Blocking],
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            seed: 0xC4A11,
            retry: RetryPolicy::default(),
        }
    }
}

impl CrawlConfig {
    /// A scaled-down config for tests and examples: fewer rounds/pages and
    /// shorter budgets, same structure.
    pub fn quick(seed: u64) -> Self {
        CrawlConfig {
            rounds_per_profile: 2,
            pages_per_site: 4,
            fanout: 3,
            page_budget_ms: 8_000,
            profiles: vec![BrowserProfile::Default, BrowserProfile::Blocking],
            threads: 2,
            seed,
            retry: RetryPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CrawlConfig::default();
        assert_eq!(c.rounds_per_profile, 5);
        assert_eq!(c.pages_per_site, 13);
        assert_eq!(c.fanout, 3);
        assert_eq!(c.page_budget_ms, 30_000);
        assert_eq!(c.profiles.len(), 2);
    }

    #[test]
    fn labels_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<_> = [
            BrowserProfile::Default,
            BrowserProfile::Blocking,
            BrowserProfile::AdblockOnly,
            BrowserProfile::GhosteryOnly,
        ]
        .iter()
        .map(|p| p.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
