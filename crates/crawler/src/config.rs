//! Crawl configuration.

use crate::breaker::BreakerPolicy;
use crate::retry::RetryPolicy;
use bfu_browser::BrowserConfig;

/// A browser configuration the survey crawls with (§4.3 / §5.7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrowserProfile {
    /// Unmodified browser.
    Default,
    /// AdBlock Plus + Ghostery installed (the paper's "blocking" case).
    Blocking,
    /// AdBlock Plus only (Fig. 7 x-axis).
    AdblockOnly,
    /// Ghostery only (Fig. 7 y-axis).
    GhosteryOnly,
}

impl BrowserProfile {
    /// Label used in logs and seed derivation.
    pub fn label(self) -> &'static str {
        match self {
            BrowserProfile::Default => "default",
            BrowserProfile::Blocking => "blocking",
            BrowserProfile::AdblockOnly => "adblock-only",
            BrowserProfile::GhosteryOnly => "ghostery-only",
        }
    }

    /// Stable one-byte tag used by the on-disk dataset encoding.
    pub fn tag(self) -> u8 {
        match self {
            BrowserProfile::Default => 0,
            BrowserProfile::Blocking => 1,
            BrowserProfile::AdblockOnly => 2,
            BrowserProfile::GhosteryOnly => 3,
        }
    }

    /// Inverse of [`BrowserProfile::tag`].
    pub fn from_tag(tag: u8) -> Option<BrowserProfile> {
        Some(match tag {
            0 => BrowserProfile::Default,
            1 => BrowserProfile::Blocking,
            2 => BrowserProfile::AdblockOnly,
            3 => BrowserProfile::GhosteryOnly,
            _ => return None,
        })
    }

    /// Inverse of [`BrowserProfile::label`], for manifest parsing.
    pub fn from_label(label: &str) -> Option<BrowserProfile> {
        Some(match label {
            "default" => BrowserProfile::Default,
            "blocking" => BrowserProfile::Blocking,
            "adblock-only" => BrowserProfile::AdblockOnly,
            "ghostery-only" => BrowserProfile::GhosteryOnly,
            _ => return None,
        })
    }
}

/// Survey parameters; defaults mirror the paper's §4.3.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Measurement rounds per profile (paper: 5 + 5).
    pub rounds_per_profile: u32,
    /// Pages interacted with per site per round (paper: 13 = 1 + 3 + 9).
    pub pages_per_site: usize,
    /// Links followed per visited page (paper: 3, breadth-first).
    pub fanout: usize,
    /// Virtual interaction budget per page (paper: 30 s).
    pub page_budget_ms: u64,
    /// Which browser configurations to crawl.
    pub profiles: Vec<BrowserProfile>,
    /// Worker threads (sites crawl independently).
    pub threads: usize,
    /// Master crawl seed (independent of the web's generation seed).
    pub seed: u64,
    /// Retry policy for transient page-load failures.
    pub retry: RetryPolicy,
    /// Per-host circuit-breaker policy for trap-class script faults.
    pub breaker: BreakerPolicy,
    /// Browser engine configuration (script resource budgets, subresource
    /// caps) every worker crawls with.
    pub browser: BrowserConfig,
    /// Share one content-addressed compilation cache (parsed scripts +
    /// frame-script lists) across every page, site, round, profile, and
    /// worker thread. Pure memoization: measurements are identical on or
    /// off, so — like `threads` — this is excluded from the fingerprint.
    pub compile_cache: bool,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            rounds_per_profile: 5,
            pages_per_site: 13,
            fanout: 3,
            page_budget_ms: 30_000,
            profiles: vec![BrowserProfile::Default, BrowserProfile::Blocking],
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            seed: 0xC4A11,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            browser: BrowserConfig::default(),
            compile_cache: true,
        }
    }
}

impl CrawlConfig {
    /// Absorb every measurement-relevant field into `f`. Thread count and
    /// the compilation-cache toggle are deliberately excluded: results are
    /// invariant to both, so a dataset crawled on 2 threads (or with the
    /// cache off) resumes cleanly on 16 (or with it on).
    pub fn fingerprint_into(&self, f: &mut bfu_util::Fnv64) {
        f.write(b"crawl-config-v2");
        f.write_u64(u64::from(self.rounds_per_profile));
        f.write_u64(self.pages_per_site as u64);
        f.write_u64(self.fanout as u64);
        f.write_u64(self.page_budget_ms);
        f.write_u64(self.profiles.len() as u64);
        for p in &self.profiles {
            f.write_str(p.label());
        }
        f.write_u64(self.seed);
        f.write_u64(u64::from(self.retry.max_attempts));
        f.write_u64(self.retry.base_backoff_ms);
        f.write_u64(self.retry.max_backoff_ms);
        f.write_u64(u64::from(self.breaker.trip_threshold));
        f.write_u64(self.breaker.cooldown_ms);
        f.write_u64(u64::from(self.breaker.cooldown_factor));
        f.write_u64(self.breaker.max_cooldown_ms);
        f.write_u64(self.browser.script_fuel);
        f.write_u64(self.browser.callback_fuel);
        f.write_u64(self.browser.max_script_bytes as u64);
        f.write_u64(self.browser.max_heap_cells as u64);
        f.write_u64(self.browser.max_string_bytes);
        f.write_u64(u64::from(self.browser.max_call_depth));
        f.write_u64(u64::from(self.browser.max_timer_callbacks));
        f.write_u64(u64::from(self.browser.instrument));
        f.write_u64(self.browser.max_subresources as u64);
        // `threads`, `compile_cache`, and `browser.engine` intentionally
        // absent: layout, memoization, and execution strategy, not data —
        // both engines produce bit-identical measurements.
    }

    /// A scaled-down config for tests and examples: fewer rounds/pages and
    /// shorter budgets, same structure.
    pub fn quick(seed: u64) -> Self {
        CrawlConfig {
            rounds_per_profile: 2,
            pages_per_site: 4,
            fanout: 3,
            page_budget_ms: 8_000,
            profiles: vec![BrowserProfile::Default, BrowserProfile::Blocking],
            threads: 2,
            seed,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            browser: BrowserConfig::default(),
            compile_cache: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CrawlConfig::default();
        assert_eq!(c.rounds_per_profile, 5);
        assert_eq!(c.pages_per_site, 13);
        assert_eq!(c.fanout, 3);
        assert_eq!(c.page_budget_ms, 30_000);
        assert_eq!(c.profiles.len(), 2);
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_measurement_fields() {
        let digest = |c: &CrawlConfig| {
            let mut f = bfu_util::Fnv64::new();
            c.fingerprint_into(&mut f);
            f.finish()
        };
        let base = CrawlConfig::quick(9);
        let mut threads = base.clone();
        threads.threads = base.threads + 6;
        assert_eq!(
            digest(&base),
            digest(&threads),
            "threads are layout, not data"
        );
        let mut cache = base.clone();
        cache.compile_cache = !base.compile_cache;
        assert_eq!(
            digest(&base),
            digest(&cache),
            "the compile cache is memoization, not data"
        );
        let mut engine = base.clone();
        engine.browser.engine = match base.browser.engine {
            bfu_browser::Engine::TreeWalk => bfu_browser::Engine::Vm,
            bfu_browser::Engine::Vm => bfu_browser::Engine::TreeWalk,
        };
        assert_eq!(
            digest(&base),
            digest(&engine),
            "the engine is execution strategy, not data"
        );
        let mut rounds = base.clone();
        rounds.rounds_per_profile += 1;
        assert_ne!(digest(&base), digest(&rounds));
        let mut seed = base.clone();
        seed.seed ^= 1;
        assert_ne!(digest(&base), digest(&seed));
        let mut retry = base.clone();
        retry.retry.max_attempts += 1;
        assert_ne!(digest(&base), digest(&retry));
        let mut brk = base.clone();
        brk.breaker.cooldown_ms += 1;
        assert_ne!(digest(&base), digest(&brk));
        let mut brw = base.clone();
        brw.browser.script_fuel += 1;
        assert_ne!(digest(&base), digest(&brw));
    }

    #[test]
    fn profile_tags_and_labels_roundtrip() {
        for p in [
            BrowserProfile::Default,
            BrowserProfile::Blocking,
            BrowserProfile::AdblockOnly,
            BrowserProfile::GhosteryOnly,
        ] {
            assert_eq!(BrowserProfile::from_tag(p.tag()), Some(p));
            assert_eq!(BrowserProfile::from_label(p.label()), Some(p));
        }
        assert_eq!(BrowserProfile::from_tag(9), None);
        assert_eq!(BrowserProfile::from_label("nope"), None);
    }

    #[test]
    fn labels_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<_> = [
            BrowserProfile::Default,
            BrowserProfile::Blocking,
            BrowserProfile::AdblockOnly,
            BrowserProfile::GhosteryOnly,
        ]
        .iter()
        .map(|p| p.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
