//! The measurement dataset every analysis consumes.
//!
//! Raw crawl output: per site, per browser profile, per round — the feature
//! log the instrumented browser produced, plus enough metadata (traffic
//! weights, failures, page counts) for Tables 1/3 and Figs. 3-9.

use crate::config::BrowserProfile;
use bfu_browser::FeatureLog;
use bfu_webgen::SiteId;
use bfu_webidl::{FeatureId, FeatureRegistry, StandardId};
use std::collections::HashSet;

/// One measurement round of one site under one profile.
#[derive(Debug, Clone)]
pub struct RoundMeasurement {
    /// Round index (0-based).
    pub round: u32,
    /// Merged feature log across the round's pages.
    pub log: FeatureLog,
    /// Pages successfully interacted with.
    pub pages_visited: u32,
    /// Virtual interaction time spent, in ms.
    pub interaction_ms: u64,
    /// Whether the home page failed to load this round.
    pub failed: bool,
}

/// All measurements for one site.
#[derive(Debug, Clone)]
pub struct SiteMeasurement {
    /// Site identity.
    pub site: SiteId,
    /// Registrable domain.
    pub domain: String,
    /// Normalized traffic share (for Fig. 5 weighting).
    pub traffic_weight: f64,
    /// Rounds per profile, in config order.
    pub rounds: Vec<(BrowserProfile, Vec<RoundMeasurement>)>,
}

impl SiteMeasurement {
    /// Rounds for one profile, if crawled.
    pub fn rounds_for(&self, profile: BrowserProfile) -> Option<&[RoundMeasurement]> {
        self.rounds
            .iter()
            .find(|(p, _)| *p == profile)
            .map(|(_, r)| r.as_slice())
    }

    /// Whether the site was measurable under a profile (any round's home
    /// page loaded).
    pub fn measured(&self, profile: BrowserProfile) -> bool {
        self.rounds_for(profile)
            .is_some_and(|rs| rs.iter().any(|r| !r.failed))
    }

    /// Union of features observed across all rounds of a profile.
    pub fn features_used(&self, profile: BrowserProfile) -> HashSet<FeatureId> {
        let mut out = HashSet::new();
        if let Some(rounds) = self.rounds_for(profile) {
            for r in rounds {
                out.extend(r.log.features());
            }
        }
        out
    }

    /// Union of standards observed across all rounds of a profile.
    pub fn standards_used(
        &self,
        profile: BrowserProfile,
        registry: &FeatureRegistry,
    ) -> HashSet<StandardId> {
        self.features_used(profile)
            .into_iter()
            .map(|f| registry.standard_of(f))
            .collect()
    }

    /// Standards observed in rounds `0..=round` of a profile (for Table 3's
    /// convergence analysis).
    pub fn standards_through_round(
        &self,
        profile: BrowserProfile,
        round: u32,
        registry: &FeatureRegistry,
    ) -> HashSet<StandardId> {
        let mut out = HashSet::new();
        if let Some(rounds) = self.rounds_for(profile) {
            for r in rounds.iter().filter(|r| r.round <= round) {
                out.extend(r.log.features().into_iter().map(|f| registry.standard_of(f)));
            }
        }
        out
    }

    /// Total invocations across all profiles and rounds.
    pub fn total_invocations(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|(_, rs)| rs)
            .map(|r| r.log.total_invocations())
            .sum()
    }
}

/// The whole survey's output.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Profiles crawled, in order.
    pub profiles: Vec<BrowserProfile>,
    /// Rounds per profile.
    pub rounds_per_profile: u32,
    /// One entry per ranked site.
    pub sites: Vec<SiteMeasurement>,
}

impl Dataset {
    /// Sites where the default-profile crawl succeeded (the paper's 9,733).
    pub fn measured_sites(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.measured(BrowserProfile::Default))
            .count()
    }

    /// Total pages visited across everything (Table 1).
    pub fn total_pages(&self) -> u64 {
        self.sites
            .iter()
            .flat_map(|s| &s.rounds)
            .flat_map(|(_, rs)| rs)
            .map(|r| u64::from(r.pages_visited))
            .sum()
    }

    /// Total feature invocations recorded (Table 1).
    pub fn total_invocations(&self) -> u64 {
        self.sites.iter().map(SiteMeasurement::total_invocations).sum()
    }

    /// Total virtual interaction time in ms (Table 1's "480 days").
    pub fn total_interaction_ms(&self) -> u64 {
        self.sites
            .iter()
            .flat_map(|s| &s.rounds)
            .flat_map(|(_, rs)| rs)
            .map(|r| r.interaction_ms)
            .sum()
    }

    /// Number of sites using `feature` under `profile`.
    pub fn sites_using_feature(&self, feature: FeatureId, profile: BrowserProfile) -> usize {
        self.sites
            .iter()
            .filter(|s| s.features_used(profile).contains(&feature))
            .count()
    }

    /// Number of sites using ≥1 feature of `standard` under `profile`.
    pub fn sites_using_standard(
        &self,
        standard: StandardId,
        profile: BrowserProfile,
        registry: &FeatureRegistry,
    ) -> usize {
        self.sites
            .iter()
            .filter(|s| s.standards_used(profile, registry).contains(&standard))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(features: &[u32]) -> FeatureLog {
        let mut log = FeatureLog::new();
        for &f in features {
            log.record(FeatureId::new(f));
        }
        log
    }

    fn measurement() -> SiteMeasurement {
        SiteMeasurement {
            site: SiteId::new(0),
            domain: "a.test".into(),
            traffic_weight: 0.1,
            rounds: vec![
                (
                    BrowserProfile::Default,
                    vec![
                        RoundMeasurement {
                            round: 0,
                            log: log_with(&[1, 2]),
                            pages_visited: 13,
                            interaction_ms: 390_000,
                            failed: false,
                        },
                        RoundMeasurement {
                            round: 1,
                            log: log_with(&[2, 3]),
                            pages_visited: 13,
                            interaction_ms: 390_000,
                            failed: false,
                        },
                    ],
                ),
                (
                    BrowserProfile::Blocking,
                    vec![RoundMeasurement {
                        round: 0,
                        log: log_with(&[2]),
                        pages_visited: 13,
                        interaction_ms: 390_000,
                        failed: false,
                    }],
                ),
            ],
        }
    }

    #[test]
    fn features_union_across_rounds() {
        let m = measurement();
        let used = m.features_used(BrowserProfile::Default);
        assert_eq!(used.len(), 3);
        assert!(used.contains(&FeatureId::new(3)));
        assert_eq!(m.features_used(BrowserProfile::Blocking).len(), 1);
        assert!(m.features_used(BrowserProfile::AdblockOnly).is_empty());
    }

    #[test]
    fn dataset_aggregates() {
        let ds = Dataset {
            profiles: vec![BrowserProfile::Default, BrowserProfile::Blocking],
            rounds_per_profile: 2,
            sites: vec![measurement()],
        };
        assert_eq!(ds.measured_sites(), 1);
        assert_eq!(ds.total_pages(), 39);
        assert_eq!(ds.total_invocations(), 5);
        assert_eq!(ds.total_interaction_ms(), 3 * 390_000);
        assert_eq!(ds.sites_using_feature(FeatureId::new(2), BrowserProfile::Default), 1);
        assert_eq!(ds.sites_using_feature(FeatureId::new(9), BrowserProfile::Default), 0);
    }

    #[test]
    fn failed_rounds_dont_count_as_measured() {
        let m = SiteMeasurement {
            site: SiteId::new(1),
            domain: "dead.test".into(),
            traffic_weight: 0.0,
            rounds: vec![(
                BrowserProfile::Default,
                vec![RoundMeasurement {
                    round: 0,
                    log: FeatureLog::new(),
                    pages_visited: 0,
                    interaction_ms: 0,
                    failed: true,
                }],
            )],
        };
        assert!(!m.measured(BrowserProfile::Default));
    }

    #[test]
    fn standards_through_round_grows_monotonically() {
        let registry = FeatureRegistry::build();
        let m = measurement();
        let r0 = m.standards_through_round(BrowserProfile::Default, 0, &registry);
        let r1 = m.standards_through_round(BrowserProfile::Default, 1, &registry);
        assert!(r0.is_subset(&r1));
    }
}
