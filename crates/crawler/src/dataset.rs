//! The measurement dataset every analysis consumes.
//!
//! Raw crawl output: per site, per browser profile, per round — the feature
//! log the instrumented browser produced, plus enough metadata (traffic
//! weights, failures, page counts) for Tables 1/3 and Figs. 3-9.

use crate::config::BrowserProfile;
use crate::error::CrawlError;
use bfu_browser::FeatureLog;
use bfu_util::Fnv64;
use bfu_webgen::SiteId;
use bfu_webidl::{FeatureId, FeatureRegistry, StandardId};
use std::collections::HashSet;

/// One measurement round of one site under one profile.
#[derive(Debug, Clone)]
pub struct RoundMeasurement {
    /// Round index (0-based).
    pub round: u32,
    /// Merged feature log across the round's pages.
    pub log: FeatureLog,
    /// Pages successfully interacted with.
    pub pages_visited: u32,
    /// Virtual interaction time spent, in ms.
    pub interaction_ms: u64,
    /// Why the round measured nothing, or `None` if it did.
    pub error: Option<CrawlError>,
    /// Page-load attempts made across the round.
    pub attempts: u32,
    /// Retries among those attempts.
    pub retries: u32,
    /// Virtual ms paid in retry backoff.
    pub backoff_ms: u64,
    /// Scripts that tripped the step budget or the script-size cap.
    pub script_budget_errors: u32,
    /// Scripts that tripped the heap-cell or string-byte budget.
    pub script_heap_errors: u32,
    /// Scripts that tripped the call-depth budget.
    pub script_depth_errors: u32,
}

impl RoundMeasurement {
    /// Whether the round failed to measure the site at all.
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }

    /// An empty, healthy round — test/builder convenience.
    pub fn empty(round: u32) -> Self {
        RoundMeasurement {
            round,
            log: FeatureLog::new(),
            pages_visited: 0,
            interaction_ms: 0,
            error: None,
            attempts: 0,
            retries: 0,
            backoff_ms: 0,
            script_budget_errors: 0,
            script_heap_errors: 0,
            script_depth_errors: 0,
        }
    }

    /// A round lost to `error`, with nothing measured.
    pub fn failed_with(round: u32, error: CrawlError) -> Self {
        RoundMeasurement {
            error: Some(error),
            ..RoundMeasurement::empty(round)
        }
    }
}

/// How one site fared across the whole crawl.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteOutcome {
    /// At least one round measured the site.
    Completed,
    /// Every round failed; the dominant failure class.
    Failed(CrawlError),
    /// The crawl worker panicked on this site; nothing was measured.
    Panicked,
}

impl SiteOutcome {
    /// Derive the outcome from a site's rounds: completed if any round
    /// measured, otherwise the most frequent failure class (ties break
    /// toward the lower class index). Sites with no rounds at all count as
    /// completed vacuously — panics are recorded explicitly by the survey.
    pub fn from_rounds(rounds: &[(BrowserProfile, Vec<RoundMeasurement>)]) -> SiteOutcome {
        let mut counts = [0usize; CrawlError::CLASS_COUNT];
        let mut first: [Option<CrawlError>; CrawlError::CLASS_COUNT] =
            [None; CrawlError::CLASS_COUNT];
        let mut any_round = false;
        for r in rounds.iter().flat_map(|(_, rs)| rs) {
            any_round = true;
            match r.error {
                None => return SiteOutcome::Completed,
                Some(e) => {
                    let ix = e.class_ix();
                    counts[ix] += 1;
                    first[ix].get_or_insert(e);
                }
            }
        }
        if !any_round {
            return SiteOutcome::Completed;
        }
        let mut best = 0;
        for ix in 1..CrawlError::CLASS_COUNT {
            if counts[ix] > counts[best] {
                best = ix;
            }
        }
        SiteOutcome::Failed(first[best].unwrap_or(CrawlError::DeadHost))
    }
}

/// All measurements for one site.
#[derive(Debug, Clone)]
pub struct SiteMeasurement {
    /// Site identity.
    pub site: SiteId,
    /// Registrable domain.
    pub domain: String,
    /// Normalized traffic share (for Fig. 5 weighting).
    pub traffic_weight: f64,
    /// How the site fared overall (completed / failed / panicked).
    pub outcome: SiteOutcome,
    /// Rounds per profile, in config order.
    pub rounds: Vec<(BrowserProfile, Vec<RoundMeasurement>)>,
}

impl SiteMeasurement {
    /// Rounds for one profile, if crawled.
    pub fn rounds_for(&self, profile: BrowserProfile) -> Option<&[RoundMeasurement]> {
        self.rounds
            .iter()
            .find(|(p, _)| *p == profile)
            .map(|(_, r)| r.as_slice())
    }

    /// Whether the site was measurable under a profile (any round's home
    /// page loaded).
    pub fn measured(&self, profile: BrowserProfile) -> bool {
        self.rounds_for(profile)
            .is_some_and(|rs| rs.iter().any(|r| !r.failed()))
    }

    /// Union of features observed across all rounds of a profile.
    pub fn features_used(&self, profile: BrowserProfile) -> HashSet<FeatureId> {
        let mut out = HashSet::new();
        if let Some(rounds) = self.rounds_for(profile) {
            for r in rounds {
                out.extend(r.log.features());
            }
        }
        out
    }

    /// Union of standards observed across all rounds of a profile.
    pub fn standards_used(
        &self,
        profile: BrowserProfile,
        registry: &FeatureRegistry,
    ) -> HashSet<StandardId> {
        self.features_used(profile)
            .into_iter()
            .map(|f| registry.standard_of(f))
            .collect()
    }

    /// Standards observed in rounds `0..=round` of a profile (for Table 3's
    /// convergence analysis).
    pub fn standards_through_round(
        &self,
        profile: BrowserProfile,
        round: u32,
        registry: &FeatureRegistry,
    ) -> HashSet<StandardId> {
        let mut out = HashSet::new();
        if let Some(rounds) = self.rounds_for(profile) {
            for r in rounds.iter().filter(|r| r.round <= round) {
                out.extend(
                    r.log
                        .features()
                        .into_iter()
                        .map(|f| registry.standard_of(f)),
                );
            }
        }
        out
    }

    /// Total invocations across all profiles and rounds.
    pub fn total_invocations(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|(_, rs)| rs)
            .map(|r| r.log.total_invocations())
            .sum()
    }
}

/// Survey-level compilation-cache totals, read from the shared cache's
/// counters after the crawl. Diagnostics only: the totals are deterministic
/// for a fixed visit plan (misses count unique sources exactly — see
/// `bfu_script::cache`), but they describe *effort saved*, not anything
/// measured, so they are excluded from [`Dataset::fingerprint`]. A resumed
/// crawl that skipped already-stored sites reports smaller totals than an
/// uninterrupted one while fingerprinting identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTotals {
    /// Whether the survey ran with a shared compilation cache at all.
    pub enabled: bool,
    /// Script probes that reused a cached artifact (AST or bytecode chunk,
    /// whichever family the engine consulted).
    pub script_hits: u64,
    /// Script probes that parsed (and, under the VM, compiled) fresh source.
    pub script_misses: u64,
    /// Script probes that replayed a cached parse or compile error.
    pub script_negative_hits: u64,
    /// Distinct script sources seen (== successful + failed parses).
    pub unique_scripts: u64,
    /// Distinct iframe bodies whose script lists were extracted.
    pub unique_frames: u64,
    /// Bytecode-chunk probes that reused a compiled chunk.
    pub chunk_hits: u64,
    /// Bytecode-chunk probes that compiled fresh source.
    pub chunk_misses: u64,
    /// Bytecode-chunk probes that replayed a cached parse/compile error.
    pub chunk_negative_hits: u64,
    /// Distinct sources lowered to bytecode (== chunk compiles attempted).
    pub unique_chunks: u64,
}

impl CacheTotals {
    /// Fraction of script probes served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.script_hits + self.script_misses + self.script_negative_hits;
        if total == 0 {
            return 0.0;
        }
        (self.script_hits + self.script_negative_hits) as f64 / total as f64
    }
}

/// The whole survey's output.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Profiles crawled, in order.
    pub profiles: Vec<BrowserProfile>,
    /// Rounds per profile.
    pub rounds_per_profile: u32,
    /// One entry per ranked site.
    pub sites: Vec<SiteMeasurement>,
    /// Compilation-cache totals for the run (never fingerprinted).
    pub cache: CacheTotals,
}

impl Dataset {
    /// Sites where the default-profile crawl succeeded (the paper's 9,733).
    pub fn measured_sites(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.measured(BrowserProfile::Default))
            .count()
    }

    /// Total pages visited across everything (Table 1).
    pub fn total_pages(&self) -> u64 {
        self.sites
            .iter()
            .flat_map(|s| &s.rounds)
            .flat_map(|(_, rs)| rs)
            .map(|r| u64::from(r.pages_visited))
            .sum()
    }

    /// Total feature invocations recorded (Table 1).
    pub fn total_invocations(&self) -> u64 {
        self.sites
            .iter()
            .map(SiteMeasurement::total_invocations)
            .sum()
    }

    /// Total virtual interaction time in ms (Table 1's "480 days").
    pub fn total_interaction_ms(&self) -> u64 {
        self.sites
            .iter()
            .flat_map(|s| &s.rounds)
            .flat_map(|(_, rs)| rs)
            .map(|r| r.interaction_ms)
            .sum()
    }

    /// Number of sites using `feature` under `profile`.
    pub fn sites_using_feature(&self, feature: FeatureId, profile: BrowserProfile) -> usize {
        self.sites
            .iter()
            .filter(|s| s.features_used(profile).contains(&feature))
            .count()
    }

    /// Number of sites using ≥1 feature of `standard` under `profile`.
    pub fn sites_using_standard(
        &self,
        standard: StandardId,
        profile: BrowserProfile,
        registry: &FeatureRegistry,
    ) -> usize {
        self.sites
            .iter()
            .filter(|s| s.standards_used(profile, registry).contains(&standard))
            .count()
    }

    /// Supervision summary: per-class loss counts and retry effort — the
    /// paper's "267 unreachable domains", classified.
    pub fn health(&self) -> CrawlHealth {
        let mut health = CrawlHealth {
            sites_total: self.sites.len(),
            cache: self.cache,
            ..CrawlHealth::default()
        };
        for s in &self.sites {
            match s.outcome {
                SiteOutcome::Completed => health.sites_completed += 1,
                SiteOutcome::Failed(e) => {
                    health.sites_failed += 1;
                    health.failures_by_class[e.class_ix()] += 1;
                }
                SiteOutcome::Panicked => health.sites_panicked += 1,
            }
            for r in s.rounds.iter().flat_map(|(_, rs)| rs) {
                health.total_attempts += u64::from(r.attempts);
                health.total_retries += u64::from(r.retries);
                health.total_backoff_ms += r.backoff_ms;
                health.total_script_budget_errors += u64::from(r.script_budget_errors);
                health.total_script_heap_errors += u64::from(r.script_heap_errors);
                health.total_script_depth_errors += u64::from(r.script_depth_errors);
                if r.error == Some(CrawlError::CircuitOpen) {
                    health.rounds_circuit_skipped += 1;
                }
            }
        }
        health
    }

    /// Order-sensitive digest of every measurement in the dataset. Two
    /// crawls that measured the same things — same outcomes, same failure
    /// classes, same logs, same retry effort — fingerprint identically,
    /// which is how the determinism tests compare thread counts.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv64::new();
        f.write_u64(self.rounds_per_profile.into());
        f.write_u64(self.sites.len() as u64);
        for s in &self.sites {
            f.write(s.domain.as_bytes());
            f.write_u64(s.traffic_weight.to_bits());
            f.write_u64(match s.outcome {
                SiteOutcome::Completed => 0,
                SiteOutcome::Failed(e) => 1 + e.class_ix() as u64,
                SiteOutcome::Panicked => 0xFF,
            });
            for (profile, rounds) in &s.rounds {
                f.write(profile.label().as_bytes());
                for r in rounds {
                    f.write_u64(r.round.into());
                    f.write_u64(r.pages_visited.into());
                    f.write_u64(r.interaction_ms);
                    f.write_u64(r.error.map_or(0xFFFF, |e| e.class_ix() as u64));
                    f.write_u64(r.attempts.into());
                    f.write_u64(r.retries.into());
                    f.write_u64(r.backoff_ms);
                    f.write_u64(r.script_budget_errors.into());
                    f.write_u64(r.script_heap_errors.into());
                    f.write_u64(r.script_depth_errors.into());
                    for rec in r.log.records() {
                        f.write_u64(u64::from(rec.feature.raw()));
                        f.write_u64(rec.count);
                    }
                }
            }
        }
        f.finish()
    }
}

/// Lease accounting from a multi-worker survey fabric run. Zeroed (with
/// `enabled: false`) for single-process surveys. Like [`CacheTotals`] these
/// are *effort and loss* counters, not measurements: they describe how the
/// dataset was assembled, so they live in [`CrawlHealth`] and the provenance
/// sidecar but are excluded from [`Dataset::fingerprint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricTotals {
    /// Whether the dataset was assembled by the survey fabric at all.
    pub enabled: bool,
    /// Worker slots the fabric ran with.
    pub workers: u64,
    /// Leases the site list was partitioned into.
    pub leases_total: u64,
    /// Lease issues, counting reissues after reclamation.
    pub leases_issued: u64,
    /// Leases completed (publish accepted at the merge point).
    pub leases_completed: u64,
    /// Lease deadlines that expired on the virtual clock.
    pub leases_expired: u64,
    /// Expired leases reclaimed and returned to the pool (epoch bumped).
    pub leases_reclaimed: u64,
    /// Worker publishes fenced off for carrying a stale epoch or targeting
    /// a non-issued lease (zombie workers, duplicate issues, replays).
    pub publishes_fenced: u64,
    /// Workers that died mid-lease (their partial output was discarded and
    /// the lease re-crawled — never silently dropped sites).
    pub workers_died: u64,
    /// Records absorbed from worker staging shards into the canonical store.
    pub records_absorbed: u64,
    /// Coordinator elections won (CAS on the coordinator record), counting
    /// the initial election. Zero when the run used a static coordinator.
    pub elections_won: u64,
    /// Coordinator writes rejected by the generation fence — a deposed
    /// coordinator (or a zombie replay of one) tried to write after a
    /// standby took over.
    pub coordinators_deposed: u64,
}

/// Storage-backend op accounting for the run that assembled a dataset.
/// Zeroed (with `enabled: false`) for backends that don't count — LocalFs
/// and FaultFs report nothing; the object-store adapter fills every field.
/// Like [`FabricTotals`] these are effort counters describing *how* the
/// bytes moved, so they live in [`CrawlHealth`] and the provenance sidecar
/// but are excluded from [`Dataset::fingerprint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendTotals {
    /// Whether the backend reported op counters at all.
    pub enabled: bool,
    /// Whole-object puts acknowledged (every durable publish is one put).
    pub puts: u64,
    /// Whole-object gets served, counting visibility-retry re-reads.
    pub gets: u64,
    /// Object deletes issued.
    pub deletes: u64,
    /// Listings taken.
    pub lists: u64,
    /// Bytes written into the backend across all puts.
    pub bytes_in: u64,
    /// Bytes read out of the backend across all gets.
    pub bytes_out: u64,
    /// Extra attempts spent waiting out delayed visibility — a get/list
    /// that contradicted our own acknowledged writes and was re-issued.
    pub retries: u64,
    /// Read-after-write visibility checks that exhausted their retry
    /// budget without the backend converging.
    pub visibility_failures: u64,
    /// Conditional (compare-and-swap) puts attempted.
    pub cas_puts: u64,
    /// Conditional puts that lost their race (generation mismatch).
    pub cas_conflicts: u64,
    /// Logical operations issued over a network wire, when the object
    /// store was remote. Zero for local stores.
    pub remote_ops: u64,
    /// Wire-level request re-sends (dropped/stalled/damaged exchanges).
    pub remote_retries: u64,
    /// Connections (re-)established to the remote store.
    pub remote_reconnects: u64,
    /// Replica count behind the store, when it was replicated. Zero for
    /// single-copy stores — and the gate on every `replica_*` field below.
    pub replicas: u64,
    /// Mutations acknowledged at write quorum.
    pub replica_quorum_writes: u64,
    /// Reads that settled a generation at read quorum.
    pub replica_quorum_reads: u64,
    /// Lagging replicas caught up inline by a quorum read.
    pub replica_read_repairs: u64,
    /// Per-replica op failures absorbed by the quorum (the survived-fault
    /// count: each is one replica down or misbehaving at one op).
    pub replica_errors: u64,
    /// Compare-and-swap ops routed to a promoted replica because the
    /// deterministic primary was unreachable.
    pub replica_cas_promotions: u64,
    /// Objects copied by anti-entropy scrubs to heal lagging replicas.
    pub replica_anti_entropy_copies: u64,
}

/// Aggregate crawl-supervision statistics over a [`Dataset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrawlHealth {
    /// Sites attempted.
    pub sites_total: usize,
    /// Sites with at least one measured round.
    pub sites_completed: usize,
    /// Sites lost, every round failed.
    pub sites_failed: usize,
    /// Sites lost to worker panics.
    pub sites_panicked: usize,
    /// Lost sites per failure class, indexed by [`CrawlError::class_ix`].
    pub failures_by_class: [usize; CrawlError::CLASS_COUNT],
    /// Page-load attempts across the crawl.
    pub total_attempts: u64,
    /// Retries among those attempts.
    pub total_retries: u64,
    /// Virtual ms paid in retry backoff.
    pub total_backoff_ms: u64,
    /// Scripts that tripped the step budget or the script-size cap.
    pub total_script_budget_errors: u64,
    /// Scripts that tripped the heap-cell or string-byte budget.
    pub total_script_heap_errors: u64,
    /// Scripts that tripped the call-depth budget.
    pub total_script_depth_errors: u64,
    /// Rounds skipped because a host's circuit breaker was open.
    pub rounds_circuit_skipped: u64,
    /// Compilation-cache totals (zeroed when the cache was disabled).
    pub cache: CacheTotals,
    /// Survey-fabric lease totals (zeroed for single-process runs).
    /// [`Dataset::health`] cannot know them — the coordinator that drove
    /// the fabric fills them in before writing provenance.
    pub fabric: FabricTotals,
    /// Storage-backend op totals (zeroed for backends that don't count).
    /// Filled in by whoever holds the backend before writing provenance.
    pub backend: BackendTotals,
}

impl CrawlHealth {
    /// `(class name, lost sites)` pairs for every failure class, in
    /// `class_ix` order.
    pub fn breakdown(&self) -> Vec<(&'static str, usize)> {
        CrawlError::class_names()
            .into_iter()
            .zip(self.failures_by_class)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(features: &[u32]) -> FeatureLog {
        let mut log = FeatureLog::new();
        for &f in features {
            log.record(FeatureId::new(f));
        }
        log
    }

    fn round_with(round: u32, features: &[u32]) -> RoundMeasurement {
        RoundMeasurement {
            log: log_with(features),
            pages_visited: 13,
            interaction_ms: 390_000,
            attempts: 13,
            ..RoundMeasurement::empty(round)
        }
    }

    fn measurement() -> SiteMeasurement {
        SiteMeasurement {
            site: SiteId::new(0),
            domain: "a.test".into(),
            traffic_weight: 0.1,
            outcome: SiteOutcome::Completed,
            rounds: vec![
                (
                    BrowserProfile::Default,
                    vec![round_with(0, &[1, 2]), round_with(1, &[2, 3])],
                ),
                (BrowserProfile::Blocking, vec![round_with(0, &[2])]),
            ],
        }
    }

    #[test]
    fn features_union_across_rounds() {
        let m = measurement();
        let used = m.features_used(BrowserProfile::Default);
        assert_eq!(used.len(), 3);
        assert!(used.contains(&FeatureId::new(3)));
        assert_eq!(m.features_used(BrowserProfile::Blocking).len(), 1);
        assert!(m.features_used(BrowserProfile::AdblockOnly).is_empty());
    }

    #[test]
    fn dataset_aggregates() {
        let ds = Dataset {
            profiles: vec![BrowserProfile::Default, BrowserProfile::Blocking],
            rounds_per_profile: 2,
            sites: vec![measurement()],
            cache: CacheTotals::default(),
        };
        assert_eq!(ds.measured_sites(), 1);
        assert_eq!(ds.total_pages(), 39);
        assert_eq!(ds.total_invocations(), 5);
        assert_eq!(ds.total_interaction_ms(), 3 * 390_000);
        assert_eq!(
            ds.sites_using_feature(FeatureId::new(2), BrowserProfile::Default),
            1
        );
        assert_eq!(
            ds.sites_using_feature(FeatureId::new(9), BrowserProfile::Default),
            0
        );
    }

    #[test]
    fn failed_rounds_dont_count_as_measured() {
        let rounds = vec![(
            BrowserProfile::Default,
            vec![RoundMeasurement::failed_with(0, CrawlError::DeadHost)],
        )];
        let m = SiteMeasurement {
            site: SiteId::new(1),
            domain: "dead.test".into(),
            traffic_weight: 0.0,
            outcome: SiteOutcome::from_rounds(&rounds),
            rounds,
        };
        assert!(!m.measured(BrowserProfile::Default));
        assert_eq!(m.outcome, SiteOutcome::Failed(CrawlError::DeadHost));
    }

    #[test]
    fn outcome_prefers_dominant_class() {
        let rounds = vec![(
            BrowserProfile::Default,
            vec![
                RoundMeasurement::failed_with(0, CrawlError::Stall),
                RoundMeasurement::failed_with(1, CrawlError::DeadHost),
                RoundMeasurement::failed_with(2, CrawlError::Stall),
            ],
        )];
        assert_eq!(
            SiteOutcome::from_rounds(&rounds),
            SiteOutcome::Failed(CrawlError::Stall)
        );
        let mixed = vec![(
            BrowserProfile::Default,
            vec![
                RoundMeasurement::failed_with(0, CrawlError::Stall),
                RoundMeasurement::empty(1),
            ],
        )];
        assert_eq!(SiteOutcome::from_rounds(&mixed), SiteOutcome::Completed);
    }

    #[test]
    fn health_classifies_every_lost_site() {
        let lost = |site: u32, domain: &str, error| {
            let rounds = vec![(
                BrowserProfile::Default,
                vec![RoundMeasurement {
                    retries: 2,
                    attempts: 3,
                    backoff_ms: 750,
                    ..RoundMeasurement::failed_with(0, error)
                }],
            )];
            SiteMeasurement {
                site: SiteId::new(site),
                domain: domain.into(),
                traffic_weight: 0.0,
                outcome: SiteOutcome::from_rounds(&rounds),
                rounds,
            }
        };
        let ds = Dataset {
            profiles: vec![BrowserProfile::Default],
            rounds_per_profile: 1,
            sites: vec![
                measurement(),
                lost(1, "dead.test", CrawlError::DeadHost),
                lost(2, "slow.test", CrawlError::Stall),
            ],
            cache: CacheTotals::default(),
        };
        let health = ds.health();
        assert_eq!(health.sites_total, 3);
        assert_eq!(health.sites_completed, 1);
        assert_eq!(health.sites_failed, 2);
        assert_eq!(health.sites_panicked, 0);
        assert_eq!(health.failures_by_class.iter().sum::<usize>(), 2);
        assert_eq!(health.failures_by_class[CrawlError::DeadHost.class_ix()], 1);
        assert_eq!(health.failures_by_class[CrawlError::Stall.class_ix()], 1);
        assert_eq!(health.total_retries, 4);
        assert_eq!(health.total_backoff_ms, 1_500);
        let named: Vec<_> = health
            .breakdown()
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .collect();
        assert_eq!(named, vec![("dead host", 1), ("stall", 1)]);
    }

    #[test]
    fn fingerprint_sensitive_to_outcome_and_log() {
        let base = Dataset {
            profiles: vec![BrowserProfile::Default],
            rounds_per_profile: 1,
            sites: vec![measurement()],
            cache: CacheTotals::default(),
        };
        let mut other = base.clone();
        assert_eq!(base.fingerprint(), other.fingerprint());
        other.sites[0].outcome = SiteOutcome::Panicked;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut third = base.clone();
        third.sites[0].rounds[0].1[0].log.record(FeatureId::new(40));
        assert_ne!(base.fingerprint(), third.fingerprint());
        let mut fourth = base.clone();
        fourth.sites[0].rounds[0].1[0].script_heap_errors += 1;
        assert_ne!(base.fingerprint(), fourth.fingerprint());
    }

    #[test]
    fn health_counts_budget_trips_and_circuit_skips() {
        let mut m = measurement();
        m.rounds[0].1[0].script_budget_errors = 2;
        m.rounds[0].1[0].script_heap_errors = 1;
        m.rounds[0].1[1].script_depth_errors = 3;
        m.rounds[1]
            .1
            .push(RoundMeasurement::failed_with(1, CrawlError::CircuitOpen));
        let ds = Dataset {
            profiles: vec![BrowserProfile::Default, BrowserProfile::Blocking],
            rounds_per_profile: 2,
            sites: vec![m],
            cache: CacheTotals::default(),
        };
        let health = ds.health();
        assert_eq!(health.total_script_budget_errors, 2);
        assert_eq!(health.total_script_heap_errors, 1);
        assert_eq!(health.total_script_depth_errors, 3);
        assert_eq!(health.rounds_circuit_skipped, 1);
    }

    #[test]
    fn cache_totals_surface_in_health_but_not_fingerprint() {
        let mut ds = Dataset {
            profiles: vec![BrowserProfile::Default],
            rounds_per_profile: 1,
            sites: vec![measurement()],
            cache: CacheTotals::default(),
        };
        let bare = ds.fingerprint();
        ds.cache = CacheTotals {
            enabled: true,
            script_hits: 90,
            script_misses: 10,
            script_negative_hits: 20,
            unique_scripts: 10,
            unique_frames: 3,
            chunk_hits: 80,
            chunk_misses: 9,
            chunk_negative_hits: 18,
            unique_chunks: 9,
        };
        assert_eq!(ds.fingerprint(), bare, "cache totals are effort, not data");
        let health = ds.health();
        assert!(health.cache.enabled);
        assert_eq!(health.cache.script_hits, 90);
        assert_eq!(health.cache.chunk_hits, 80);
        assert_eq!(health.cache.unique_chunks, 9);
        assert!((ds.cache.hit_rate() - 110.0 / 120.0).abs() < 1e-12);
        assert_eq!(CacheTotals::default().hit_rate(), 0.0);
    }

    #[test]
    fn standards_through_round_grows_monotonically() {
        let registry = FeatureRegistry::build();
        let m = measurement();
        let r0 = m.standards_through_round(BrowserProfile::Default, 0, &registry);
        let r1 = m.standards_through_round(BrowserProfile::Default, 1, &registry);
        assert!(r0.is_subset(&r1));
    }
}
