//! The crawl fault taxonomy.
//!
//! The paper reports losing 267 of the Alexa 10k to "non-responsive domains
//! and sites that contained syntax errors in their JavaScript" (§4.3.3) —
//! one undifferentiated bucket. The supervision layer classifies every lost
//! site instead, so the loss breakdown is itself a measurement:
//!
//! | class              | source                                  | retried? |
//! |--------------------|-----------------------------------------|----------|
//! | `DeadHost`         | DNS failure / connection refused        | no       |
//! | `ConnectionReset`  | exchange reset mid-flight               | yes      |
//! | `Stall`            | exchange timed out (budget consumed)    | yes      |
//! | `Truncated`        | response cut short / protocol garbage   | yes      |
//! | `HttpError`        | non-success status on the document      | no       |
//! | `ScriptSyntax`     | every home-page script failed to parse  | no       |
//! | `ScriptBudget`     | every home-page script tripped a budget | no       |
//! | `WatchdogExpired`  | page watchdog fired before any page     | no       |
//! | `CircuitOpen`      | host circuit breaker skipped the round  | no       |

use bfu_browser::LoadError;
use bfu_net::NetError;
use std::fmt;

/// Why a site (or one round of it) could not be measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrawlError {
    /// Host never answers: DNS dead or connection refused.
    DeadHost,
    /// Connection reset mid-exchange.
    ConnectionReset,
    /// Exchange stalled past its timeout, consuming clock budget.
    Stall,
    /// Response truncated or otherwise unparseable on the wire.
    Truncated,
    /// Document answered with a non-success HTTP status.
    HttpError(u16),
    /// Every script on the home page failed to parse (the paper's "syntax
    /// errors in their JavaScript").
    ScriptSyntax,
    /// Every script on the home page tripped a resource budget (steps,
    /// heap, string, depth, or size).
    ScriptBudget,
    /// The per-round watchdog expired before a single page was measured.
    WatchdogExpired,
    /// The per-host circuit breaker was open: the round was skipped without
    /// touching the host (its cool-down had not yet been paid off).
    CircuitOpen,
}

impl CrawlError {
    /// Number of classes (all `HttpError` statuses share one bucket).
    pub const CLASS_COUNT: usize = 9;

    /// Dense index of this error's class, for histogram buckets.
    pub fn class_ix(self) -> usize {
        match self {
            CrawlError::DeadHost => 0,
            CrawlError::ConnectionReset => 1,
            CrawlError::Stall => 2,
            CrawlError::Truncated => 3,
            CrawlError::HttpError(_) => 4,
            CrawlError::ScriptSyntax => 5,
            CrawlError::ScriptBudget => 6,
            CrawlError::WatchdogExpired => 7,
            CrawlError::CircuitOpen => 8,
        }
    }

    /// Class label for reports (one per `class_ix`).
    pub fn class_name(self) -> &'static str {
        CrawlError::class_names()[self.class_ix()]
    }

    /// All class labels, indexed by `class_ix`.
    pub fn class_names() -> [&'static str; CrawlError::CLASS_COUNT] {
        [
            "dead host",
            "connection reset",
            "stall",
            "truncated",
            "http error",
            "script syntax",
            "script budget",
            "watchdog",
            "circuit open",
        ]
    }

    /// Wire encoding: `(class index, extra)` where `extra` carries the HTTP
    /// status for [`CrawlError::HttpError`] and is zero elsewhere. Stable
    /// across versions — the dataset store depends on it.
    pub fn to_parts(self) -> (u8, u16) {
        let extra = match self {
            CrawlError::HttpError(status) => status,
            _ => 0,
        };
        (self.class_ix() as u8, extra)
    }

    /// Inverse of [`CrawlError::to_parts`]; `None` for unknown classes.
    pub fn from_parts(class: u8, extra: u16) -> Option<CrawlError> {
        Some(match class {
            0 => CrawlError::DeadHost,
            1 => CrawlError::ConnectionReset,
            2 => CrawlError::Stall,
            3 => CrawlError::Truncated,
            4 => CrawlError::HttpError(extra),
            5 => CrawlError::ScriptSyntax,
            6 => CrawlError::ScriptBudget,
            7 => CrawlError::WatchdogExpired,
            8 => CrawlError::CircuitOpen,
            _ => return None,
        })
    }

    /// Whether a retry could plausibly succeed. Permanent classes (dead
    /// hosts, HTTP errors, script failures) are never retried.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            CrawlError::ConnectionReset | CrawlError::Stall | CrawlError::Truncated
        )
    }

    /// Classify a browser-level load failure.
    pub fn from_load(e: &LoadError) -> CrawlError {
        match e {
            LoadError::Network(NetError::NameNotResolved(_))
            | LoadError::Network(NetError::ConnectionRefused(_)) => CrawlError::DeadHost,
            LoadError::Network(NetError::ConnectionReset(_)) => CrawlError::ConnectionReset,
            LoadError::Network(NetError::Stalled(_)) => CrawlError::Stall,
            LoadError::Network(NetError::Truncated(_))
            | LoadError::Network(NetError::ProtocolError(_)) => CrawlError::Truncated,
            LoadError::Http(status) => CrawlError::HttpError(*status),
        }
    }
}

impl fmt::Display for CrawlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrawlError::HttpError(s) => write!(f, "http error {s}"),
            other => f.write_str(other.class_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_dense_and_distinct() {
        let all = [
            CrawlError::DeadHost,
            CrawlError::ConnectionReset,
            CrawlError::Stall,
            CrawlError::Truncated,
            CrawlError::HttpError(503),
            CrawlError::ScriptSyntax,
            CrawlError::ScriptBudget,
            CrawlError::WatchdogExpired,
            CrawlError::CircuitOpen,
        ];
        let mut seen = [false; CrawlError::CLASS_COUNT];
        for e in all {
            assert!(!seen[e.class_ix()], "duplicate index for {e}");
            seen[e.class_ix()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(
            CrawlError::HttpError(404).class_ix(),
            CrawlError::HttpError(503).class_ix()
        );
    }

    #[test]
    fn wire_parts_roundtrip_every_class() {
        let all = [
            CrawlError::DeadHost,
            CrawlError::ConnectionReset,
            CrawlError::Stall,
            CrawlError::Truncated,
            CrawlError::HttpError(418),
            CrawlError::ScriptSyntax,
            CrawlError::ScriptBudget,
            CrawlError::WatchdogExpired,
            CrawlError::CircuitOpen,
        ];
        for e in all {
            let (class, extra) = e.to_parts();
            assert_eq!(CrawlError::from_parts(class, extra), Some(e), "{e}");
        }
        assert_eq!(CrawlError::from_parts(200, 0), None);
    }

    #[test]
    fn transience_matches_retry_matrix() {
        assert!(CrawlError::ConnectionReset.is_transient());
        assert!(CrawlError::Stall.is_transient());
        assert!(CrawlError::Truncated.is_transient());
        assert!(!CrawlError::DeadHost.is_transient());
        assert!(!CrawlError::HttpError(500).is_transient());
        assert!(!CrawlError::ScriptSyntax.is_transient());
        assert!(!CrawlError::ScriptBudget.is_transient());
        assert!(!CrawlError::WatchdogExpired.is_transient());
        assert!(!CrawlError::CircuitOpen.is_transient());
    }

    #[test]
    fn load_errors_classify() {
        use bfu_net::NetError::*;
        let net = |e| CrawlError::from_load(&LoadError::Network(e));
        assert_eq!(net(NameNotResolved("x".into())), CrawlError::DeadHost);
        assert_eq!(net(ConnectionRefused("x".into())), CrawlError::DeadHost);
        assert_eq!(
            net(ConnectionReset("x".into())),
            CrawlError::ConnectionReset
        );
        assert_eq!(net(Stalled("x".into())), CrawlError::Stall);
        assert_eq!(net(Truncated("x".into())), CrawlError::Truncated);
        assert_eq!(net(ProtocolError("x".into())), CrawlError::Truncated);
        assert_eq!(
            CrawlError::from_load(&LoadError::Http(503)),
            CrawlError::HttpError(503)
        );
    }
}
