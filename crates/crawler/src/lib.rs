//! # bfu-crawler
//!
//! Survey orchestration: the automated crawl of §4.3.3.
//!
//! For each site in the ranking: 5 measurement rounds in the default
//! configuration and 5 with blocking extensions installed (plus optional
//! ad-only / tracker-only configurations for Fig. 7), each round visiting 13
//! pages for 30 virtual seconds of monkey testing. Sites crawl in parallel
//! across OS threads (each site's virtual world is independent and seeded).
//!
//! - [`config`] — crawl parameters (rounds, pages, budgets, configurations).
//! - [`visit`] — one page visit: load, instrument, interact, harvest logs.
//! - [`survey`] — the full study driver producing a [`dataset::Dataset`].
//! - [`dataset`] — the measurement records all analyses consume.

pub mod config;
pub mod dataset;
pub mod survey;
pub mod visit;

pub use config::{BrowserProfile, CrawlConfig};
pub use dataset::{Dataset, SiteMeasurement};
pub use survey::Survey;
pub use visit::{policy_for, visit_site_round, PolicyAdapter};
