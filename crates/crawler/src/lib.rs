//! # bfu-crawler
//!
//! Survey orchestration: the automated crawl of §4.3.3, with a supervision
//! layer the paper's own rig implicitly had (its crawl *lost* 267 domains;
//! ours classifies every loss).
//!
//! For each site in the ranking: 5 measurement rounds in the default
//! configuration and 5 with blocking extensions installed (plus optional
//! ad-only / tracker-only configurations for Fig. 7), each round visiting 13
//! pages for 30 virtual seconds of monkey testing. Sites crawl in parallel
//! across OS threads (each site's virtual world is independent and seeded).
//!
//! - [`config`] — crawl parameters (rounds, pages, budgets, configurations).
//! - [`error`] — the [`error::CrawlError`] fault taxonomy.
//! - [`retry`] — deterministic bounded retry with virtual-clock backoff.
//! - [`breaker`] — per-host circuit breakers containing trap-class hosts.
//! - [`visit`] — one page visit: load (with retries + watchdog), instrument,
//!   interact, harvest logs.
//! - [`survey`] — the full study driver producing a partial-tolerant
//!   [`dataset::Dataset`].
//! - [`dataset`] — the measurement records all analyses consume, plus the
//!   [`dataset::CrawlHealth`] supervision summary.
//! - [`provenance`] — the single dataset-identity record (seed, config
//!   fingerprint, health) every metadata writer derives from.

// The crawl must degrade, not die: every unwrap/expect outside tests is a
// latent panic that would take a whole survey down with one bad site.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod breaker;
pub mod config;
pub mod dataset;
pub mod error;
pub mod provenance;
pub mod retry;
pub mod survey;
pub mod visit;

pub use bfu_browser::BrowserConfig;
pub use breaker::{Admission, BreakerPolicy, BreakerState, HostBreaker};
pub use config::{BrowserProfile, CrawlConfig};
pub use dataset::{
    BackendTotals, CacheTotals, CrawlHealth, Dataset, FabricTotals, RoundMeasurement,
    SiteMeasurement, SiteOutcome,
};
pub use error::CrawlError;
pub use provenance::Provenance;
pub use retry::{load_with_retry, retry_interrupted, AttemptTrace, RetryPolicy};
pub use survey::{survey_fingerprint, SiteCrawler, Survey, ValidationRun};
pub use visit::{policy_for, visit_site_round, visit_site_round_supervised, PolicyAdapter};
