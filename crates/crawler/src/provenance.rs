//! Dataset provenance: where a dataset came from, in one record.
//!
//! Every consumer that writes dataset metadata — the store's manifest
//! sidecar, analysis exports, bench reports — derives it from this single
//! struct, so the seed, configuration fingerprint, and crawl health are
//! written once instead of being re-assembled (and drifting) per consumer.
//! The JSON rendering lives in `bfu-analysis::export::provenance_json`.

use crate::config::BrowserProfile;
use crate::dataset::{CrawlHealth, Dataset};
use crate::survey::Survey;

/// Everything needed to identify and trust a stored dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// The survey fingerprint ([`Survey::fingerprint`]): web config + crawl
    /// config + fault overlay. The store's resume key.
    pub fingerprint: u64,
    /// Crawl seed.
    pub crawl_seed: u64,
    /// Web generation seed.
    pub web_seed: u64,
    /// Ranked sites in the study.
    pub sites: usize,
    /// Measurement rounds per profile.
    pub rounds_per_profile: u32,
    /// Profiles crawled, in order.
    pub profiles: Vec<BrowserProfile>,
    /// Supervision summary of the dataset (loss breakdown, retry effort).
    pub health: CrawlHealth,
}

impl Provenance {
    /// The provenance of `dataset` as produced by `survey`.
    pub fn of(survey: &Survey, dataset: &Dataset) -> Provenance {
        Provenance {
            fingerprint: survey.fingerprint(),
            crawl_seed: survey.config().seed,
            web_seed: survey.web().core().config.seed,
            sites: survey.web().site_count(),
            rounds_per_profile: dataset.rounds_per_profile,
            profiles: dataset.profiles.clone(),
            health: dataset.health(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrawlConfig;
    use bfu_webgen::{SyntheticWeb, WebConfig};

    #[test]
    fn provenance_reflects_survey_and_dataset() {
        let web = SyntheticWeb::generate(WebConfig {
            sites: 6,
            seed: 11,
            script_weight: 0,
        });
        let survey = Survey::new(web, CrawlConfig::quick(3));
        let dataset = survey.run();
        let p = Provenance::of(&survey, &dataset);
        assert_eq!(p.fingerprint, survey.fingerprint());
        assert_eq!(p.web_seed, 11);
        assert_eq!(p.crawl_seed, 3);
        assert_eq!(p.sites, 6);
        assert_eq!(p.health, dataset.health());
        assert_eq!(p.profiles, dataset.profiles);
    }
}
