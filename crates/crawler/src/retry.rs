//! Deterministic retry with exponential backoff, paid in virtual time.
//!
//! A real crawler retries flaky fetches; ours does too, but the backoff is
//! deducted from the same virtual clock that pays for page interaction, so
//! retrying is never free — a site that needs three attempts has genuinely
//! less of its 30-second budget left. Only transient classes
//! ([`CrawlError::is_transient`]) are retried; a dead host or a syntax error
//! fails immediately with its true class.

use crate::error::CrawlError;
use bfu_browser::{Browser, Page, RequestPolicy};
use bfu_net::{SimNet, Url};
use bfu_util::{Instant, VirtualClock};
use std::io;

/// Cap on consecutive [`io::ErrorKind::Interrupted`] retries before the
/// error is surfaced anyway (a guard against a pathological signal storm —
/// or a fault injector configured to fire on every operation).
pub const MAX_INTERRUPTED_RETRIES: u32 = 64;

/// Run `f`, retrying while it fails with [`io::ErrorKind::Interrupted`].
///
/// A spurious `EINTR` is the one I/O error that is *always* transient: the
/// operation never started, so repeating it is both safe and the only
/// correct response. The dataset store routes every read/write/sync through
/// this helper so a signal landing mid-scan cannot fail a whole survey;
/// bounded attempts keep an adversarial fault schedule from looping forever.
pub fn retry_interrupted<T>(mut f: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempts = 0;
    loop {
        match f() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                attempts += 1;
                if attempts > MAX_INTERRUPTED_RETRIES {
                    return Err(e);
                }
            }
            other => return other,
        }
    }
}

/// Bounded-attempt exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed per page load (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual ms.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff, in virtual ms.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 250,
            max_backoff_ms: 4_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
        }
    }

    /// Backoff before retry number `retry_ix` (0-based): `base << retry_ix`,
    /// capped at `max_backoff_ms`.
    pub fn backoff_ms(&self, retry_ix: u32) -> u64 {
        let factor = 1u64.checked_shl(retry_ix).unwrap_or(u64::MAX);
        self.base_backoff_ms
            .saturating_mul(factor)
            .min(self.max_backoff_ms)
    }

    /// Whether to retry after `attempts_made` attempts ended in `error`.
    pub fn should_retry(&self, error: CrawlError, attempts_made: u32) -> bool {
        error.is_transient() && attempts_made < self.max_attempts
    }
}

/// What one supervised page load did: how many attempts, how much backoff
/// was paid, and the final error if every attempt failed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttemptTrace {
    /// Load attempts made (≥ 1).
    pub attempts: u32,
    /// Retries among those attempts (`attempts - 1`).
    pub retries: u32,
    /// Total virtual ms spent backing off.
    pub backoff_ms: u64,
    /// Classified error of the last attempt, `None` on success.
    pub error: Option<CrawlError>,
}

/// Load `url`, retrying transient failures with exponential backoff until
/// the policy's attempt bound or `deadline` would be crossed. Backoff is
/// paid on `clock` before each retry, so supervision consumes the same
/// budget as measurement.
#[allow(clippy::too_many_arguments)]
pub fn load_with_retry(
    browser: &Browser,
    net: &mut SimNet,
    url: &Url,
    policy: &dyn RequestPolicy,
    clock: &mut VirtualClock,
    deadline: Instant,
    retry: &RetryPolicy,
) -> (Option<Page>, AttemptTrace) {
    let mut trace = AttemptTrace::default();
    loop {
        trace.attempts += 1;
        match browser.load(net, url, policy, clock) {
            Ok(page) => {
                trace.error = None;
                return (Some(page), trace);
            }
            Err(e) => {
                let error = CrawlError::from_load(&e);
                trace.error = Some(error);
                if !retry.should_retry(error, trace.attempts) {
                    return (None, trace);
                }
                let backoff = retry.backoff_ms(trace.retries);
                if clock.now().plus(backoff) > deadline {
                    // Not enough budget left to wait out the backoff: give
                    // up with the truthful underlying class.
                    return (None, trace);
                }
                clock.advance(backoff);
                trace.backoff_ms += backoff;
                trace.retries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(0), 250);
        assert_eq!(p.backoff_ms(1), 500);
        assert_eq!(p.backoff_ms(2), 1_000);
        assert_eq!(p.backoff_ms(10), 4_000);
        assert_eq!(p.backoff_ms(63), 4_000);
        assert_eq!(p.backoff_ms(64), 4_000, "shift overflow must saturate");
    }

    #[test]
    fn interrupted_retries_then_succeeds() {
        let mut failures = 3;
        let out = retry_interrupted(|| {
            if failures > 0 {
                failures -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(41)
            }
        });
        assert_eq!(out.expect("recovers"), 41);
    }

    #[test]
    fn interrupted_retries_are_bounded() {
        let mut calls = 0u32;
        let out: io::Result<()> = retry_interrupted(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "eintr forever"))
        });
        assert_eq!(
            out.expect_err("gives up").kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(calls, MAX_INTERRUPTED_RETRIES + 1);
    }

    #[test]
    fn non_interrupted_errors_pass_through() {
        let mut calls = 0u32;
        let out: io::Result<()> = retry_interrupted(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
        });
        assert_eq!(
            out.expect_err("not retried").kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(calls, 1);
    }

    #[test]
    fn retry_matrix() {
        let p = RetryPolicy::default();
        assert!(p.should_retry(CrawlError::ConnectionReset, 1));
        assert!(p.should_retry(CrawlError::Stall, 2));
        assert!(!p.should_retry(CrawlError::ConnectionReset, 3), "bound");
        assert!(!p.should_retry(CrawlError::DeadHost, 1), "permanent");
        assert!(!p.should_retry(CrawlError::ScriptSyntax, 1), "permanent");
        assert!(!RetryPolicy::none().should_retry(CrawlError::Stall, 1));
    }
}
