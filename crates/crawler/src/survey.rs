//! The full survey: every site × every profile × every round, in parallel.
//!
//! Sites are independent virtual worlds, so the survey shards them across
//! worker threads (std scoped threads + an atomic work counter). Each
//! worker builds its own network, browser, and policies; per-site randomness
//! is derived from `(crawl seed, site, profile, round)` and fault sampling
//! from `(fault seed, site context, host, exchange index)`, so results are
//! identical regardless of thread count or scheduling.
//!
//! The survey never panics out from under the caller: each site crawl runs
//! under `catch_unwind`, a panicking site is recorded as
//! [`SiteOutcome::Panicked`] and the rest of the crawl proceeds. The
//! returned [`Dataset`] is therefore *partial by construction* — consult
//! [`Dataset::health`] for the loss breakdown.

use crate::breaker::HostBreaker;
use crate::config::{BrowserProfile, CrawlConfig};
use crate::dataset::{CacheTotals, Dataset, SiteMeasurement, SiteOutcome};
use crate::visit::{policy_for, visit_site_round_supervised, PolicyAdapter};
use bfu_browser::{Browser, CompileCache};
use bfu_monkey::{HumanProfile, Interactor};
use bfu_net::{FaultPlan, SimNet, Url};
use bfu_util::{hash_label, SimRng};
use bfu_webgen::{HostilePlan, SiteId, SyntheticWeb};
use bfu_webidl::StandardId;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The survey driver.
#[derive(Debug, Clone)]
pub struct Survey {
    web: SyntheticWeb,
    config: CrawlConfig,
    fault_overlay: Option<FaultPlan>,
    hostility: Option<HostilePlan>,
}

/// Outcome of [`Survey::external_validation`]: per-site standards the human
/// profile saw that the automated crawl missed, plus how far short the
/// weighted sample fell of the requested size.
#[derive(Debug, Clone, Default)]
pub struct ValidationRun {
    /// `(site, standards the human saw that automation missed)`.
    pub sites: Vec<(SiteId, usize)>,
    /// Sites requested.
    pub requested: usize,
    /// Requested minus delivered (dead sites, exhausted sampling, bad
    /// weights) — surfaced instead of silently under-sampling.
    pub shortfall: usize,
}

/// [`Survey::fingerprint`] computed from raw parts, without generating the
/// web. Lets configuration layers (e.g. `StudyConfig`) key a dataset store
/// before paying for web generation; must stay in lockstep with what
/// `Survey` would hash.
pub fn survey_fingerprint(
    web_seed: u64,
    sites: usize,
    config: &CrawlConfig,
    overlay: Option<&FaultPlan>,
) -> u64 {
    let mut f = bfu_util::Fnv64::new();
    f.write(b"bfu-survey-v1");
    f.write_u64(web_seed);
    f.write_u64(sites as u64);
    config.fingerprint_into(&mut f);
    match overlay {
        None => f.write_u64(0),
        Some(overlay) => {
            f.write_u64(1);
            f.write_u64(overlay.digest());
        }
    }
    f.finish()
}

impl Survey {
    /// A survey over `web` with `config`.
    pub fn new(web: SyntheticWeb, config: CrawlConfig) -> Self {
        Survey {
            web,
            config,
            fault_overlay: None,
            hostility: None,
        }
    }

    /// Overlay extra faults on top of the web's own plan (dead hosts from
    /// generation stay dead; the overlay adds programs, resets, latency).
    pub fn with_faults(mut self, overlay: FaultPlan) -> Self {
        self.fault_overlay = Some(overlay);
        self
    }

    /// Replace a seeded fraction of sites with adversarial pages (infinite
    /// loops, allocation bombs, timer storms — see [`HostilePlan`]). The
    /// hostile overlay is part of the survey's fingerprint.
    pub fn with_hostility(mut self, plan: HostilePlan) -> Self {
        self.hostility = Some(plan);
        self
    }

    /// The web under survey.
    pub fn web(&self) -> &SyntheticWeb {
        &self.web
    }

    /// The configuration.
    pub fn config(&self) -> &CrawlConfig {
        &self.config
    }

    /// Stable identity of everything that shapes this survey's
    /// measurements: the web's generation config, every crawl parameter
    /// except thread count, and the fault overlay. Two surveys with equal
    /// fingerprints produce byte-identical datasets, which is what lets the
    /// dataset store resume one survey's crawl from another run's shards.
    pub fn fingerprint(&self) -> u64 {
        let web_config = &self.web.core().config;
        let base = survey_fingerprint(
            web_config.seed,
            web_config.sites,
            &self.config,
            self.fault_overlay.as_ref(),
        );
        // Benign surveys stay in lockstep with `survey_fingerprint` (the
        // store keys datasets by it before generating the web); a hostile
        // overlay folds its digest on top.
        match &self.hostility {
            None => base,
            Some(plan) => {
                let mut f = bfu_util::Fnv64::new();
                f.write(b"bfu-survey-hostile-v1");
                f.write_u64(base);
                f.write_u64(plan.digest());
                f.finish()
            }
        }
    }

    /// The effective fault plan a worker's network runs under.
    fn effective_faults(&self, net: &SimNet) -> FaultPlan {
        let mut plan = net.faults().clone();
        if let Some(overlay) = &self.fault_overlay {
            plan = plan.merge(overlay.clone());
        }
        if plan.seed == 0 {
            plan.seed = self.config.seed;
        }
        plan
    }

    /// Build one worker's private world: network (with faults applied),
    /// browser, and one policy per profile. When the survey runs with a
    /// shared compilation cache, every worker's browser gets the same one.
    fn build_world(
        &self,
        cache: Option<&Arc<CompileCache>>,
    ) -> (SimNet, Browser, Vec<(BrowserProfile, PolicyAdapter)>) {
        let mut net = SimNet::new(SimRng::new(self.config.seed ^ 0x5EED));
        self.web.install_into(&mut net);
        if let Some(plan) = &self.hostility {
            plan.install_into(&self.web, &mut net);
        }
        net.set_faults(self.effective_faults(&net));
        let registry = Rc::new((**self.web.registry()).clone());
        let mut browser = Browser::with_config(registry, self.config.browser.clone());
        if let Some(cache) = cache {
            browser.set_compile_cache(Arc::clone(cache));
        }
        let policies: Vec<(BrowserProfile, PolicyAdapter)> = self
            .config
            .profiles
            .iter()
            .map(|&p| (p, policy_for(&self.web, p)))
            .collect();
        (net, browser, policies)
    }

    /// Run the whole crawl, returning the (possibly partial) dataset.
    pub fn run(&self) -> Dataset {
        self.run_partial(Vec::new(), &|_| {})
    }

    /// Build a reusable single-site crawler over one private world — the
    /// survey-fabric worker's crawl engine. The world (network, browser,
    /// policies, optional compile cache) is built once and reused across
    /// every [`SiteCrawler::crawl`] call, exactly as [`Survey::run_partial`]
    /// reuses a worker thread's world; per-site measurements depend only on
    /// `(survey fingerprint, site)`, so the results are identical to a full
    /// run's. The crawler is not `Send` (the browser holds `Rc` internals):
    /// build one per worker.
    pub fn site_crawler(&self) -> SiteCrawler<'_> {
        let cache = self
            .config
            .compile_cache
            .then(|| Arc::new(CompileCache::new()));
        let (net, browser, policies) = self.build_world(cache.as_ref());
        SiteCrawler {
            survey: self,
            net,
            browser,
            policies,
        }
    }

    /// Run the crawl, skipping sites already measured and streaming each
    /// fresh measurement to `observer` as it completes.
    ///
    /// `prefilled[ix] = Some(m)` means site `ix` was already measured (e.g.
    /// recovered from a dataset store's shards) and must not be recrawled;
    /// its measurement is carried into the returned [`Dataset`] verbatim.
    /// A `prefilled` shorter than the site count is treated as `None`-padded.
    /// `observer` is invoked from worker threads, once per *newly crawled*
    /// site, in completion order — this is the dataset store's shard-writer
    /// hook. Because per-site measurements depend only on
    /// `(survey fingerprint, site)`, a resumed run and an uninterrupted run
    /// fingerprint identically.
    pub fn run_partial(
        &self,
        mut prefilled: Vec<Option<SiteMeasurement>>,
        observer: &(dyn Fn(&SiteMeasurement) + Sync),
    ) -> Dataset {
        let n_sites = self.web.site_count();
        prefilled.truncate(n_sites);
        prefilled.resize_with(n_sites, || None);
        let done: Vec<bool> = prefilled.iter().map(Option::is_some).collect();
        let results: Mutex<Vec<Option<SiteMeasurement>>> = Mutex::new(prefilled);
        let next = AtomicUsize::new(0);
        let threads = self.config.threads.max(1).min(n_sites.max(1));
        // One compilation cache for the whole survey: every worker's browser
        // shares it, so a third-party script parsed on one thread is a hit
        // everywhere else. Purely memoization — the dataset fingerprint is
        // identical with the cache on or off (the determinism suite asserts
        // this), which is why `compile_cache` stays out of the config
        // fingerprint.
        let cache = self
            .config
            .compile_cache
            .then(|| Arc::new(CompileCache::new()));

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut world = None;
                    loop {
                        let ix = next.fetch_add(1, Ordering::Relaxed);
                        if ix >= n_sites {
                            break;
                        }
                        if done[ix] {
                            continue;
                        }
                        // Worlds are expensive; build one only if this
                        // worker actually has sites left to crawl.
                        let (net, browser, policies) =
                            world.get_or_insert_with(|| self.build_world(cache.as_ref()));
                        // A panicking site must not take the worker (or the
                        // survey) down with it; it becomes a Panicked entry.
                        let m = catch_unwind(AssertUnwindSafe(|| {
                            self.crawl_site(ix, browser, net, policies)
                        }))
                        .unwrap_or_else(|_| self.panicked_site(ix));
                        observer(&m);
                        let mut slots = results.lock().unwrap_or_else(|poison| poison.into_inner());
                        slots[ix] = Some(m);
                    }
                });
            }
        });

        let slots = results
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner());
        let cache_totals = match &cache {
            Some(cache) => {
                let scripts = cache.script_stats();
                // `script_*` are combined totals across both cache families
                // (parsed ASTs + compiled chunks): whichever family the
                // configured engine consulted, these count its probes.
                CacheTotals {
                    enabled: true,
                    script_hits: scripts.hits + scripts.chunk_hits,
                    script_misses: scripts.misses + scripts.chunk_misses,
                    script_negative_hits: scripts.negative_hits + scripts.chunk_negative_hits,
                    unique_scripts: scripts.unique_sources,
                    unique_frames: cache.unique_frames() as u64,
                    chunk_hits: scripts.chunk_hits,
                    chunk_misses: scripts.chunk_misses,
                    chunk_negative_hits: scripts.chunk_negative_hits,
                    unique_chunks: scripts.unique_chunks,
                }
            }
            None => CacheTotals::default(),
        };
        Dataset {
            profiles: self.config.profiles.clone(),
            rounds_per_profile: self.config.rounds_per_profile,
            sites: slots
                .into_iter()
                .enumerate()
                .map(|(ix, m)| m.unwrap_or_else(|| self.panicked_site(ix)))
                .collect(),
            cache: cache_totals,
        }
    }

    /// The record for a site whose crawl panicked (or was never filled in):
    /// nothing measured, outcome marked so `health()` can count it.
    fn panicked_site(&self, site_ix: usize) -> SiteMeasurement {
        let site = SiteId::from_usize(site_ix);
        let plan = self.web.plan(site);
        SiteMeasurement {
            site,
            domain: plan.site.domain.clone(),
            traffic_weight: plan.site.traffic_weight,
            outcome: SiteOutcome::Panicked,
            rounds: Vec::new(),
        }
    }

    fn crawl_site(
        &self,
        site_ix: usize,
        browser: &Browser,
        net: &mut SimNet,
        policies: &[(BrowserProfile, PolicyAdapter)],
    ) -> SiteMeasurement {
        let site = SiteId::from_usize(site_ix);
        let plan = self.web.plan(site);
        let base_rng = SimRng::new(self.config.seed).fork_idx(site_ix as u64);
        let mut rounds = Vec::new();
        // One breaker per site crawl, threaded through every profile and
        // round in config order: the skip/probe pattern depends only on the
        // deterministic round sequence, never on thread scheduling.
        let mut breaker = HostBreaker::new(self.config.breaker);
        for (profile, policy) in policies {
            let mut per_round = Vec::new();
            for round in 0..self.config.rounds_per_profile {
                let mut rng = base_rng.fork(profile.label()).fork_idx(u64::from(round));
                per_round.push(visit_site_round_supervised(
                    &self.web,
                    browser,
                    net,
                    policy,
                    *profile,
                    &plan.site.domain,
                    &self.config,
                    round,
                    &mut rng,
                    &mut breaker,
                ));
            }
            rounds.push((*profile, per_round));
        }
        let outcome = SiteOutcome::from_rounds(&rounds);
        SiteMeasurement {
            site,
            domain: plan.site.domain.clone(),
            traffic_weight: plan.site.traffic_weight,
            outcome,
            rounds,
        }
    }

    /// §6.2 external validation: visit `n` traffic-weighted sites with the
    /// human profile (3 pages × 30 s each) and report, per site, how many
    /// standards the human saw that the automated dataset missed. A sample
    /// that comes up short (dead sites, degenerate weights) reports its
    /// shortfall rather than silently shrinking.
    pub fn external_validation(&self, dataset: &Dataset, n: usize) -> ValidationRun {
        let mut rng = SimRng::new(self.config.seed).fork("external-validation");
        let registry_arc = self.web.registry().clone();
        let registry = Rc::new((*registry_arc).clone());
        let browser = Browser::with_config(registry.clone(), self.config.browser.clone());
        let mut net = SimNet::new(SimRng::new(self.config.seed ^ 0x5EED));
        self.web.install_into(&mut net);
        if let Some(plan) = &self.hostility {
            plan.install_into(&self.web, &mut net);
        }
        net.set_faults(self.effective_faults(&net));
        let policy = policy_for(&self.web, BrowserProfile::Default);

        // Traffic-weighted sample without replacement.
        let weights: Vec<f64> = self
            .web
            .core()
            .plans
            .iter()
            .map(|p| p.site.traffic_weight)
            .collect();
        let Some(dist) = bfu_util::WeightedIndex::new(&weights) else {
            return ValidationRun {
                sites: Vec::new(),
                requested: n,
                shortfall: n,
            };
        };
        let want = n.min(self.web.site_count());
        let mut chosen: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        let mut guard = 0;
        while chosen.len() < want && guard < n.saturating_mul(50) {
            let pick = dist.sample(&mut rng);
            if seen.insert(pick) && !self.web.plan(SiteId::from_usize(pick)).dead {
                chosen.push(pick);
            }
            guard += 1;
        }

        let mut sites = Vec::new();
        for site_ix in chosen {
            let site = SiteId::from_usize(site_ix);
            let domain = &self.web.plan(site).site.domain;
            let Ok(mut url) = Url::parse(&format!("http://{domain}/")) else {
                continue;
            };
            net.set_fault_context(
                hash_label(domain).rotate_left(7) ^ hash_label("external-validation"),
            );
            let mut human_standards: HashSet<StandardId> = HashSet::new();
            let mut human = HumanProfile::new(rng.fork_idx(site_ix as u64));
            let mut clock = bfu_util::VirtualClock::new();
            // Home plus up to two prominently-linked pages, 30 s each.
            for _ in 0..3 {
                let Ok(mut page) = browser.load(&mut net, &url, &policy, &mut clock) else {
                    break;
                };
                let report = human.interact(&mut page, &mut net, &policy, &mut clock, 30_000);
                human_standards.extend(
                    page.log
                        .borrow()
                        .features()
                        .into_iter()
                        .map(|f| registry.standard_of(f)),
                );
                match report.navigations.first() {
                    Some(next) if next.registrable_domain() == url.registrable_domain() => {
                        url = next.clone();
                    }
                    _ => break,
                }
            }
            let automated =
                dataset.sites[site_ix].standards_used(BrowserProfile::Default, &registry);
            let new = human_standards.difference(&automated).count();
            sites.push((site, new));
        }
        let shortfall = n.saturating_sub(sites.len());
        ValidationRun {
            sites,
            requested: n,
            shortfall,
        }
    }
}

/// A reusable single-site crawler over one worker-private world, built by
/// [`Survey::site_crawler`]. Panics are contained exactly as in the full
/// survey: a panicking site comes back as a [`SiteOutcome::Panicked`]
/// measurement, never an unwind into the caller.
pub struct SiteCrawler<'s> {
    survey: &'s Survey,
    net: SimNet,
    browser: Browser,
    policies: Vec<(BrowserProfile, PolicyAdapter)>,
}

impl SiteCrawler<'_> {
    /// Measure site `site_ix` (which must be within the survey's site
    /// count). Deterministic in `(survey fingerprint, site_ix)` — call order
    /// and prior crawls through this world do not affect the result.
    pub fn crawl(&mut self, site_ix: usize) -> SiteMeasurement {
        let SiteCrawler {
            survey,
            net,
            browser,
            policies,
        } = self;
        catch_unwind(AssertUnwindSafe(|| {
            survey.crawl_site(site_ix, browser, net, policies)
        }))
        .unwrap_or_else(|_| survey.panicked_site(site_ix))
    }
}
