//! The full survey: every site × every profile × every round, in parallel.
//!
//! Sites are independent virtual worlds, so the survey shards them across
//! worker threads (crossbeam scoped threads + an atomic work counter). Each
//! worker builds its own network, browser, and policies; per-site randomness
//! is derived from `(crawl seed, site, profile, round)` so results are
//! identical regardless of thread count or scheduling.

use crate::config::{BrowserProfile, CrawlConfig};
use crate::dataset::{Dataset, SiteMeasurement};
use crate::visit::{policy_for, visit_site_round, PolicyAdapter};
use bfu_browser::Browser;
use bfu_monkey::{HumanProfile, Interactor};
use bfu_net::{SimNet, Url};
use bfu_util::SimRng;
use bfu_webgen::{SiteId, SyntheticWeb};
use bfu_webidl::StandardId;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The survey driver.
#[derive(Debug, Clone)]
pub struct Survey {
    web: SyntheticWeb,
    config: CrawlConfig,
}

impl Survey {
    /// A survey over `web` with `config`.
    pub fn new(web: SyntheticWeb, config: CrawlConfig) -> Self {
        Survey { web, config }
    }

    /// The web under survey.
    pub fn web(&self) -> &SyntheticWeb {
        &self.web
    }

    /// The configuration.
    pub fn config(&self) -> &CrawlConfig {
        &self.config
    }

    /// Run the whole crawl, returning the dataset.
    pub fn run(&self) -> Dataset {
        let n_sites = self.web.site_count();
        let results: Mutex<Vec<Option<SiteMeasurement>>> = Mutex::new(vec![None; n_sites]);
        let next = AtomicUsize::new(0);
        let threads = self.config.threads.max(1).min(n_sites.max(1));

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    // Thread-local world: network with all servers, browser,
                    // and one policy per profile.
                    let mut net = SimNet::new(SimRng::new(self.config.seed ^ 0x5EED));
                    self.web.install_into(&mut net);
                    let registry = Rc::new((**self.web.registry()).clone());
                    let browser = Browser::new(registry);
                    let policies: Vec<(BrowserProfile, PolicyAdapter)> = self
                        .config
                        .profiles
                        .iter()
                        .map(|&p| (p, policy_for(&self.web, p)))
                        .collect();

                    loop {
                        let ix = next.fetch_add(1, Ordering::Relaxed);
                        if ix >= n_sites {
                            break;
                        }
                        let m = self.crawl_site(ix, &browser, &mut net, &policies);
                        results.lock()[ix] = Some(m);
                    }
                });
            }
        })
        .expect("crawler threads");

        Dataset {
            profiles: self.config.profiles.clone(),
            rounds_per_profile: self.config.rounds_per_profile,
            sites: results
                .into_inner()
                .into_iter()
                .map(|m| m.expect("every site crawled"))
                .collect(),
        }
    }

    fn crawl_site(
        &self,
        site_ix: usize,
        browser: &Browser,
        net: &mut SimNet,
        policies: &[(BrowserProfile, PolicyAdapter)],
    ) -> SiteMeasurement {
        let site = SiteId::from_usize(site_ix);
        let plan = self.web.plan(site);
        let base_rng = SimRng::new(self.config.seed).fork_idx(site_ix as u64);
        let mut rounds = Vec::new();
        for (profile, policy) in policies {
            let mut per_round = Vec::new();
            for round in 0..self.config.rounds_per_profile {
                let mut rng = base_rng.fork(profile.label()).fork_idx(u64::from(round));
                per_round.push(visit_site_round(
                    &self.web,
                    browser,
                    net,
                    policy,
                    &plan.site.domain,
                    &self.config,
                    round,
                    &mut rng,
                ));
            }
            rounds.push((*profile, per_round));
        }
        SiteMeasurement {
            site,
            domain: plan.site.domain.clone(),
            traffic_weight: plan.site.traffic_weight,
            rounds,
        }
    }

    /// §6.2 external validation: visit `n` traffic-weighted sites with the
    /// human profile (3 pages × 30 s each) and report, per site, how many
    /// standards the human saw that the automated dataset missed.
    pub fn external_validation(&self, dataset: &Dataset, n: usize) -> Vec<(SiteId, usize)> {
        let mut rng = SimRng::new(self.config.seed).fork("external-validation");
        let registry_arc = self.web.registry().clone();
        let registry = Rc::new((*registry_arc).clone());
        let browser = Browser::new(registry.clone());
        let mut net = SimNet::new(SimRng::new(self.config.seed ^ 0x5EED));
        self.web.install_into(&mut net);
        let policy = policy_for(&self.web, BrowserProfile::Default);

        // Traffic-weighted sample without replacement.
        let weights: Vec<f64> = self
            .web
            .core()
            .plans
            .iter()
            .map(|p| p.site.traffic_weight)
            .collect();
        let dist = bfu_util::WeightedIndex::new(&weights).expect("weights");
        let mut chosen: Vec<usize> = Vec::new();
        let mut guard = 0;
        while chosen.len() < n.min(self.web.site_count()) && guard < n * 50 {
            let pick = dist.sample(&mut rng);
            if !chosen.contains(&pick) && !self.web.plan(SiteId::from_usize(pick)).dead {
                chosen.push(pick);
            }
            guard += 1;
        }

        let mut out = Vec::new();
        for site_ix in chosen {
            let site = SiteId::from_usize(site_ix);
            let domain = &self.web.plan(site).site.domain;
            let mut human_standards: HashSet<StandardId> = HashSet::new();
            let mut human = HumanProfile::new(rng.fork_idx(site_ix as u64));
            let mut clock = bfu_util::VirtualClock::new();
            // Home plus up to two prominently-linked pages, 30 s each.
            let mut url = Url::parse(&format!("http://{domain}/")).expect("domain url");
            for _ in 0..3 {
                let Ok(mut page) = browser.load(&mut net, &url, &policy, &mut clock) else {
                    break;
                };
                let report =
                    human.interact(&mut page, &mut net, &policy, &mut clock, 30_000);
                human_standards.extend(
                    page.log
                        .borrow()
                        .features()
                        .into_iter()
                        .map(|f| registry.standard_of(f)),
                );
                match report.navigations.first() {
                    Some(next) if next.registrable_domain() == url.registrable_domain() => {
                        url = next.clone();
                    }
                    _ => break,
                }
            }
            let automated = dataset.sites[site_ix]
                .standards_used(BrowserProfile::Default, &registry);
            let new = human_standards.difference(&automated).count();
            out.push((site, new));
        }
        out
    }
}
