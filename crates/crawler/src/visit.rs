//! One site-round: the paper's 13-page, 390-second measurement procedure.
//!
//! Visit the home page, monkey-test it for 30 virtual seconds, intercept the
//! navigations, BFS to 3 structurally novel same-site pages, repeat — up to
//! 13 pages per round — merging every page's feature log.

use crate::breaker::{Admission, HostBreaker};
use crate::config::{BrowserProfile, CrawlConfig};
use crate::dataset::RoundMeasurement;
use crate::error::CrawlError;
use crate::retry::load_with_retry;
use bfu_blocker::{BlockDecision, BlockerStack, FilterEngine, TrackerCategory, TrackerDb};
use bfu_browser::{Browser, FeatureLog, LoadStats, RequestPolicy};
use bfu_monkey::{CrawlPlanner, GremlinHorde, Interactor};
use bfu_net::{HttpRequest, SimNet, Url};
use bfu_util::{hash_label, SimRng, VirtualClock};
use bfu_webgen::{PartyKind, SyntheticWeb};

/// Adapter: a [`BlockerStack`] as the browser's [`RequestPolicy`].
///
/// Lives here (not in `bfu-blocker`) so the blocker crate stays independent
/// of the browser engine.
#[derive(Debug, Clone, Default)]
pub struct PolicyAdapter(pub BlockerStack);

impl RequestPolicy for PolicyAdapter {
    fn decide(&self, req: &HttpRequest) -> Option<String> {
        match self.0.decide(req) {
            BlockDecision::Allow => None,
            BlockDecision::BlockedByAdblock(rule) => Some(format!("abp:{rule}")),
            BlockDecision::BlockedByTracker(cat) => Some(format!("ghostery:{cat}")),
        }
    }

    fn hiding_selectors(&self, domain: &str) -> Vec<String> {
        self.0.hiding_selectors(domain)
    }
}

/// Build the request policy for a browser profile from the synthetic web's
/// generated blocklists.
pub fn policy_for(web: &SyntheticWeb, profile: BrowserProfile) -> PolicyAdapter {
    let abp = || std::sync::Arc::new(FilterEngine::from_list(&web.lists().easylist));
    let ghostery = || {
        let mut db = TrackerDb::new();
        for (domain, kind) in &web.lists().tracker_entries {
            let cat = match kind {
                PartyKind::Tracker => TrackerCategory::Tracking,
                PartyKind::Analytics => TrackerCategory::Analytics,
                PartyKind::AdNetwork => TrackerCategory::AdTracking,
                PartyKind::Cdn => TrackerCategory::Exempt,
            };
            db.add(domain, cat);
        }
        std::sync::Arc::new(db)
    };
    let stack = match profile {
        BrowserProfile::Default => BlockerStack::none(),
        BrowserProfile::Blocking => BlockerStack::none()
            .with_adblock(abp())
            .with_ghostery(ghostery()),
        BrowserProfile::AdblockOnly => BlockerStack::none().with_adblock(abp()),
        BrowserProfile::GhosteryOnly => BlockerStack::none().with_ghostery(ghostery()),
    };
    PolicyAdapter(stack)
}

/// Crawl one site for one round under one profile.
///
/// Never fails hard: a lost site produces a round carrying its classified
/// [`CrawlError`], mirroring how the paper lost 267 domains — except here
/// the loss itself is a measurement. Supervision per round:
///
/// - the fault context is derived from `(domain, profile, round)`, so the
///   simulated network faults identically however sites are sharded across
///   threads;
/// - every page load goes through the retry policy, paying backoff from the
///   same virtual clock that pays for interaction;
/// - a watchdog bounds the round at twice its nominal interaction budget,
///   so stalls can't hang a worker — the round keeps whatever it measured.
#[allow(clippy::too_many_arguments)]
pub fn visit_site_round(
    web: &SyntheticWeb,
    browser: &Browser,
    net: &mut SimNet,
    policy: &PolicyAdapter,
    profile: BrowserProfile,
    domain: &str,
    config: &CrawlConfig,
    round: u32,
    rng: &mut SimRng,
) -> RoundMeasurement {
    let mut breaker = HostBreaker::new(config.breaker);
    visit_site_round_supervised(
        web,
        browser,
        net,
        policy,
        profile,
        domain,
        config,
        round,
        rng,
        &mut breaker,
    )
}

/// The time slot one round forfeits when its host's breaker skips it: the
/// round watchdog allowance (nominal interaction budget with 2x headroom).
fn round_slot_ms(config: &CrawlConfig) -> u64 {
    config
        .page_budget_ms
        .saturating_mul(config.pages_per_site as u64)
        .saturating_mul(2)
        .max(config.page_budget_ms)
}

/// [`visit_site_round`] under an externally owned circuit breaker.
///
/// The survey creates one [`HostBreaker`] per site crawl and threads it
/// through every profile and round in order, so consecutive trap-class
/// rounds open the breaker and subsequent rounds are skipped as
/// [`CrawlError::CircuitOpen`] losses until the cool-down — paid from the
/// rounds' own virtual time slots — expires and a half-open probe runs.
#[allow(clippy::too_many_arguments)]
pub fn visit_site_round_supervised(
    _web: &SyntheticWeb,
    browser: &Browser,
    net: &mut SimNet,
    policy: &PolicyAdapter,
    profile: BrowserProfile,
    domain: &str,
    config: &CrawlConfig,
    round: u32,
    rng: &mut SimRng,
    breaker: &mut HostBreaker,
) -> RoundMeasurement {
    let wait_ms = match breaker.admit(round_slot_ms(config)) {
        Admission::Skip => {
            return RoundMeasurement::failed_with(round, CrawlError::CircuitOpen);
        }
        Admission::Proceed { wait_ms, .. } => wait_ms,
    };
    let mut clock = VirtualClock::new();
    let start = clock.now();
    // A half-open probe pays the residual cool-down before touching the
    // host; the wait is part of the round's measured interaction time.
    clock.advance(wait_ms);
    let mut merged = FeatureLog::new();
    let mut planner = CrawlPlanner::new(domain);
    let mut pages_visited = 0u32;
    let mut measurement = RoundMeasurement::empty(round);

    net.set_fault_context(
        hash_label(domain) ^ hash_label(profile.label()).rotate_left(17) ^ u64::from(round),
    );

    let Ok(home) = Url::parse(&format!("http://{domain}/")) else {
        return RoundMeasurement::failed_with(round, CrawlError::DeadHost);
    };

    // Watchdog: the round's nominal budget with 2x headroom for page loads,
    // retries, and stalls. Expiry keeps whatever was already measured. Based
    // at the post-wait clock so a half-open probe gets a full window.
    let watchdog = clock.now().plus(round_slot_ms(config));

    // Breadth-first frontier, starting at the home page.
    let mut frontier = vec![home];
    let mut error: Option<CrawlError> = None;
    while let Some(url) = frontier.pop() {
        if pages_visited as usize >= config.pages_per_site {
            break;
        }
        if clock.now() > watchdog {
            if pages_visited == 0 && error.is_none() {
                error = Some(CrawlError::WatchdogExpired);
            }
            break;
        }
        planner.mark_visited(&url);
        let (page, trace) = load_with_retry(
            browser,
            net,
            &url,
            policy,
            &mut clock,
            watchdog,
            &config.retry,
        );
        measurement.attempts += trace.attempts;
        measurement.retries += trace.retries;
        measurement.backoff_ms += trace.backoff_ms;
        let Some(mut page) = page else {
            if pages_visited == 0 {
                error = trace.error; // the home page itself was lost
            }
            continue;
        };
        if pages_visited == 0 {
            if let Some(fatal) = fatal_script_class(&page.stats) {
                // The home page "loaded" but its scripts are unusable — the
                // paper dropped these sites alongside the unreachable ones.
                harvest_budget_stats(&mut measurement, &page.stats);
                error = Some(fatal);
                break;
            }
        }
        pages_visited += 1;

        let mut horde = GremlinHorde::new(rng.fork_idx(u64::from(pages_visited)));
        let report = horde.interact(&mut page, net, policy, &mut clock, config.page_budget_ms);

        merged.merge(&page.log.borrow());
        // Interaction can trip callback budgets too, so harvest after it.
        harvest_budget_stats(&mut measurement, &page.stats);

        // Candidates: intercepted navigations plus static links.
        let mut candidates = report.navigations;
        candidates.extend(page.links());
        let next = planner.select(&candidates, config.fanout, rng);
        // Depth-first order of a bounded frontier equals BFS here because
        // every level fans out the same amount; keep insertion order stable.
        for n in next {
            frontier.insert(0, n);
        }
    }

    measurement.log = merged;
    measurement.pages_visited = pages_visited;
    measurement.interaction_ms = clock.now().since(start);
    measurement.error = error;
    breaker.observe(measurement.error);
    measurement
}

/// Fold one page's budget-trip counters into the round's measurement.
fn harvest_budget_stats(m: &mut RoundMeasurement, stats: &LoadStats) {
    m.script_budget_errors += stats.script_budget_errors + stats.script_oversize_errors;
    m.script_heap_errors += stats.script_heap_errors;
    m.script_depth_errors += stats.script_depth_errors;
}

/// A script failure class that makes the whole page unusable: every script
/// on it failed the same fatal way.
fn fatal_script_class(stats: &LoadStats) -> Option<CrawlError> {
    if stats.scripts_run == 0 {
        return None;
    }
    if stats.script_parse_errors == stats.scripts_run {
        return Some(CrawlError::ScriptSyntax);
    }
    if stats.budget_trips() == stats.scripts_run {
        return Some(CrawlError::ScriptBudget);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_webgen::{SiteId, WebConfig};
    use bfu_webidl::FeatureRegistry;
    use std::rc::Rc;

    fn rig() -> (SyntheticWeb, Browser, SimNet) {
        let web = SyntheticWeb::generate(WebConfig {
            sites: 30,
            seed: 5,
            script_weight: 0,
        });
        let mut net = SimNet::new(SimRng::new(2));
        web.install_into(&mut net);
        let registry = Rc::new((**web.registry()).clone());
        (web, Browser::new(registry), net)
    }

    fn live_site(web: &SyntheticWeb) -> SiteId {
        (0..web.site_count())
            .map(SiteId::from_usize)
            .find(|&s| !web.plan(s).dead && !web.plan(s).no_js)
            .expect("live site exists")
    }

    #[test]
    fn default_round_measures_features() {
        let (web, browser, mut net) = rig();
        let site = live_site(&web);
        let domain = web.plan(site).site.domain.clone();
        let config = CrawlConfig::quick(1);
        let policy = policy_for(&web, BrowserProfile::Default);
        let mut rng = SimRng::new(10);
        let m = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy,
            BrowserProfile::Default,
            &domain,
            &config,
            0,
            &mut rng,
        );
        assert!(!m.failed());
        assert_eq!(m.pages_visited as usize, config.pages_per_site);
        assert!(m.log.distinct_features() > 0, "features observed");
        assert!(m.interaction_ms >= config.page_budget_ms * m.pages_visited as u64);
    }

    #[test]
    fn blocking_round_sees_fewer_or_equal_features() {
        let (web, browser, mut net) = rig();
        let site = live_site(&web);
        let domain = web.plan(site).site.domain.clone();
        let config = CrawlConfig::quick(1);
        let mut rng_a = SimRng::new(10);
        let mut rng_b = SimRng::new(10);
        let default = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy_for(&web, BrowserProfile::Default),
            BrowserProfile::Default,
            &domain,
            &config,
            0,
            &mut rng_a,
        );
        let blocking = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy_for(&web, BrowserProfile::Blocking),
            BrowserProfile::Blocking,
            &domain,
            &config,
            0,
            &mut rng_b,
        );
        assert!(
            blocking.log.distinct_features() <= default.log.distinct_features(),
            "blocking: {} vs default: {}",
            blocking.log.distinct_features(),
            default.log.distinct_features()
        );
    }

    #[test]
    fn dead_site_round_is_failed() {
        let (web, browser, mut net) = rig();
        let dead = (0..web.site_count())
            .map(SiteId::from_usize)
            .find(|&s| web.plan(s).dead);
        let Some(dead) = dead else { return }; // none in this tiny web
        let domain = web.plan(dead).site.domain.clone();
        let config = CrawlConfig::quick(1);
        let policy = policy_for(&web, BrowserProfile::Default);
        let mut rng = SimRng::new(3);
        let m = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy,
            BrowserProfile::Default,
            &domain,
            &config,
            0,
            &mut rng,
        );
        assert!(m.failed());
        assert_eq!(m.error, Some(CrawlError::DeadHost));
        assert_eq!(m.pages_visited, 0);
        assert_eq!(m.retries, 0, "dead hosts are permanent, never retried");
    }

    #[test]
    fn rounds_are_seed_deterministic() {
        let run = || {
            let (web, browser, mut net) = rig();
            let site = live_site(&web);
            let domain = web.plan(site).site.domain.clone();
            let config = CrawlConfig::quick(1);
            let policy = policy_for(&web, BrowserProfile::Default);
            let mut rng = SimRng::new(42);
            let m = visit_site_round(
                &web,
                &browser,
                &mut net,
                &policy,
                BrowserProfile::Default,
                &domain,
                &config,
                0,
                &mut rng,
            );
            (m.log.total_invocations(), m.pages_visited, m.interaction_ms)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn flaky_host_recovers_via_retry() {
        use bfu_net::{FaultKind, HostFault};
        let (web, browser, mut net) = rig();
        let site = live_site(&web);
        let domain = web.plan(site).site.domain.clone();
        let faults = net
            .faults()
            .clone()
            .with_program(&domain, HostFault::flaky(FaultKind::Reset, 2));
        net.set_faults(faults);
        let config = CrawlConfig::quick(1);
        let policy = policy_for(&web, BrowserProfile::Default);
        let mut rng = SimRng::new(10);
        let m = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy,
            BrowserProfile::Default,
            &domain,
            &config,
            0,
            &mut rng,
        );
        assert!(
            !m.failed(),
            "retry must beat a twice-flaky host: {:?}",
            m.error
        );
        assert_eq!(m.retries, 2);
        assert_eq!(m.backoff_ms, 250 + 500, "exponential backoff paid in full");
        assert_eq!(m.pages_visited as usize, config.pages_per_site);
    }

    #[test]
    fn flaky_host_without_retries_is_lost() {
        use crate::retry::RetryPolicy;
        use bfu_net::{FaultKind, HostFault};
        let (web, browser, mut net) = rig();
        let site = live_site(&web);
        let domain = web.plan(site).site.domain.clone();
        let faults = net
            .faults()
            .clone()
            .with_program(&domain, HostFault::flaky(FaultKind::Reset, 2));
        net.set_faults(faults);
        let mut config = CrawlConfig::quick(1);
        config.retry = RetryPolicy::none();
        let policy = policy_for(&web, BrowserProfile::Default);
        let mut rng = SimRng::new(10);
        let m = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy,
            BrowserProfile::Default,
            &domain,
            &config,
            0,
            &mut rng,
        );
        assert_eq!(m.error, Some(CrawlError::ConnectionReset));
        assert_eq!(m.retries, 0);
    }

    #[test]
    fn stalls_consume_budget_and_classify() {
        use crate::retry::RetryPolicy;
        use bfu_net::{FaultKind, HostFault};
        let (web, browser, mut net) = rig();
        let site = live_site(&web);
        let domain = web.plan(site).site.domain.clone();
        let faults = net.faults().clone().with_program(
            &domain,
            HostFault::flaky(FaultKind::Stall, 99).with_stall_ms(5_000),
        );
        net.set_faults(faults);
        let mut config = CrawlConfig::quick(1);
        config.retry = RetryPolicy::none();
        let policy = policy_for(&web, BrowserProfile::Default);
        let mut rng = SimRng::new(10);
        let m = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy,
            BrowserProfile::Default,
            &domain,
            &config,
            0,
            &mut rng,
        );
        assert_eq!(m.error, Some(CrawlError::Stall));
        assert!(m.interaction_ms >= 5_000, "the stall burned virtual time");
        assert_eq!(m.pages_visited, 0);
    }

    #[test]
    fn all_scripts_unparseable_classifies_as_script_syntax() {
        use bfu_net::HttpResponse;
        let (web, browser, _) = rig();
        let mut net = SimNet::new(SimRng::new(1));
        net.register(
            "broken.test",
            std::sync::Arc::new(|_: &HttpRequest| {
                HttpResponse::html(
                    "<html><head><script>)]]] this is not javascript</script></head>\
                     <body><p>hi</p></body></html>",
                )
            }),
        );
        let config = CrawlConfig::quick(1);
        let policy = policy_for(&web, BrowserProfile::Default);
        let mut rng = SimRng::new(4);
        let m = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy,
            BrowserProfile::Default,
            "broken.test",
            &config,
            0,
            &mut rng,
        );
        assert_eq!(m.error, Some(CrawlError::ScriptSyntax));
        assert_eq!(m.pages_visited, 0, "syntax-error sites are dropped whole");
    }

    #[test]
    fn runaway_scripts_classify_as_script_budget() {
        use bfu_net::HttpResponse;
        let (web, browser, _) = rig();
        let mut net = SimNet::new(SimRng::new(1));
        net.register(
            "spin.test",
            std::sync::Arc::new(|_: &HttpRequest| {
                HttpResponse::html(
                    "<html><head><script>while (true) { var x = 1; }</script></head>\
                     <body></body></html>",
                )
            }),
        );
        let config = CrawlConfig::quick(1);
        let policy = policy_for(&web, BrowserProfile::Default);
        let mut rng = SimRng::new(4);
        let m = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy,
            BrowserProfile::Default,
            "spin.test",
            &config,
            0,
            &mut rng,
        );
        assert_eq!(m.error, Some(CrawlError::ScriptBudget));
    }

    #[test]
    fn registry_features_match_planned_standards_roughly() {
        // Features the crawl observes must be a subset of the site's planned
        // features plus the documented createElement-style scaffolding.
        let (web, browser, mut net) = rig();
        let site = live_site(&web);
        let plan = web.plan(site);
        let domain = plan.site.domain.clone();
        let config = CrawlConfig::quick(1);
        let policy = policy_for(&web, BrowserProfile::Default);
        let mut rng = SimRng::new(7);
        let m = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy,
            BrowserProfile::Default,
            &domain,
            &config,
            0,
            &mut rng,
        );
        let registry = FeatureRegistry::build();
        let planned: std::collections::HashSet<_> =
            plan.placements.iter().map(|p| p.feature).collect();
        let scaffolding = ["createElement", "appendChild"];
        for f in m.log.features() {
            let info = registry.feature(f);
            assert!(
                planned.contains(&f) || scaffolding.contains(&info.member.as_str()),
                "unplanned feature observed: {}",
                info.name
            );
        }
    }
}
