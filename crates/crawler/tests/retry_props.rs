//! Property tests for the retry policy and the supervised page load.
//!
//! Checked for every generated case: attempt counts respect the policy
//! bound, backoff is monotone/capped and fully paid from the virtual clock,
//! permanent failure classes are never retried, and identical inputs yield
//! identical attempt traces.

use bfu_browser::{AllowAll, Browser};
use bfu_crawler::{load_with_retry, AttemptTrace, CrawlError, RetryPolicy};
use bfu_net::{FaultKind, FaultPlan, HostFault, HttpRequest, HttpResponse, SimNet, Url};
use bfu_util::{SimRng, VirtualClock};
use bfu_webidl::FeatureRegistry;
use proptest::prelude::*;
use std::rc::Rc;
use std::sync::OnceLock;

const HOST: &str = "prop.test";

fn registry() -> Rc<FeatureRegistry> {
    static REGISTRY: OnceLock<FeatureRegistry> = OnceLock::new();
    Rc::new(REGISTRY.get_or_init(FeatureRegistry::build).clone())
}

/// A network with one host that fails its first `fail_first` exchanges with
/// `kind`, then serves a plain scriptless page.
fn flaky_net(kind: FaultKind, fail_first: u64, seed: u64) -> SimNet {
    let mut net = SimNet::new(SimRng::new(seed));
    net.register(
        HOST,
        std::sync::Arc::new(|_: &HttpRequest| {
            HttpResponse::html("<html><body><p>steady</p></body></html>")
        }),
    );
    let mut plan = FaultPlan::none().with_seed(7);
    plan.set_program(HOST, HostFault::flaky(kind, fail_first).with_stall_ms(500));
    net.set_faults(plan);
    net.set_fault_context(99);
    net
}

fn supervised_load(net: &mut SimNet, policy: &RetryPolicy) -> (bool, AttemptTrace, u64) {
    let browser = Browser::new(registry());
    let url = Url::parse(&format!("http://{HOST}/")).expect("static url parses");
    let mut clock = VirtualClock::new();
    let start = clock.now();
    let deadline = start.plus(10_000_000);
    let (page, trace) =
        load_with_retry(&browser, net, &url, &AllowAll, &mut clock, deadline, policy);
    (page.is_some(), trace, clock.now().since(start))
}

fn transient_kind(ix: u64) -> FaultKind {
    match ix % 3 {
        0 => FaultKind::Reset,
        1 => FaultKind::Stall,
        _ => FaultKind::Truncate,
    }
}

proptest! {
    #[test]
    fn attempts_never_exceed_the_bound(
        max_attempts in 1u32..6,
        fail_first in 0u64..8,
        kind_ix in 0u64..3,
    ) {
        let policy = RetryPolicy {
            max_attempts,
            base_backoff_ms: 100,
            max_backoff_ms: 1_000,
        };
        let mut net = flaky_net(transient_kind(kind_ix), fail_first, 5);
        let (ok, trace, _) = supervised_load(&mut net, &policy);
        prop_assert!(trace.attempts >= 1);
        prop_assert!(trace.attempts <= max_attempts);
        prop_assert_eq!(trace.retries, trace.attempts - 1);
        // Recovery exactly when the flaky window fits inside the bound.
        let expected_ok = fail_first < u64::from(max_attempts);
        prop_assert_eq!(ok, expected_ok, "fail_first={} bound={}", fail_first, max_attempts);
        prop_assert_eq!(trace.error.is_none(), ok);
        if !ok {
            prop_assert_eq!(trace.attempts, max_attempts, "transient failures exhaust the bound");
        }
    }

    #[test]
    fn backoff_is_monotone_capped_and_fully_paid(
        base in 0u64..2_000,
        cap in 0u64..10_000,
        fail_first in 1u64..6,
    ) {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: base,
            max_backoff_ms: cap,
        };
        // Pure schedule: non-decreasing and never above the cap.
        for ix in 0..16u32 {
            prop_assert!(policy.backoff_ms(ix) <= cap);
            if ix > 0 {
                prop_assert!(policy.backoff_ms(ix) >= policy.backoff_ms(ix - 1));
            }
        }
        // Paid schedule: the trace's total equals the sum of the per-retry
        // backoffs, and the virtual clock advanced by at least that much.
        let mut net = flaky_net(FaultKind::Reset, fail_first, 11);
        let (ok, trace, elapsed) = supervised_load(&mut net, &policy);
        prop_assert!(ok, "6 attempts beat a <=5-deep flaky window");
        let expected: u64 = (0..trace.retries).map(|ix| policy.backoff_ms(ix)).sum();
        prop_assert_eq!(trace.backoff_ms, expected);
        prop_assert!(
            elapsed >= trace.backoff_ms,
            "clock advanced {} ms but {} ms of backoff was claimed",
            elapsed,
            trace.backoff_ms
        );
    }

    #[test]
    fn permanent_classes_are_never_retried(attempts_made in 1u32..10) {
        let policy = RetryPolicy::default();
        for error in [
            CrawlError::DeadHost,
            CrawlError::HttpError(500),
            CrawlError::ScriptSyntax,
            CrawlError::ScriptBudget,
            CrawlError::WatchdogExpired,
        ] {
            prop_assert!(!error.is_transient());
            prop_assert!(!policy.should_retry(error, attempts_made));
        }
        // And a dead host observed end-to-end fails on the first attempt.
        let mut net = SimNet::new(SimRng::new(3));
        net.register(
            HOST,
            std::sync::Arc::new(|_: &HttpRequest| HttpResponse::html("<html></html>")),
        );
        let mut plan = FaultPlan::none();
        plan.kill_host(HOST);
        net.set_faults(plan);
        let (ok, trace, _) = supervised_load(&mut net, &policy);
        prop_assert!(!ok);
        prop_assert_eq!(trace.attempts, 1);
        prop_assert_eq!(trace.retries, 0);
        prop_assert_eq!(trace.error, Some(CrawlError::DeadHost));
    }

    #[test]
    fn identical_inputs_yield_identical_traces(
        fail_first in 0u64..8,
        kind_ix in 0u64..3,
        net_seed in 0u64..1_000,
    ) {
        let policy = RetryPolicy::default();
        let kind = transient_kind(kind_ix);
        // Different SimNet RNG seeds, same fault coordinates: the trace is a
        // function of the fault plan, not of shared RNG state.
        let (ok_a, trace_a, elapsed_a) =
            supervised_load(&mut flaky_net(kind, fail_first, net_seed), &policy);
        let (ok_b, trace_b, _) =
            supervised_load(&mut flaky_net(kind, fail_first, net_seed ^ 0xDEAD), &policy);
        prop_assert_eq!(ok_a, ok_b);
        prop_assert_eq!(trace_a, trace_b);
        // Simulated RTT jitter comes from the net's own RNG, so elapsed time
        // may differ between seeds — but never by less than the backoff paid.
        prop_assert!(elapsed_a >= trace_a.backoff_ms);
        // A truly identical world reproduces the elapsed time too.
        let (_, _, elapsed_c) =
            supervised_load(&mut flaky_net(kind, fail_first, net_seed), &policy);
        prop_assert_eq!(elapsed_a, elapsed_c);
    }
}
