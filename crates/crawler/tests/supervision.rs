//! Crawl supervision under an adversarial network: a 50-site survey with
//! flaky hosts, stalls, truncation, and background resets must complete
//! without panicking, classify every loss, recover transient sites via
//! retry, and produce byte-identical results regardless of thread count.

use bfu_crawler::{
    BrowserProfile, CrawlConfig, CrawlError, Dataset, RetryPolicy, SiteOutcome, Survey,
};
use bfu_net::{FaultKind, FaultPlan, HostFault};
use bfu_webgen::{SiteId, SyntheticWeb, WebConfig};

const SITES: usize = 50;
const WEB_SEED: u64 = 2024;

fn web() -> SyntheticWeb {
    SyntheticWeb::generate(WebConfig {
        sites: SITES,
        seed: WEB_SEED,
        script_weight: 0,
    })
}

/// The first `n` living domains of the fixture web, in site order.
fn living_domains(web: &SyntheticWeb, n: usize) -> Vec<String> {
    (0..web.site_count())
        .map(SiteId::from_usize)
        .filter(|&s| !web.plan(s).dead)
        .map(|s| web.plan(s).site.domain.clone())
        .take(n)
        .collect()
}

/// Fault overlay: two flaky-then-recovering hosts (beatable by the default
/// 3-attempt retry), one permanent staller, one permanent truncator, one
/// host killed outright, plus a background reset probability on everyone.
fn overlay(targets: &[String]) -> FaultPlan {
    let mut plan = FaultPlan::none()
        .with_seed(77)
        .with_reset_chance(0.002)
        .with_program(&targets[0], HostFault::flaky(FaultKind::Reset, 2))
        .with_program(&targets[1], HostFault::flaky(FaultKind::Truncate, 1))
        .with_program(
            &targets[2],
            HostFault::random(FaultKind::Stall, 1.0).with_stall_ms(3_000),
        )
        .with_program(&targets[3], HostFault::random(FaultKind::Truncate, 1.0));
    plan.kill_host(&targets[4]);
    plan
}

fn config(threads: usize) -> CrawlConfig {
    CrawlConfig {
        rounds_per_profile: 2,
        pages_per_site: 4,
        fanout: 3,
        page_budget_ms: 8_000,
        profiles: vec![BrowserProfile::Default],
        threads,
        seed: 4242,
        retry: RetryPolicy::default(),
        breaker: bfu_crawler::BreakerPolicy::default(),
        browser: bfu_crawler::BrowserConfig::default(),
        compile_cache: true,
    }
}

fn run_survey(threads: usize) -> Dataset {
    let web = web();
    let targets = living_domains(&web, 5);
    assert_eq!(targets.len(), 5, "fixture web needs 5 living sites");
    let faults = overlay(&targets);
    Survey::new(web, config(threads)).with_faults(faults).run()
}

fn site_by_domain<'a>(dataset: &'a Dataset, domain: &str) -> &'a bfu_crawler::SiteMeasurement {
    dataset
        .sites
        .iter()
        .find(|s| s.domain == domain)
        .unwrap_or_else(|| panic!("{domain} missing from dataset"))
}

#[test]
fn faulted_survey_completes_and_classifies_every_loss() {
    let dataset = run_survey(4);
    let health = dataset.health();

    assert_eq!(health.sites_total, SITES);
    assert_eq!(
        health.sites_completed + health.sites_failed + health.sites_panicked,
        health.sites_total,
        "every site must land in exactly one bucket"
    );
    assert_eq!(health.sites_panicked, 0, "no site crawl may panic");
    assert_eq!(
        health.failures_by_class.iter().sum::<usize>(),
        health.sites_failed,
        "every failed site must carry a class"
    );
    assert!(health.sites_failed > 0, "the overlay must cost some sites");
    assert!(
        health.sites_completed > SITES / 2,
        "most of the web should still be measurable: {health:?}"
    );
    // The survey retried something and paid for it in virtual time.
    assert!(health.total_retries > 0);
    assert!(health.total_backoff_ms > 0);
}

#[test]
fn transient_hosts_recover_and_permanent_hosts_fail_with_their_class() {
    let web = web();
    let targets = living_domains(&web, 5);
    let dataset = run_survey(4);

    // Flaky hosts (fail-2-then-recover reset, fail-1 truncate) are beaten by
    // the default 3-attempt retry: measured, with retries on the books.
    for flaky in &targets[0..2] {
        let site = site_by_domain(&dataset, flaky);
        assert_eq!(
            site.outcome,
            SiteOutcome::Completed,
            "{flaky} should recover via retry"
        );
        let retries: u32 = site
            .rounds
            .iter()
            .flat_map(|(_, rounds)| rounds.iter())
            .map(|r| r.retries)
            .sum();
        assert!(retries > 0, "{flaky} must have needed retries");
    }

    // The permanent staller burns clock on every attempt and stays lost.
    let stalled = site_by_domain(&dataset, &targets[2]);
    assert_eq!(stalled.outcome, SiteOutcome::Failed(CrawlError::Stall));
    for (_, rounds) in &stalled.rounds {
        for r in rounds {
            assert!(
                r.interaction_ms >= 3_000,
                "stalls must consume virtual time, got {} ms",
                r.interaction_ms
            );
        }
    }

    // The permanent truncator exhausts its retries and keeps its class.
    let truncated = site_by_domain(&dataset, &targets[3]);
    assert_eq!(
        truncated.outcome,
        SiteOutcome::Failed(CrawlError::Truncated)
    );

    // The killed host refuses every connection and is never retried.
    let dead = site_by_domain(&dataset, &targets[4]);
    assert_eq!(dead.outcome, SiteOutcome::Failed(CrawlError::DeadHost));
    for (_, rounds) in &dead.rounds {
        for r in rounds {
            assert_eq!(r.retries, 0, "dead hosts are permanent: no retries");
        }
    }

    // Generation-dead sites classify the same way as killed ones.
    for (ix, site) in dataset.sites.iter().enumerate() {
        if web.plan(SiteId::from_usize(ix)).dead {
            assert_eq!(
                site.outcome,
                SiteOutcome::Failed(CrawlError::DeadHost),
                "{} is dead by construction",
                site.domain
            );
        }
    }
}

#[test]
fn faulted_survey_is_invariant_under_thread_count() {
    let single = run_survey(1);
    let eight = run_survey(8);
    assert_eq!(
        single.fingerprint(),
        eight.fingerprint(),
        "fault scheduling must not depend on thread layout"
    );
    // Spot-check beyond the fingerprint: identical outcome sequences.
    let outcomes =
        |d: &Dataset| -> Vec<SiteOutcome> { d.sites.iter().map(|s| s.outcome).collect() };
    assert_eq!(outcomes(&single), outcomes(&eight));
    assert_eq!(single.total_invocations(), eight.total_invocations());
    assert_eq!(single.total_pages(), eight.total_pages());
}
