//! A self-contained benchmarking shim.
//!
//! Provides the subset of the [criterion](https://docs.rs/criterion) API the
//! workspace benches use — `Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! timed with `std::time::Instant`. The build environment has no network
//! access, so the real crate cannot be fetched; this shim keeps
//! `cargo bench` runnable and the bench files compiling.
//!
//! Measurement model: each benchmark is warmed up once, then timed over
//! `sample_size` samples of an adaptive batch, reporting the per-iteration
//! mean and min. No statistical analysis, plotting, or baseline storage.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into(), sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// End the group (a no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive to prevent the
    /// optimizer from deleting the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + batch sizing: aim for samples of at least ~1ms so very
        // cheap routines are not dominated by timer resolution.
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let once = warm_start.elapsed();
        self.iters_per_sample = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("  {id}: no samples (closure never called iter)");
        return;
    }
    let per_iter = |d: &Duration| d.as_nanos() as f64 / bencher.iters_per_sample as f64;
    let mean = bencher.samples.iter().map(per_iter).sum::<f64>() / bencher.samples.len() as f64;
    let min = bencher
        .samples
        .iter()
        .map(per_iter)
        .fold(f64::INFINITY, f64::min);
    eprintln!(
        "  {id}: mean {} min {} ({} samples x {} iters)",
        fmt_ns(mean),
        fmt_ns(min),
        bencher.samples.len(),
        bencher.iters_per_sample
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Re-export so `criterion::black_box` keeps working if benches use it.
pub use std::hint::black_box;

/// Collect benchmark functions into a runner function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function(format!("fmt_{}", 1), |b| b.iter(|| 2 + 2));
        g.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(1_500.0), "1.500us");
        assert_eq!(fmt_ns(2_500_000.0), "2.500ms");
        assert_eq!(fmt_ns(3_200_000_000.0), "3.200s");
    }
}
