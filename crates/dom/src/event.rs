//! Event model: listener registry and capture/target/bubble dispatch.
//!
//! The DOM crate is engine-agnostic: listeners are opaque `u32` handles
//! (the browser maps them to interpreter closures). Dispatching an event
//! computes the ordered list of `(node, handle, phase)` invocations the
//! engine must perform, honoring `stopPropagation`-style early exit when the
//! engine reports it.

use crate::node::{Document, NodeId};
use std::collections::HashMap;

/// Phase of event flow at which a listener fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// Root → parent-of-target.
    Capture,
    /// At the target itself.
    Target,
    /// Parent-of-target → root.
    Bubble,
}

/// One listener invocation the engine must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventResult {
    /// Node whose listener fires.
    pub node: NodeId,
    /// Opaque listener handle registered by the engine.
    pub handle: u32,
    /// Flow phase.
    pub phase: EventPhase,
}

#[derive(Debug, Clone, Copy)]
struct ListenerEntry {
    handle: u32,
    capture: bool,
}

/// Listener registry for one document.
#[derive(Debug, Clone, Default)]
pub struct EventRegistry {
    listeners: HashMap<(NodeId, String), Vec<ListenerEntry>>,
}

impl EventRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a listener handle for `(node, event_type)`.
    pub fn add_listener(&mut self, node: NodeId, event_type: &str, handle: u32, capture: bool) {
        self.listeners
            .entry((node, event_type.to_owned()))
            .or_default()
            .push(ListenerEntry { handle, capture });
    }

    /// Remove a specific listener.
    pub fn remove_listener(&mut self, node: NodeId, event_type: &str, handle: u32) {
        if let Some(v) = self.listeners.get_mut(&(node, event_type.to_owned())) {
            v.retain(|e| e.handle != handle);
        }
    }

    /// Whether any listener exists for `(node, event_type)`.
    pub fn has_listener(&self, node: NodeId, event_type: &str) -> bool {
        self.listeners
            .get(&(node, event_type.to_owned()))
            .is_some_and(|v| !v.is_empty())
    }

    /// Nodes having at least one listener for `event_type`.
    pub fn nodes_listening(&self, event_type: &str) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .listeners
            .iter()
            .filter(|((_, t), v)| t == event_type && !v.is_empty())
            .map(|((n, _), _)| *n)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Total registered listeners.
    pub fn listener_count(&self) -> usize {
        self.listeners.values().map(Vec::len).sum()
    }

    /// Compute the full invocation sequence for dispatching `event_type` at
    /// `target`: capture phase from the root down, target phase, then bubble
    /// phase back up.
    pub fn dispatch_order(
        &self,
        doc: &Document,
        target: NodeId,
        event_type: &str,
    ) -> Vec<EventResult> {
        // Path from root to target (inclusive).
        let mut path = Vec::new();
        let mut cur = Some(target);
        while let Some(n) = cur {
            path.push(n);
            cur = doc.parent(n);
        }
        path.reverse();

        let mut out = Vec::new();
        // Capture: ancestors top-down, capture listeners only.
        for &n in &path[..path.len().saturating_sub(1)] {
            self.collect(n, event_type, true, EventPhase::Capture, &mut out);
        }
        // Target: both kinds, capture listeners first (DOM spec order).
        self.collect(target, event_type, true, EventPhase::Target, &mut out);
        self.collect(target, event_type, false, EventPhase::Target, &mut out);
        // Bubble: ancestors bottom-up, non-capture listeners only.
        for &n in path[..path.len().saturating_sub(1)].iter().rev() {
            self.collect(n, event_type, false, EventPhase::Bubble, &mut out);
        }
        out
    }

    fn collect(
        &self,
        node: NodeId,
        event_type: &str,
        capture: bool,
        phase: EventPhase,
        out: &mut Vec<EventResult>,
    ) {
        if let Some(entries) = self.listeners.get(&(node, event_type.to_owned())) {
            for e in entries {
                if e.capture == capture {
                    out.push(EventResult {
                        node,
                        handle: e.handle,
                        phase,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Document;

    fn tree() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let html = doc.create_element("html");
        let body = doc.create_element("body");
        let button = doc.create_element("button");
        doc.append_child(doc.root(), html);
        doc.append_child(html, body);
        doc.append_child(body, button);
        (doc, html, body, button)
    }

    #[test]
    fn dispatch_order_capture_target_bubble() {
        let (doc, html, body, button) = tree();
        let mut reg = EventRegistry::new();
        reg.add_listener(html, "click", 1, true); // capture
        reg.add_listener(body, "click", 2, false); // bubble
        reg.add_listener(button, "click", 3, false); // target
        reg.add_listener(button, "click", 4, true); // target (capture flag)
        let order = reg.dispatch_order(&doc, button, "click");
        let phases: Vec<(u32, EventPhase)> = order.iter().map(|r| (r.handle, r.phase)).collect();
        assert_eq!(
            phases,
            vec![
                (1, EventPhase::Capture),
                (4, EventPhase::Target),
                (3, EventPhase::Target),
                (2, EventPhase::Bubble),
            ]
        );
    }

    #[test]
    fn unrelated_event_types_ignored() {
        let (doc, _, body, button) = tree();
        let mut reg = EventRegistry::new();
        reg.add_listener(body, "scroll", 1, false);
        assert!(reg.dispatch_order(&doc, button, "click").is_empty());
    }

    #[test]
    fn remove_listener() {
        let (doc, _, body, button) = tree();
        let mut reg = EventRegistry::new();
        reg.add_listener(body, "click", 7, false);
        assert!(reg.has_listener(body, "click"));
        reg.remove_listener(body, "click", 7);
        assert!(!reg.has_listener(body, "click"));
        assert!(reg.dispatch_order(&doc, button, "click").is_empty());
    }

    #[test]
    fn nodes_listening_sorted_dedup() {
        let (_, html, body, _) = tree();
        let mut reg = EventRegistry::new();
        reg.add_listener(body, "click", 1, false);
        reg.add_listener(body, "click", 2, false);
        reg.add_listener(html, "click", 3, true);
        assert_eq!(reg.nodes_listening("click"), vec![html, body]);
        assert_eq!(reg.listener_count(), 3);
    }

    #[test]
    fn dispatch_at_root_is_target_only() {
        let (doc, _, _, _) = tree();
        let mut reg = EventRegistry::new();
        reg.add_listener(doc.root(), "load", 9, false);
        let order = reg.dispatch_order(&doc, doc.root(), "load");
        assert_eq!(order.len(), 1);
        assert_eq!(order[0].phase, EventPhase::Target);
    }
}
