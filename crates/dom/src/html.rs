//! HTML parser and serializer.
//!
//! A pragmatic tag-soup parser for the HTML the synthetic web generates:
//! nested elements with attributes, text, comments, void elements, raw-text
//! handling for `<script>` (content is captured verbatim until the closing
//! tag), and recovery from mismatched close tags (close the nearest matching
//! open element, ignore strays) — enough robustness that fault-injected
//! truncated documents still parse into *something*, like real browsers.

use crate::node::{Document, NodeData, NodeId};

/// Elements that never have children or close tags.
const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Parse an HTML string into a fresh [`Document`].
pub fn parse(input: &str) -> Document {
    let mut doc = Document::new();
    let root = doc.root();
    let mut stack: Vec<NodeId> = vec![root];
    let bytes = input;

    let mut i = 0usize;
    let len = bytes.len();
    while i < len {
        if bytes[i..].starts_with("<!--") {
            let end = bytes[i + 4..].find("-->").map(|e| i + 4 + e);
            let (text, next) = match end {
                Some(e) => (&bytes[i + 4..e], e + 3),
                None => (&bytes[i + 4..], len),
            };
            let c = doc.create_comment(text);
            let parent = *stack.last().expect("stack never empty");
            doc.append_child(parent, c);
            i = next;
        } else if bytes[i..].starts_with("<!") {
            // DOCTYPE and friends: skip to '>'.
            i = bytes[i..].find('>').map_or(len, |e| i + e + 1);
        } else if bytes[i..].starts_with("</") {
            let end = bytes[i..].find('>').map_or(len, |e| i + e);
            let name = bytes[i + 2..end].trim().to_ascii_lowercase();
            // Close the nearest matching open element; ignore strays.
            if let Some(pos) = stack
                .iter()
                .rposition(|&n| doc.tag(n) == Some(name.as_str()))
            {
                stack.truncate(pos);
                if stack.is_empty() {
                    stack.push(root);
                }
            }
            i = (end + 1).min(len);
        } else if bytes[i..].starts_with('<')
            && bytes[i + 1..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic())
        {
            let end = bytes[i..].find('>').map_or(len, |e| i + e);
            let tag_body = &bytes[i + 1..end];
            let self_closing = tag_body.ends_with('/');
            let tag_body = tag_body.trim_end_matches('/');
            let (name, attrs_str) = match tag_body.find(|c: char| c.is_ascii_whitespace()) {
                Some(sp) => (&tag_body[..sp], &tag_body[sp..]),
                None => (tag_body, ""),
            };
            let name = name.to_ascii_lowercase();
            let el = doc.create_element(&name);
            for (k, v) in parse_attrs(attrs_str) {
                doc.set_attr(el, &k, &v);
            }
            let parent = *stack.last().expect("stack never empty");
            doc.append_child(parent, el);
            i = (end + 1).min(len);

            if name == "script" || name == "style" {
                // Raw text until the matching close tag.
                let close = format!("</{name}");
                let rel = bytes[i..].to_ascii_lowercase().find(&close);
                let (raw, next) = match rel {
                    Some(r) => (&bytes[i..i + r], i + r),
                    None => (&bytes[i..], len),
                };
                if !raw.is_empty() {
                    let t = doc.create_text(raw);
                    doc.append_child(el, t);
                }
                // Consume the close tag itself.
                i = bytes[next..].find('>').map_or(len, |e| next + e + 1);
            } else if !self_closing && !VOID_ELEMENTS.contains(&name.as_str()) {
                stack.push(el);
            }
        } else {
            // Text run until the next '<'. A lone '<' that didn't open a
            // comment/tag (e.g. `<3`) is literal text: search from the next
            // character so the scan always advances.
            let first = bytes[i..].chars().next().expect("i < len");
            let from = i + first.len_utf8();
            let end = if first == '<' {
                bytes[from..].find('<').map_or(len, |e| from + e)
            } else {
                bytes[i..].find('<').map_or(len, |e| i + e)
            };
            let text = &bytes[i..end];
            if !text.trim().is_empty() {
                let t = doc.create_text(text);
                let parent = *stack.last().expect("stack never empty");
                doc.append_child(parent, t);
            }
            i = end;
        }
    }
    doc
}

fn parse_attrs(s: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let name_end = rest
            .find(|c: char| c == '=' || c.is_ascii_whitespace())
            .unwrap_or(rest.len());
        let name = rest[..name_end].to_ascii_lowercase();
        rest = rest[name_end..].trim_start();
        if name.is_empty() {
            break;
        }
        if let Some(r) = rest.strip_prefix('=') {
            let r = r.trim_start();
            let (value, after) = if let Some(q) = r.strip_prefix('"') {
                match q.find('"') {
                    Some(e) => (q[..e].to_owned(), &q[e + 1..]),
                    None => (q.to_owned(), ""),
                }
            } else if let Some(q) = r.strip_prefix('\'') {
                match q.find('\'') {
                    Some(e) => (q[..e].to_owned(), &q[e + 1..]),
                    None => (q.to_owned(), ""),
                }
            } else {
                let e = r.find(|c: char| c.is_ascii_whitespace()).unwrap_or(r.len());
                (r[..e].to_owned(), &r[e..])
            };
            out.push((name, value));
            rest = after.trim_start();
        } else {
            out.push((name, String::new()));
        }
    }
    out
}

/// Serialize a subtree back to HTML.
pub fn serialize(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &mut out);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match doc.data(id) {
        NodeData::Document => {
            for &c in doc.children(id) {
                write_node(doc, c, out);
            }
        }
        NodeData::Text(t) => out.push_str(t),
        NodeData::Comment(t) => {
            out.push_str("<!--");
            out.push_str(t);
            out.push_str("-->");
        }
        NodeData::Element { tag, attrs } => {
            out.push('<');
            out.push_str(tag);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                if !v.is_empty() {
                    out.push_str("=\"");
                    out.push_str(v);
                    out.push('"');
                }
            }
            out.push('>');
            if !VOID_ELEMENTS.contains(&tag.as_str()) {
                for &c in doc.children(id) {
                    write_node(doc, c, out);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::Selector;

    #[test]
    fn parses_nested_structure() {
        let doc = parse("<html><head></head><body><div id=\"a\"><p>hi</p></div></body></html>");
        let div = Selector::parse("#a").unwrap().query_first(&doc).unwrap();
        assert_eq!(doc.tag(div), Some("div"));
        let p = doc.children(div)[0];
        assert_eq!(doc.tag(p), Some("p"));
        assert_eq!(doc.text_content(p), "hi");
    }

    #[test]
    fn attributes_quoted_unquoted_bare() {
        let doc = parse(r#"<input type=text name='q' disabled data-k="v w">"#);
        let input = doc.first_by_tag("input").unwrap();
        assert_eq!(doc.attr(input, "type"), Some("text"));
        assert_eq!(doc.attr(input, "name"), Some("q"));
        assert_eq!(doc.attr(input, "disabled"), Some(""));
        assert_eq!(doc.attr(input, "data-k"), Some("v w"));
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse("<body><img src=a.png><p>text</p></body>");
        let body = doc.first_by_tag("body").unwrap();
        assert_eq!(doc.children(body).len(), 2, "img and p are siblings");
    }

    #[test]
    fn script_content_is_raw_text() {
        let doc = parse("<script>if (a < b) { go(); }</script><p>after</p>");
        let script = doc.first_by_tag("script").unwrap();
        assert_eq!(doc.text_content(script), "if (a < b) { go(); }");
        assert!(
            doc.first_by_tag("p").is_some(),
            "parsing continues after script"
        );
    }

    #[test]
    fn comments_preserved() {
        let doc = parse("<body><!-- note --></body>");
        let body = doc.first_by_tag("body").unwrap();
        assert!(
            matches!(doc.data(doc.children(body)[0]), NodeData::Comment(c) if c.trim() == "note")
        );
    }

    #[test]
    fn doctype_skipped() {
        let doc = parse("<!DOCTYPE html><html></html>");
        assert!(doc.first_by_tag("html").is_some());
    }

    #[test]
    fn recovers_from_stray_close_tags() {
        let doc = parse("<div></span><p>ok</p></div>");
        assert!(doc.first_by_tag("p").is_some());
        let div = doc.first_by_tag("div").unwrap();
        let p = doc.first_by_tag("p").unwrap();
        assert!(doc.is_ancestor(div, p), "stray </span> ignored");
    }

    #[test]
    fn truncated_input_still_parses() {
        let doc = parse("<html><body><div class=\"x\"><p>partial tex");
        assert!(doc.first_by_tag("div").is_some());
        let p = doc.first_by_tag("p").unwrap();
        assert_eq!(doc.text_content(p), "partial tex");
    }

    #[test]
    fn self_closing_syntax() {
        let doc = parse("<div/><span>x</span>");
        let div = doc.first_by_tag("div").unwrap();
        assert!(doc.children(div).is_empty());
        assert!(doc.first_by_tag("span").is_some());
    }

    #[test]
    fn serialize_roundtrip_structure() {
        let src =
            "<html><body><div id=\"a\" class=\"b\"><p>hi</p><img src=\"x\"></div></body></html>";
        let doc = parse(src);
        let out = serialize(&doc, doc.root());
        let doc2 = parse(&out);
        // Structural equivalence: same tags in same pre-order.
        let tags = |d: &Document| -> Vec<String> {
            d.elements()
                .iter()
                .map(|&n| d.tag(n).unwrap().to_owned())
                .collect()
        };
        assert_eq!(tags(&doc), tags(&doc2));
        assert!(out.contains("id=\"a\""));
    }

    #[test]
    fn style_is_raw_text_too() {
        let doc = parse("<style>a > b { color: red }</style>");
        let style = doc.first_by_tag("style").unwrap();
        assert_eq!(doc.text_content(style), "a > b { color: red }");
    }
}

#[cfg(test)]
mod regression_tests {
    use super::parse;

    #[test]
    fn lone_angle_brackets_are_text_and_terminate() {
        // Regression: `<` not opening a tag must not hang the parser.
        for src in [
            "<",
            "<3",
            "a < b",
            "<<",
            "x<",
            "< <div>hi</div>",
            "<\u{e9}tag>",
        ] {
            let doc = parse(src);
            let _ = doc.iter_tree();
        }
        let doc = parse("i <3 <div>you</div>");
        assert!(doc.first_by_tag("div").is_some());
    }
}
