//! # bfu-dom
//!
//! An arena-based Document Object Model for the simulated browser.
//!
//! The paper's instrumentation lives *inside* the DOM: its extension rewrites
//! DOM prototypes before page scripts run. Our browser therefore needs a real
//! document tree with mutation, a selector engine (for `querySelectorAll`
//! features and for blockers' element-hiding rules), an event model with
//! capture/target/bubble phases (for the monkey's synthetic clicks), and an
//! HTML parser/serializer for documents fetched off the simulated network.
//!
//! - [`node`] — node arena, tree structure and mutation.
//! - [`html`] — HTML parser and serializer.
//! - [`selector`] — CSS selector engine.
//! - [`event`] — event dispatch.

pub mod event;
pub mod html;
pub mod node;
pub mod selector;

pub use event::{EventPhase, EventRegistry, EventResult};
pub use node::{Document, NodeData, NodeId};
pub use selector::Selector;
