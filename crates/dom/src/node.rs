//! Node arena and tree operations.
//!
//! Nodes live in a flat `Vec` owned by the [`Document`]; relationships are
//! [`NodeId`] indices. Removal detaches subtrees rather than freeing slots
//! (documents are short-lived — one per page visit — so slot reuse isn't
//! worth the dangling-id risk).

use bfu_util::define_id;
use std::collections::BTreeMap;

define_id!(
    /// Index of a node within its document's arena.
    NodeId,
    "node"
);

/// Payload of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// The document root (exactly one, id 0).
    Document,
    /// An element with a lowercase tag name and its attributes.
    Element {
        /// Lowercase tag name.
        tag: String,
        /// Attribute map (lowercase names).
        attrs: BTreeMap<String, String>,
    },
    /// A text node.
    Text(String),
    /// A comment (preserved for fidelity; ignored by selectors).
    Comment(String),
}

#[derive(Debug, Clone)]
struct Node {
    data: NodeData,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Detached nodes are invisible to traversal/selectors.
    attached: bool,
}

/// A document tree.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// An empty document containing only the root.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                data: NodeData::Document,
                parent: None,
                children: Vec::new(),
                attached: true,
            }],
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId::new(0)
    }

    /// Total nodes ever allocated (including detached ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Allocate a new detached element.
    pub fn create_element(&mut self, tag: &str) -> NodeId {
        self.alloc(NodeData::Element {
            tag: tag.to_ascii_lowercase(),
            attrs: BTreeMap::new(),
        })
    }

    /// Allocate a new detached text node.
    pub fn create_text(&mut self, text: &str) -> NodeId {
        self.alloc(NodeData::Text(text.to_owned()))
    }

    /// Allocate a new detached comment node.
    pub fn create_comment(&mut self, text: &str) -> NodeId {
        self.alloc(NodeData::Comment(text.to_owned()))
    }

    fn alloc(&mut self, data: NodeData) -> NodeId {
        let id = NodeId::from_usize(self.nodes.len());
        self.nodes.push(Node {
            data,
            parent: None,
            children: Vec::new(),
            attached: false,
        });
        id
    }

    /// The node's payload.
    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()].data
    }

    /// The node's parent, if attached to one.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The node's children, in order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Element tag name, or `None` for non-elements.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].data {
            NodeData::Element { tag, .. } => Some(tag),
            _ => None,
        }
    }

    /// Attribute value.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.nodes[id.index()].data {
            NodeData::Element { attrs, .. } => attrs.get(name).map(String::as_str),
            _ => None,
        }
    }

    /// Set an attribute (no-op on non-elements).
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        if let NodeData::Element { attrs, .. } = &mut self.nodes[id.index()].data {
            attrs.insert(name.to_ascii_lowercase(), value.to_owned());
        }
    }

    /// Remove an attribute.
    pub fn remove_attr(&mut self, id: NodeId, name: &str) {
        if let NodeData::Element { attrs, .. } = &mut self.nodes[id.index()].data {
            attrs.remove(name);
        }
    }

    /// Append `child` as the last child of `parent`.
    ///
    /// Panics if the edge would create a cycle.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert!(
            !self.is_ancestor(child, parent),
            "append would create a cycle"
        );
        self.detach(child);
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[child.index()].attached = self.nodes[parent.index()].attached;
        self.propagate_attached(child);
        self.nodes[parent.index()].children.push(child);
    }

    /// Insert `child` immediately before `reference` under `parent`.
    ///
    /// Panics if `reference` is not a child of `parent` or on a cycle.
    pub fn insert_before(&mut self, parent: NodeId, child: NodeId, reference: NodeId) {
        assert!(
            !self.is_ancestor(child, parent),
            "insert would create a cycle"
        );
        let pos = self.nodes[parent.index()]
            .children
            .iter()
            .position(|&c| c == reference)
            .expect("reference is not a child of parent");
        self.detach(child);
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[child.index()].attached = self.nodes[parent.index()].attached;
        self.propagate_attached(child);
        self.nodes[parent.index()].children.insert(pos, child);
    }

    /// Detach a subtree from its parent (it becomes invisible to traversal).
    pub fn detach(&mut self, id: NodeId) {
        if let Some(p) = self.nodes[id.index()].parent.take() {
            self.nodes[p.index()].children.retain(|&c| c != id);
        }
        self.nodes[id.index()].attached = false;
        self.propagate_attached(id);
    }

    fn propagate_attached(&mut self, id: NodeId) {
        let state = self.nodes[id.index()].attached;
        let mut stack: Vec<NodeId> = self.nodes[id.index()].children.clone();
        while let Some(n) = stack.pop() {
            self.nodes[n.index()].attached = state;
            stack.extend_from_slice(&self.nodes[n.index()].children);
        }
    }

    /// Whether `a` is an ancestor of `b` (or `a == b`).
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = Some(b);
        while let Some(n) = cur {
            if n == a {
                return true;
            }
            cur = self.nodes[n.index()].parent;
        }
        false
    }

    /// Deep-clone the subtree rooted at `id`; returns the new (detached) root.
    pub fn clone_subtree(&mut self, id: NodeId) -> NodeId {
        let data = self.nodes[id.index()].data.clone();
        let new_root = self.alloc(data);
        let children: Vec<NodeId> = self.nodes[id.index()].children.clone();
        for child in children {
            let new_child = self.clone_subtree(child);
            self.nodes[new_child.index()].parent = Some(new_root);
            self.nodes[new_root.index()].children.push(new_child);
        }
        new_root
    }

    /// All attached nodes in document (pre-)order, starting at the root.
    pub fn iter_tree(&self) -> Vec<NodeId> {
        self.descendants(self.root())
    }

    /// `root` plus all its descendants in pre-order (attached state follows
    /// the subtree, so this also works on detached subtrees).
    pub fn descendants(&self, root: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.nodes[n.index()].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All attached elements in document order.
    pub fn elements(&self) -> Vec<NodeId> {
        self.iter_tree()
            .into_iter()
            .filter(|&n| matches!(self.data(n), NodeData::Element { .. }))
            .collect()
    }

    /// Concatenated text content of a subtree.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let NodeData::Text(t) = self.data(n) {
                out.push_str(t);
            }
        }
        out
    }

    /// Whether the element is rendered: attached, and neither it nor an
    /// ancestor carries `hidden` or the blocker's `data-bfu-hidden` marker.
    pub fn is_visible(&self, id: NodeId) -> bool {
        if !self.nodes[id.index()].attached {
            return false;
        }
        let mut cur = Some(id);
        while let Some(n) = cur {
            if let NodeData::Element { attrs, .. } = &self.nodes[n.index()].data {
                if attrs.contains_key("hidden") || attrs.contains_key("data-bfu-hidden") {
                    return false;
                }
            }
            cur = self.nodes[n.index()].parent;
        }
        true
    }

    /// First attached element with the given tag, if any.
    pub fn first_by_tag(&self, tag: &str) -> Option<NodeId> {
        let tag = tag.to_ascii_lowercase();
        self.elements()
            .into_iter()
            .find(|&n| self.tag(n) == Some(tag.as_str()))
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let html = doc.create_element("html");
        let body = doc.create_element("body");
        let p = doc.create_element("p");
        doc.append_child(doc.root(), html);
        doc.append_child(html, body);
        doc.append_child(body, p);
        (doc, html, body, p)
    }

    #[test]
    fn build_and_traverse() {
        let (doc, html, body, p) = sample();
        assert_eq!(doc.parent(p), Some(body));
        assert_eq!(doc.children(html), &[body]);
        assert_eq!(doc.iter_tree(), vec![doc.root(), html, body, p]);
        assert_eq!(doc.elements(), vec![html, body, p]);
    }

    #[test]
    fn text_content_concatenates() {
        let (mut doc, _, body, p) = sample();
        let t1 = doc.create_text("hello ");
        let t2 = doc.create_text("world");
        doc.append_child(p, t1);
        doc.append_child(body, t2);
        assert_eq!(doc.text_content(body), "hello world");
    }

    #[test]
    fn insert_before_positions_correctly() {
        let (mut doc, _, body, p) = sample();
        let div = doc.create_element("div");
        doc.insert_before(body, div, p);
        assert_eq!(doc.children(body), &[div, p]);
    }

    #[test]
    #[should_panic(expected = "reference is not a child")]
    fn insert_before_bad_reference_panics() {
        let (mut doc, html, _, p) = sample();
        let div = doc.create_element("div");
        doc.insert_before(html, div, p); // p is body's child, not html's
    }

    #[test]
    fn detach_hides_subtree() {
        let (mut doc, _, body, p) = sample();
        assert!(doc.is_visible(p));
        doc.detach(body);
        assert!(!doc.is_visible(p));
        assert!(!doc.iter_tree().contains(&p));
    }

    #[test]
    fn reattach_restores_visibility() {
        let (mut doc, html, body, p) = sample();
        doc.detach(body);
        doc.append_child(html, body);
        assert!(doc.is_visible(p));
    }

    #[test]
    fn hidden_attribute_cascades() {
        let (mut doc, _, body, p) = sample();
        doc.set_attr(body, "hidden", "");
        assert!(!doc.is_visible(p), "hidden on ancestor hides descendants");
        doc.remove_attr(body, "hidden");
        assert!(doc.is_visible(p));
        doc.set_attr(p, "data-bfu-hidden", "1");
        assert!(!doc.is_visible(p));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let (mut doc, html, body, _) = sample();
        doc.append_child(body, html);
    }

    #[test]
    fn clone_subtree_is_deep_and_detached() {
        let (mut doc, _, body, p) = sample();
        doc.set_attr(p, "class", "x");
        let copy = doc.clone_subtree(body);
        assert_eq!(doc.parent(copy), None);
        let kids = doc.children(copy).to_vec();
        assert_eq!(kids.len(), 1);
        assert_eq!(doc.attr(kids[0], "class"), Some("x"));
        // Mutating the copy leaves the original alone.
        doc.set_attr(kids[0], "class", "y");
        assert_eq!(doc.attr(p, "class"), Some("x"));
    }

    #[test]
    fn attrs_case_insensitive_names() {
        let (mut doc, _, _, p) = sample();
        doc.set_attr(p, "ID", "main");
        assert_eq!(doc.attr(p, "id"), Some("main"));
    }

    #[test]
    fn first_by_tag() {
        let (doc, _, body, _) = sample();
        assert_eq!(doc.first_by_tag("BODY"), Some(body));
        assert_eq!(doc.first_by_tag("table"), None);
    }
}
