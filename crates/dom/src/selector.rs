//! CSS selector engine.
//!
//! Supports the grammar blockers' element-hiding rules and the Selectors API
//! features need: compound selectors of tag / `#id` / `.class` /
//! `[attr]` / `[attr=value]` parts, descendant (whitespace) and child (`>`)
//! combinators, `*`, and comma-separated groups.

use crate::node::{Document, NodeData, NodeId};
use std::fmt;

/// One simple component of a compound selector.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Part {
    Universal,
    Tag(String),
    Id(String),
    Class(String),
    AttrExists(String),
    AttrEquals(String, String),
}

/// A compound selector: all parts must match one element.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Compound {
    parts: Vec<Part>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Combinator {
    Descendant,
    Child,
}

/// One complex selector: compounds joined by combinators, e.g. `div > p.x`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Complex {
    /// Rightmost compound first? No — stored left-to-right.
    compounds: Vec<Compound>,
    /// `combinators[i]` joins `compounds[i]` and `compounds[i+1]`.
    combinators: Vec<Combinator>,
}

/// A parsed selector group (comma-separated complex selectors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    complexes: Vec<Complex>,
    source: String,
}

/// Selector parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorError(pub String);

impl fmt::Display for SelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid selector: {}", self.0)
    }
}

impl std::error::Error for SelectorError {}

impl Selector {
    /// Parse a selector group.
    pub fn parse(input: &str) -> Result<Selector, SelectorError> {
        let source = input.trim().to_owned();
        if source.is_empty() {
            return Err(SelectorError("empty selector".into()));
        }
        let mut complexes = Vec::new();
        for part in source.split(',') {
            complexes.push(parse_complex(part.trim())?);
        }
        Ok(Selector { complexes, source })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether `node` matches this selector.
    pub fn matches(&self, doc: &Document, node: NodeId) -> bool {
        self.complexes.iter().any(|c| matches_complex(c, doc, node))
    }

    /// All attached elements matching, in document order.
    pub fn query_all(&self, doc: &Document) -> Vec<NodeId> {
        doc.elements()
            .into_iter()
            .filter(|&n| self.matches(doc, n))
            .collect()
    }

    /// First match in document order.
    pub fn query_first(&self, doc: &Document) -> Option<NodeId> {
        doc.elements().into_iter().find(|&n| self.matches(doc, n))
    }
}

fn parse_complex(input: &str) -> Result<Complex, SelectorError> {
    if input.is_empty() {
        return Err(SelectorError("empty complex selector".into()));
    }
    let mut compounds = Vec::new();
    let mut combinators = Vec::new();
    // Tokenize into compounds and combinators.
    let mut rest = input;
    loop {
        let (compound, after) = take_compound(rest)?;
        compounds.push(compound);
        rest = after.trim_start();
        if rest.is_empty() {
            break;
        }
        if let Some(r) = rest.strip_prefix('>') {
            combinators.push(Combinator::Child);
            rest = r.trim_start();
        } else {
            combinators.push(Combinator::Descendant);
        }
        if rest.is_empty() {
            return Err(SelectorError(format!("dangling combinator in {input:?}")));
        }
    }
    Ok(Complex {
        compounds,
        combinators,
    })
}

fn take_compound(input: &str) -> Result<(Compound, &str), SelectorError> {
    let mut parts = Vec::new();
    let mut rest = input;
    while let Some(c) = rest.chars().next() {
        match c {
            '*' => {
                parts.push(Part::Universal);
                rest = &rest[1..];
            }
            '#' => {
                let (name, r) = take_ident(&rest[1..]);
                if name.is_empty() {
                    return Err(SelectorError("empty id".into()));
                }
                parts.push(Part::Id(name.to_owned()));
                rest = r;
            }
            '.' => {
                let (name, r) = take_ident(&rest[1..]);
                if name.is_empty() {
                    return Err(SelectorError("empty class".into()));
                }
                parts.push(Part::Class(name.to_owned()));
                rest = r;
            }
            '[' => {
                let end = rest
                    .find(']')
                    .ok_or_else(|| SelectorError("unclosed attribute selector".into()))?;
                let inner = &rest[1..end];
                match inner.split_once('=') {
                    Some((k, v)) => {
                        let v = v.trim_matches(|q| q == '"' || q == '\'');
                        parts.push(Part::AttrEquals(
                            k.trim().to_ascii_lowercase(),
                            v.to_owned(),
                        ));
                    }
                    None => parts.push(Part::AttrExists(inner.trim().to_ascii_lowercase())),
                }
                rest = &rest[end + 1..];
            }
            c if c.is_ascii_alphanumeric() || c == '-' || c == '_' => {
                let (name, r) = take_ident(rest);
                parts.push(Part::Tag(name.to_ascii_lowercase()));
                rest = r;
            }
            ' ' | '>' => break,
            other => return Err(SelectorError(format!("unexpected {other:?}"))),
        }
    }
    if parts.is_empty() {
        return Err(SelectorError(format!("no simple selector in {input:?}")));
    }
    Ok((Compound { parts }, rest))
}

fn take_ident(input: &str) -> (&str, &str) {
    let end = input
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
        .unwrap_or(input.len());
    (&input[..end], &input[end..])
}

fn matches_compound(compound: &Compound, doc: &Document, node: NodeId) -> bool {
    let NodeData::Element { tag, attrs } = doc.data(node) else {
        return false;
    };
    compound.parts.iter().all(|p| match p {
        Part::Universal => true,
        Part::Tag(t) => tag == t,
        Part::Id(id) => attrs.get("id").map(String::as_str) == Some(id.as_str()),
        Part::Class(c) => attrs
            .get("class")
            .is_some_and(|cl| cl.split_ascii_whitespace().any(|x| x == c)),
        Part::AttrExists(a) => attrs.contains_key(a),
        Part::AttrEquals(a, v) => attrs.get(a).map(String::as_str) == Some(v.as_str()),
    })
}

fn matches_complex(complex: &Complex, doc: &Document, node: NodeId) -> bool {
    // Match right-to-left: the last compound must match `node`, then walk up.
    let last = complex.compounds.len() - 1;
    if !matches_compound(&complex.compounds[last], doc, node) {
        return false;
    }
    match_rest(complex, last, doc, node)
}

fn match_rest(complex: &Complex, idx: usize, doc: &Document, node: NodeId) -> bool {
    if idx == 0 {
        return true;
    }
    let combinator = complex.combinators[idx - 1];
    let target = &complex.compounds[idx - 1];
    match combinator {
        Combinator::Child => match doc.parent(node) {
            Some(p) => matches_compound(target, doc, p) && match_rest(complex, idx - 1, doc, p),
            None => false,
        },
        Combinator::Descendant => {
            let mut cur = doc.parent(node);
            while let Some(p) = cur {
                if matches_compound(target, doc, p) && match_rest(complex, idx - 1, doc, p) {
                    return true;
                }
                cur = doc.parent(p);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Document;

    /// <html><body><div id=main class="box outer"><p class=msg data-x=1>
    /// </p></div><span class=msg></span></body></html>
    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let html = doc.create_element("html");
        let body = doc.create_element("body");
        let div = doc.create_element("div");
        let p = doc.create_element("p");
        let span = doc.create_element("span");
        doc.set_attr(div, "id", "main");
        doc.set_attr(div, "class", "box outer");
        doc.set_attr(p, "class", "msg");
        doc.set_attr(p, "data-x", "1");
        doc.set_attr(span, "class", "msg");
        doc.append_child(doc.root(), html);
        doc.append_child(html, body);
        doc.append_child(body, div);
        doc.append_child(div, p);
        doc.append_child(body, span);
        (doc, div, p, span)
    }

    fn sel(s: &str) -> Selector {
        Selector::parse(s).unwrap()
    }

    #[test]
    fn simple_parts() {
        let (doc, div, p, span) = sample();
        assert!(sel("div").matches(&doc, div));
        assert!(sel("#main").matches(&doc, div));
        assert!(sel(".box").matches(&doc, div));
        assert!(sel(".outer").matches(&doc, div));
        assert!(!sel(".box").matches(&doc, p));
        assert!(sel("[data-x]").matches(&doc, p));
        assert!(sel("[data-x=1]").matches(&doc, p));
        assert!(!sel("[data-x=2]").matches(&doc, p));
        assert!(sel("*").matches(&doc, span));
    }

    #[test]
    fn compound_conjunction() {
        let (doc, div, p, span) = sample();
        assert!(sel("div#main.box").matches(&doc, div));
        assert!(!sel("div#other.box").matches(&doc, div));
        assert!(sel("p.msg").matches(&doc, p));
        assert!(!sel("p.msg").matches(&doc, span));
    }

    #[test]
    fn descendant_and_child() {
        let (doc, _, p, span) = sample();
        assert!(sel("body p").matches(&doc, p));
        assert!(sel("html p").matches(&doc, p));
        assert!(sel("div > p").matches(&doc, p));
        assert!(
            !sel("body > p").matches(&doc, p),
            "p is a grandchild of body"
        );
        assert!(sel("body > span").matches(&doc, span));
        assert!(sel("#main > .msg").matches(&doc, p));
    }

    #[test]
    fn groups() {
        let (doc, div, p, span) = sample();
        let s = sel("span, div");
        assert!(s.matches(&doc, div));
        assert!(s.matches(&doc, span));
        assert!(!s.matches(&doc, p));
    }

    #[test]
    fn query_all_document_order() {
        let (doc, _, p, span) = sample();
        assert_eq!(sel(".msg").query_all(&doc), vec![p, span]);
        assert_eq!(sel(".msg").query_first(&doc), Some(p));
        assert!(sel("table").query_all(&doc).is_empty());
    }

    #[test]
    fn quoted_attribute_values() {
        let (doc, _, p, _) = sample();
        assert!(sel("[data-x=\"1\"]").matches(&doc, p));
        assert!(sel("[data-x='1']").matches(&doc, p));
    }

    #[test]
    fn parse_errors() {
        assert!(Selector::parse("").is_err());
        assert!(Selector::parse("div >").is_err());
        assert!(Selector::parse("[unclosed").is_err());
        assert!(Selector::parse("#").is_err());
        assert!(Selector::parse(".").is_err());
        assert!(Selector::parse("!bang").is_err());
    }

    #[test]
    fn detached_elements_not_queried() {
        let (mut doc, div, p, _) = sample();
        doc.detach(div);
        assert!(!sel(".msg").query_all(&doc).contains(&p));
    }

    #[test]
    fn source_preserved() {
        assert_eq!(sel("div > p").source(), "div > p");
    }
}
