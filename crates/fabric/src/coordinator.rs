//! The fabric coordinator: lease issue, reclaim, and the merge point.
//!
//! The coordinator owns the two durable artifacts — the lease table and
//! the canonical [`DatasetStore`] — and is the only actor that writes
//! either. Workers only ever touch the staging namespace.
//!
//! The ordering discipline that makes coordinator crashes safe:
//!
//! - **Issue** persists the lease as `Issued` *before* any worker sees the
//!   grant. A crash before the write simply never issued; a crash after
//!   leaves an issued lease with no worker, which expires at its deadline
//!   and is reclaimed.
//! - **Merge** absorbs staged records into the store *before* persisting
//!   `Completed`. A crash in between leaves the lease issued with its
//!   records already (partially) in the store; on reissue the range is
//!   re-crawled and re-absorbed, and the store's first-record-wins scan
//!   collapses the duplicates — determinism makes the copies identical,
//!   so nothing is double-counted.
//! - **Reclaim** bumps the epoch in the same durable write that returns
//!   the lease to the pool, so the fence is in place before any reissue
//!   can happen.
//!
//! The fence itself lives at the top of [`Coordinator::merge_publish`]:
//! a publish is absorbed only while its lease is still `Issued` under the
//! exact epoch the publish carries. Anything else — reclaimed, completed,
//! double-issued and already merged — is [`MergeOutcome::Fenced`] and its
//! staging shards are discarded unread.

use crate::election::ElectionHandle;
use crate::lease::{LeaseState, LeaseTable};
use crate::worker::{LeaseGrant, Probe, StepOutcome, WorkerPublish};
use bfu_crawler::{
    retry_interrupted, CacheTotals, CrawlHealth, Dataset, FabricTotals, Provenance, Survey,
};
use bfu_store::scrub::ScrubReport;
use bfu_store::{decode_site, read_shard, DatasetStore, StorageBackend, StoreError, StoreMeta};
use bfu_util::Instant;
use std::fmt;
use std::io;
use std::sync::{Arc, Mutex};

/// Errors surfaced by fabric operations.
#[derive(Debug)]
pub enum FabricError {
    /// Underlying store failure (I/O, fingerprint mismatch, bad table).
    Store(StoreError),
    /// The torture probe killed the coordinator at the named step. Real
    /// deployments never see this; the torture driver catches it, reopens
    /// the coordinator from durable state, and proves recovery.
    CoordinatorKilled(String),
    /// A fabric invariant was violated (a bug, not an environment fault).
    Fabric(String),
    /// This coordinator lost its term: a standby won an election while it
    /// was silent, and the store's CAS fence rejected its write. The only
    /// correct response is to stop writing — a successor owns the fabric.
    Deposed(String),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Store(e) => write!(f, "fabric store error: {e}"),
            FabricError::CoordinatorKilled(step) => {
                write!(f, "coordinator killed at step {step}")
            }
            FabricError::Fabric(msg) => write!(f, "fabric invariant violated: {msg}"),
            FabricError::Deposed(msg) => write!(f, "coordinator deposed: {msg}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<StoreError> for FabricError {
    fn from(e: StoreError) -> FabricError {
        FabricError::Store(e)
    }
}

impl From<io::Error> for FabricError {
    fn from(e: io::Error) -> FabricError {
        FabricError::Store(StoreError::Io(e))
    }
}

/// What the merge point did with a publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The publish was live: its records are now in the canonical store
    /// and the lease is completed.
    Accepted {
        /// Records absorbed from the staged shards.
        records: usize,
    },
    /// The publish was stale (reclaimed epoch, already-completed lease,
    /// unknown lease): nothing entered the store; staging was discarded.
    Fenced,
}

/// A finished fabric survey: the dataset plus the full accounting.
#[derive(Debug)]
pub struct FabricOutcome {
    /// The complete dataset, fingerprint-identical to a single-process run.
    pub dataset: Dataset,
    /// Supervision summary, with [`CrawlHealth::fabric`] filled in.
    pub health: CrawlHealth,
    /// The fabric counters (also embedded in `health`).
    pub stats: FabricTotals,
    /// What the final scrub found and repaired.
    pub scrub: ScrubReport,
}

fn coord_step(probe: &dyn Probe, label: &str) -> Result<(), FabricError> {
    if probe.step(label) == StepOutcome::Die {
        return Err(FabricError::CoordinatorKilled(label.to_owned()));
    }
    Ok(())
}

/// The coordinator: the only writer of the lease table and the canonical
/// store. Single-threaded by construction — the multi-worker driver in
/// [`crate::run`] serializes access through a mutex, which is the point:
/// the merge point is *the* coordination point, so its checks need no
/// further locking.
#[derive(Debug)]
pub struct Coordinator {
    backend: Arc<dyn StorageBackend>,
    store: DatasetStore,
    table: LeaseTable,
    lease_ms: u64,
    /// Election fence, when this coordinator holds an elected term. Every
    /// durable table write refreshes it first; a deposed coordinator's
    /// refresh loses its CAS and the write never happens.
    fence: Option<ElectionHandle>,
}

impl Coordinator {
    /// Open (or recover) the fabric on `backend` for `survey`.
    ///
    /// An existing lease table is adopted as-is — that *is* crash
    /// recovery: issued leases whose workers died simply expire and
    /// reclaim. A table written under a different survey fingerprint is
    /// refused, same as the store manifest.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        survey: &Survey,
        meta: StoreMeta,
        sites_per_lease: usize,
        lease_ms: u64,
    ) -> Result<Coordinator, FabricError> {
        let store = DatasetStore::open_on(Arc::clone(&backend), meta)?;
        let fingerprint = survey.fingerprint();
        let table = match LeaseTable::read(backend.as_ref())? {
            Some(existing) => {
                if existing.fingerprint != fingerprint {
                    return Err(FabricError::Store(StoreError::FingerprintMismatch {
                        expected: fingerprint,
                        found: existing.fingerprint,
                    }));
                }
                existing
            }
            None => {
                let table =
                    LeaseTable::partition(fingerprint, survey.web().site_count(), sites_per_lease);
                table.write_atomic(backend.as_ref())?;
                retry_interrupted(|| backend.sync_dir())?;
                table
            }
        };
        Ok(Coordinator {
            backend,
            store,
            table,
            lease_ms,
            fence: None,
        })
    }

    /// [`Coordinator::open`] under an elected term: the handle from a won
    /// [`crate::election::try_elect`] becomes this coordinator's fence,
    /// and the term is stamped into the lease table so the takeover is
    /// durable before any lease is touched.
    pub fn open_elected(
        backend: Arc<dyn StorageBackend>,
        survey: &Survey,
        meta: StoreMeta,
        sites_per_lease: usize,
        lease_ms: u64,
        handle: ElectionHandle,
    ) -> Result<Coordinator, FabricError> {
        let mut coord = Coordinator::open(backend, survey, meta, sites_per_lease, lease_ms)?;
        coord.table.coord_term = handle.term();
        coord.fence = Some(handle);
        coord.persist_table()?;
        Ok(coord)
    }

    /// The election handle, when this coordinator holds an elected term.
    pub fn election(&self) -> Option<&ElectionHandle> {
        self.fence.as_ref()
    }

    /// Advance this coordinator's heartbeat to `now` (no-op without an
    /// elected term). Standbys take over when the heartbeat goes stale, so
    /// the driver loop calls this every iteration.
    pub fn heartbeat(&mut self, now: Instant) -> Result<(), FabricError> {
        match &mut self.fence {
            Some(h) => h.heartbeat(self.backend.as_ref(), now),
            None => Ok(()),
        }
    }

    /// Durably persist the lease table, fenced by the elected term when
    /// one is held. This is the single choke point for table writes: the
    /// fence refresh is a CAS on the `COORD` record, so a deposed
    /// coordinator errors *before* the table write — zombie state never
    /// reaches the store.
    pub fn persist_table(&mut self) -> Result<(), FabricError> {
        if let Some(h) = &mut self.fence {
            h.refresh(self.backend.as_ref())?;
        }
        self.table.write_atomic(self.backend.as_ref())?;
        Ok(())
    }

    /// The lease table as this coordinator sees it.
    pub fn table(&self) -> &LeaseTable {
        &self.table
    }

    /// The canonical store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// Whether every lease has completed.
    pub fn all_completed(&self) -> bool {
        self.table.all_completed()
    }

    /// Earliest deadline among issued leases (see
    /// [`LeaseTable::next_deadline`]).
    pub fn next_deadline(&self) -> Option<Instant> {
        self.table.next_deadline()
    }

    /// Return every expired lease to the pool, bumping its epoch — the
    /// durable write that fences the previous holder. Returns how many
    /// were reclaimed.
    pub fn reclaim_expired(
        &mut self,
        now: Instant,
        probe: &dyn Probe,
    ) -> Result<usize, FabricError> {
        let expired: Vec<u32> = self
            .table
            .leases
            .iter()
            .filter(|l| l.expired(now))
            .map(|l| l.id)
            .collect();
        if expired.is_empty() {
            return Ok(0);
        }
        let label = format!(
            "coord:reclaim:{}",
            expired
                .iter()
                .map(|id| format!("l{id}"))
                .collect::<Vec<_>>()
                .join("+")
        );
        coord_step(probe, &label)?;
        for id in &expired {
            if let Some(l) = self.table.lease_mut(*id) {
                l.state = LeaseState::Pending;
                l.epoch += 1;
                l.deadline = Instant::ZERO;
            }
        }
        self.persist_table()?;
        Ok(expired.len())
    }

    /// Claim the first pending lease, persisting it as issued with a
    /// deadline of `now + lease_ms` *before* handing out the grant.
    /// `Ok(None)` when nothing is pending (all issued or completed).
    pub fn claim(
        &mut self,
        now: Instant,
        probe: &dyn Probe,
    ) -> Result<Option<LeaseGrant>, FabricError> {
        self.claim_for(now, 0, probe)
    }

    /// [`Coordinator::claim`], routing the lease to worker `owner` (the
    /// process-mode scheduler's primitive; `0` = any worker). The owner is
    /// advisory routing state — the epoch stays the only fence.
    pub fn claim_for(
        &mut self,
        now: Instant,
        owner: u32,
        probe: &dyn Probe,
    ) -> Result<Option<LeaseGrant>, FabricError> {
        let Some(pos) = self
            .table
            .leases
            .iter()
            .position(|l| l.state == LeaseState::Pending)
        else {
            return Ok(None);
        };
        let id = self.table.leases[pos].id;
        // Kill point *before* the durable write: a crash here models dying
        // between deciding to issue and persisting the issue — the lease
        // must still be pending on recovery.
        coord_step(probe, &format!("coord:issue:l{id}"))?;
        let deadline = now.plus(self.lease_ms);
        let grant = {
            let l = &mut self.table.leases[pos];
            l.state = LeaseState::Issued;
            l.deadline = deadline;
            l.owner = owner;
            LeaseGrant {
                lease: l.id,
                start: l.start,
                end: l.end,
                epoch: l.epoch,
            }
        };
        self.persist_table()?;
        Ok(Some(grant))
    }

    /// Force-expire every issued lease owned by `owner` — the process-mode
    /// response to a worker known dead (its process exited). The epoch
    /// bump in the same durable write fences anything it left behind, so
    /// this is reclaim without waiting out the deadline. Returns how many
    /// leases were reclaimed.
    pub fn reclaim_owner(&mut self, owner: u32, probe: &dyn Probe) -> Result<usize, FabricError> {
        let held: Vec<u32> = self
            .table
            .leases
            .iter()
            .filter(|l| l.state == LeaseState::Issued && l.owner == owner)
            .map(|l| l.id)
            .collect();
        if held.is_empty() {
            return Ok(0);
        }
        let label = format!(
            "coord:reclaim-owner:w{owner}:{}",
            held.iter()
                .map(|id| format!("l{id}"))
                .collect::<Vec<_>>()
                .join("+")
        );
        coord_step(probe, &label)?;
        for id in &held {
            if let Some(l) = self.table.lease_mut(*id) {
                l.state = LeaseState::Pending;
                l.epoch += 1;
                l.deadline = Instant::ZERO;
                l.owner = 0;
            }
        }
        self.persist_table()?;
        Ok(held.len())
    }

    /// The merge point: absorb a worker's publish into the canonical
    /// store, or fence it.
    ///
    /// The fence check runs first and is the *only* admission control in
    /// the fabric: the lease must still be `Issued` under exactly the
    /// epoch the publish carries. A fenced publish's staging shards are
    /// removed without being read.
    pub fn merge_publish(
        &mut self,
        publish: &WorkerPublish,
        probe: &dyn Probe,
    ) -> Result<MergeOutcome, FabricError> {
        // Election fence first, before a single staged byte is read: a
        // deposed coordinator must not absorb records its successor may be
        // re-issuing right now.
        if let Some(h) = &mut self.fence {
            h.refresh(self.backend.as_ref())?;
        }
        let live = self
            .table
            .lease(publish.lease)
            .is_some_and(|l| l.state == LeaseState::Issued && l.epoch == publish.epoch);
        if !live {
            self.discard_staging(&publish.shards);
            return Ok(MergeOutcome::Fenced);
        }
        let (start, end) = {
            // Fence passed, so the lease exists; re-borrow for the range.
            let l = self
                .table
                .lease(publish.lease)
                .ok_or_else(|| FabricError::Fabric("lease vanished after fence check".into()))?;
            (l.start, l.end)
        };
        coord_step(probe, &format!("coord:merge-absorb:l{}", publish.lease))?;
        let mut records = 0usize;
        for name in &publish.shards {
            let contents = match read_shard(self.backend.as_ref(), name) {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // A crashed earlier merge attempt may have absorbed and
                    // cleaned some shards already; re-absorption tolerates
                    // the gap — the records are in the store.
                    continue;
                }
                Err(e) => return Err(FabricError::from(e)),
            };
            for payload in &contents.payloads {
                let Ok(m) = decode_site(payload) else {
                    continue; // corrupt staging record: the range re-crawls
                };
                let ix = m.site.index();
                if ix < start || ix >= end {
                    continue; // out-of-range record can't enter the store
                }
                self.store.append(&m)?;
                records += 1;
            }
        }
        // THE crash window: records absorbed, completion not yet durable.
        // Recovery reissues the lease; determinism + first-record-wins
        // dedup make the re-absorbed copies harmless.
        coord_step(probe, &format!("coord:merge-commit:l{}", publish.lease))?;
        if let Some(l) = self.table.lease_mut(publish.lease) {
            l.state = LeaseState::Completed;
        }
        self.persist_table()?;
        coord_step(probe, &format!("coord:merge-clean:l{}", publish.lease))?;
        self.discard_staging(&publish.shards);
        Ok(MergeOutcome::Accepted { records })
    }

    /// Best-effort staging cleanup; leftovers are swept by
    /// [`Coordinator::finish`] and are invisible to the store regardless.
    fn discard_staging(&self, names: &[String]) {
        for name in names {
            let _ = retry_interrupted(|| self.backend.remove(name));
        }
    }

    /// Close out the fabric: sweep the staging namespace, scrub, scan, and
    /// assemble the final dataset — healing any residual gaps by
    /// re-crawling exactly like [`bfu_store::resume_survey_on`].
    ///
    /// The returned dataset is fingerprint-identical to a single-process
    /// run of the same survey; `stats` lands in
    /// [`CrawlHealth::fabric`] and the provenance sidecar.
    pub fn finish(
        self,
        survey: &Survey,
        stats: FabricTotals,
        scrub_threads: usize,
    ) -> Result<FabricOutcome, FabricError> {
        // Sweep every staging object, including debris from dead workers
        // whose publish never arrived. Listings come back in unspecified
        // (possibly backend-shuffled) order — sort before folding so the
        // sweep's op sequence is identical whatever the backend served.
        let mut staged: Vec<String> = retry_interrupted(|| self.backend.list())?
            .into_iter()
            .filter(|name| name.starts_with("stage-"))
            .collect();
        staged.sort_unstable();
        let swept = !staged.is_empty();
        for name in &staged {
            let _ = retry_interrupted(|| self.backend.remove(name));
        }
        if swept {
            retry_interrupted(|| self.backend.sync_dir())?;
        }
        let scrub = self.store.scrub_with_threads(scrub_threads)?;
        let scan = self.store.scan()?;
        let dataset = if scan.recovered == scan.sites.len() {
            Dataset {
                profiles: survey.config().profiles.clone(),
                rounds_per_profile: survey.config().rounds_per_profile,
                sites: scan.sites.into_iter().flatten().collect(),
                cache: CacheTotals::default(),
            }
        } else {
            // Residual gaps (records lost to damage, or a range whose every
            // absorption attempt crashed) self-heal by re-crawling, exactly
            // like single-process resumption.
            let write_error: Mutex<Option<io::Error>> = Mutex::new(None);
            let dataset = survey.run_partial(scan.sites, &|m| {
                if let Err(e) = self.store.append(m) {
                    if let Ok(mut slot) = write_error.lock() {
                        slot.get_or_insert(e);
                    }
                }
            });
            if let Some(e) = write_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
                return Err(FabricError::Store(StoreError::Io(e)));
            }
            dataset
        };
        let mut provenance = Provenance::of(survey, &dataset);
        provenance.health.fabric = stats;
        provenance.health.backend = self.backend.op_totals().unwrap_or_default();
        self.store.finish_with_scrub(&provenance, Some(&scrub))?;
        Ok(FabricOutcome {
            dataset,
            health: provenance.health,
            stats,
            scrub,
        })
    }
}
