//! Coordinator election: CAS-claimed leadership with generation fencing.
//!
//! The fabric's coordinator was born a static role: whoever opened the
//! [`crate::Coordinator`] *was* the coordinator, and a dead one meant a
//! stalled survey until something restarted it. This module makes the
//! role **electable** over any [`StorageBackend`] with native
//! compare-and-swap ([`StorageBackend::replace_if`]): a single `COORD`
//! record holds the current term, its owner, and the owner's last
//! heartbeat; a standby that observes the heartbeat deadline lapsed CASes
//! itself into the next term.
//!
//! The CAS generation — not the term, not the owner id — is the fence.
//! Every durable coordinator write goes through
//! [`ElectionHandle::refresh`] first: one conditional put of the `COORD`
//! record at the generation this coordinator last observed. The moment a
//! standby wins an election the generation moves, so a deposed
//! incumbent's next refresh loses its CAS *at the store* — no message
//! delivery, no timeout agreement, no trust in the zombie's own clock
//! required. [`FabricError::Deposed`] is that rejection surfacing.
//!
//! Timing discipline matches [`crate::lease::Lease::expired`]: a
//! heartbeat at `T` keeps the incumbent alive through the tick before
//! `T + heartbeat_ms`; the deadline instant itself is the first tick a
//! standby may take over.

use crate::coordinator::FabricError;
use bfu_crawler::retry_interrupted;
use bfu_store::{as_cas_conflict, StorageBackend};
use bfu_util::Instant;
use std::fmt::Write as _;
use std::io;

/// Object name of the coordinator record.
pub const COORD_NAME: &str = "COORD";
const HEADER: &str = "bfu-coord v1";

/// The durable coordinator record: who leads, under which term, and when
/// they last proved themselves alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordRecord {
    /// Election term, bumped by every successful takeover.
    pub term: u64,
    /// Owner id of the incumbent (a worker/process label, not a fence).
    pub owner: u32,
    /// The incumbent's last heartbeat on the fabric clock.
    pub heartbeat: Instant,
}

impl CoordRecord {
    /// Render to the on-disk text form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "term={}", self.term);
        let _ = writeln!(out, "owner={}", self.owner);
        let _ = writeln!(out, "heartbeat={}", self.heartbeat.0);
        out
    }

    /// Parse the on-disk text form; `None` for anything torn or foreign.
    /// Unknown keys are ignored so older readers survive newer writers.
    pub fn parse(bytes: &[u8]) -> Option<CoordRecord> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return None;
        }
        let mut term = None;
        let mut owner = None;
        let mut heartbeat = None;
        for line in lines {
            let Some((key, value)) = line.trim().split_once('=') else {
                continue;
            };
            match key {
                "term" => term = value.parse::<u64>().ok(),
                "owner" => owner = value.parse::<u32>().ok(),
                "heartbeat" => heartbeat = value.parse::<u64>().ok(),
                _ => {}
            }
        }
        Some(CoordRecord {
            term: term?,
            owner: owner?,
            heartbeat: Instant(heartbeat?),
        })
    }

    /// Whether the incumbent's heartbeat still holds at `now`. The
    /// deadline instant itself is the first expired tick, same as lease
    /// expiry.
    pub fn alive(&self, now: Instant, heartbeat_ms: u64) -> bool {
        now < self.heartbeat.plus(heartbeat_ms)
    }
}

/// Whether `backend` can host an election at all — it needs native
/// conditional puts. LocalFs and FaultFs do not; the object-store
/// adapter does.
pub fn election_supported(backend: &dyn StorageBackend) -> bool {
    !matches!(
        backend.generation(COORD_NAME),
        Err(ref e) if e.kind() == io::ErrorKind::Unsupported
    )
}

/// Proof of a won election: the term and the CAS generation every
/// subsequent coordinator write is fenced on.
#[derive(Debug, Clone)]
pub struct ElectionHandle {
    term: u64,
    owner: u32,
    generation: u64,
    last_heartbeat: Instant,
}

impl ElectionHandle {
    /// The term this handle won.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The owner id the term was won for.
    pub fn owner(&self) -> u32 {
        self.owner
    }

    /// The `COORD` generation this handle last wrote — the fence value.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Re-assert leadership at the store: one CAS of the `COORD` record
    /// at our last observed generation. This is the fence every durable
    /// coordinator write passes through first; losing the CAS means a
    /// standby has taken the term and this coordinator is a zombie.
    pub fn refresh(&mut self, backend: &dyn StorageBackend) -> Result<(), FabricError> {
        let record = CoordRecord {
            term: self.term,
            owner: self.owner,
            heartbeat: self.last_heartbeat,
        };
        match backend.replace_if(COORD_NAME, self.generation, record.render().as_bytes()) {
            Ok(generation) => {
                self.generation = generation;
                Ok(())
            }
            Err(e) => match as_cas_conflict(&e) {
                Some(c) => Err(FabricError::Deposed(format!(
                    "term {} (owner {}) fenced at the store: expected COORD generation {}, found {}",
                    self.term, self.owner, c.expected, c.found
                ))),
                None => Err(e.into()),
            },
        }
    }

    /// Advance the heartbeat to `now` and re-assert leadership. Standbys
    /// watch this instant: let it go stale and they take the term.
    pub fn heartbeat(
        &mut self,
        backend: &dyn StorageBackend,
        now: Instant,
    ) -> Result<(), FabricError> {
        self.last_heartbeat = now;
        self.refresh(backend)
    }
}

/// Attempt to become coordinator at `now`.
///
/// Returns `Ok(Some(handle))` on a won election (no record yet, or the
/// incumbent's heartbeat deadline has lapsed and our CAS landed first),
/// `Ok(None)` when the incumbent is still live **or** another standby won
/// the CAS race — either way, stand by and try again later.
pub fn try_elect(
    backend: &dyn StorageBackend,
    owner: u32,
    now: Instant,
    heartbeat_ms: u64,
) -> Result<Option<ElectionHandle>, FabricError> {
    let (expected, term) = match backend.generation(COORD_NAME) {
        Ok(generation) => {
            let record = match retry_interrupted(|| backend.get(COORD_NAME)) {
                Ok(bytes) => CoordRecord::parse(&bytes),
                Err(e) if e.kind() == io::ErrorKind::NotFound => None,
                Err(e) => return Err(e.into()),
            };
            match record {
                Some(r) if r.alive(now, heartbeat_ms) => return Ok(None),
                Some(r) => (generation, r.term + 1),
                // Generation exists but the content is unreadable (torn
                // foreign write): claim over it — the CAS still guarantees
                // exactly one claimant wins.
                None => (generation, 1),
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => (0, 1),
        Err(e) => return Err(e.into()),
    };
    let record = CoordRecord {
        term,
        owner,
        heartbeat: now,
    };
    match backend.replace_if(COORD_NAME, expected, record.render().as_bytes()) {
        Ok(generation) => Ok(Some(ElectionHandle {
            term,
            owner,
            generation,
            last_heartbeat: now,
        })),
        Err(e) => match as_cas_conflict(&e) {
            // Lost the race: someone else's CAS moved the generation
            // between our read and our write. They are the coordinator.
            Some(_) => Ok(None),
            None => Err(e.into()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_objstore::{ObjFaultPlan, ObjectBackend, SimObjectStore};
    use bfu_store::LocalFs;
    use std::sync::Arc;

    fn cas_backend() -> ObjectBackend {
        ObjectBackend::new(Arc::new(SimObjectStore::new(ObjFaultPlan::none())))
    }

    #[test]
    fn record_roundtrips_and_ignores_unknown_keys() {
        let r = CoordRecord {
            term: 7,
            owner: 3,
            heartbeat: Instant(4_200),
        };
        assert_eq!(CoordRecord::parse(r.render().as_bytes()), Some(r));
        let mut text = r.render();
        text.push_str("future=stuff\n");
        assert_eq!(CoordRecord::parse(text.as_bytes()), Some(r));
        assert_eq!(CoordRecord::parse(b"not a record"), None);
        assert_eq!(CoordRecord::parse(b"bfu-coord v1\nterm=1\n"), None);
    }

    #[test]
    fn first_claimant_wins_term_one() {
        let b = cas_backend();
        let handle = try_elect(&b, 1, Instant(0), 1_000)
            .expect("elect")
            .expect("empty store: immediate win");
        assert_eq!(handle.term(), 1);
        assert_eq!(handle.owner(), 1);
    }

    #[test]
    fn live_incumbent_blocks_standby() {
        let b = cas_backend();
        let _incumbent = try_elect(&b, 1, Instant(0), 1_000).unwrap().unwrap();
        assert!(
            try_elect(&b, 2, Instant(500), 1_000).unwrap().is_none(),
            "heartbeat still fresh: no takeover"
        );
    }

    /// Satellite edge case: the heartbeat deadline boundary is exact —
    /// one tick early is a refused takeover, the deadline instant itself
    /// is the first legal one.
    #[test]
    fn takeover_boundary_is_exact() {
        let b = cas_backend();
        let _incumbent = try_elect(&b, 1, Instant(1_000), 500).unwrap().unwrap();
        assert!(
            try_elect(&b, 2, Instant(1_499), 500).unwrap().is_none(),
            "one tick before the deadline: incumbent still owns the term"
        );
        let usurper = try_elect(&b, 2, Instant(1_500), 500)
            .unwrap()
            .expect("the deadline instant is the first expired tick");
        assert_eq!(usurper.term(), 2);
    }

    /// Satellite edge case: two standbys racing for an expired term —
    /// exactly one may win, however the race interleaves.
    #[test]
    fn two_standbys_race_exactly_one_wins() {
        // DirObjectStore: the CAS is a real filesystem hard_link race.
        let dir = std::env::temp_dir().join(format!("bfu-elect-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = bfu_objstore::DirObjectStore::open(dir).expect("open");
        let b = Arc::new(ObjectBackend::new(Arc::new(store)));
        let _incumbent = try_elect(b.as_ref(), 1, Instant(0), 100).unwrap().unwrap();
        // Heartbeat long lapsed; both standbys contend at the same instant.
        let winners: Vec<bool> = std::thread::scope(|scope| {
            [2u32, 3u32]
                .map(|owner| {
                    let b = Arc::clone(&b);
                    scope.spawn(move || {
                        try_elect(b.as_ref(), owner, Instant(5_000), 100)
                            .expect("elect call")
                            .is_some()
                    })
                })
                .map(|h| h.join().expect("no panic"))
                .to_vec()
        });
        assert_eq!(
            winners.iter().filter(|&&w| w).count(),
            1,
            "exactly one standby may take the term: {winners:?}"
        );
    }

    /// Satellite edge case: a deposed incumbent replaying a fenced write.
    #[test]
    fn deposed_incumbent_is_fenced_at_the_store() {
        let b = cas_backend();
        let mut incumbent = try_elect(&b, 1, Instant(0), 1_000).unwrap().unwrap();
        incumbent.heartbeat(&b, Instant(100)).expect("still leader");
        // Incumbent goes silent; standby takes the term at the deadline.
        let mut usurper = try_elect(&b, 2, Instant(1_100), 1_000)
            .unwrap()
            .expect("takeover");
        assert_eq!(usurper.term(), 2);
        // The zombie wakes up and tries to write: CAS-fenced, typed error.
        let err = incumbent.refresh(&b).expect_err("zombie must be fenced");
        assert!(
            matches!(err, FabricError::Deposed(_)),
            "wrong error class: {err}"
        );
        // The usurper is unaffected and keeps refreshing.
        usurper.heartbeat(&b, Instant(1_200)).expect("new leader");
        // And the durable record is the usurper's, untouched by the zombie.
        let record = CoordRecord::parse(&b.get(COORD_NAME).unwrap()).unwrap();
        assert_eq!((record.term, record.owner), (2, 2));
    }

    #[test]
    fn reelection_after_depose_continues_the_term_sequence() {
        let b = cas_backend();
        let _a = try_elect(&b, 1, Instant(0), 100).unwrap().unwrap();
        let _b2 = try_elect(&b, 2, Instant(100), 100).unwrap().unwrap();
        let c = try_elect(&b, 3, Instant(200), 100).unwrap().unwrap();
        assert_eq!(c.term(), 3, "terms are strictly increasing");
    }

    #[test]
    fn localfs_does_not_support_elections() {
        let dir = std::env::temp_dir().join(format!("bfu-elect-nofs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = LocalFs::open(&dir).expect("open");
        assert!(!election_supported(&b));
        assert!(election_supported(&cas_backend()));
    }
}
