//! The lease table: the coordinator's one piece of durable state.
//!
//! A lease is a half-open site range `[start, end)` plus a **fencing
//! epoch** and a deadline on the survey's virtual clock. Lifecycle:
//!
//! ```text
//! Pending ──claim──▶ Issued ──publish accepted──▶ Completed
//!    ▲                  │
//!    └──reclaim (deadline passed; epoch += 1)──┘
//! ```
//!
//! The epoch is the fence: a publish carries the epoch its grant was
//! issued under, and the merge point accepts it only while the lease is
//! *still* issued under that exact epoch. Reclaiming bumps the epoch, so
//! the previous holder — which may still be crawling, sealing, even
//! publishing — can never get another byte into the dataset.
//!
//! The table persists as one small text object (`LEASES`), rewritten with
//! the same synced-temp + rename + directory-sync discipline as the store
//! manifest: a crash between any two lease-table writes leaves the old
//! table or the new one, never a torn hybrid. State transitions are
//! persisted *before* their effects are acted on (issue before the worker
//! starts; completion after records are absorbed), so replaying the table
//! after a coordinator crash can only re-do idempotent work: re-issue a
//! lease whose worker vanished, or re-absorb records the store's
//! first-record-wins scan deduplicates.

use bfu_crawler::retry_interrupted;
use bfu_store::manifest::write_atomic;
use bfu_store::{StorageBackend, StoreError};
use bfu_util::Instant;
use std::fmt::Write as _;
use std::io;

/// Object name of the persisted lease table.
pub const LEASES_NAME: &str = "LEASES";
const HEADER: &str = "bfu-lease-table v1";

/// Where a lease is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// In the pool, claimable.
    Pending,
    /// Held by a worker, valid until its deadline.
    Issued,
    /// Its range's records were absorbed at the merge point. Terminal.
    Completed,
}

impl LeaseState {
    fn tag(self) -> u8 {
        match self {
            LeaseState::Pending => 0,
            LeaseState::Issued => 1,
            LeaseState::Completed => 2,
        }
    }

    fn from_tag(tag: u64) -> Option<LeaseState> {
        match tag {
            0 => Some(LeaseState::Pending),
            1 => Some(LeaseState::Issued),
            2 => Some(LeaseState::Completed),
            _ => None,
        }
    }
}

/// One lease: a site range, its fencing epoch, and its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Stable identifier (index into the table).
    pub id: u32,
    /// First site in the range.
    pub start: usize,
    /// One past the last site (half-open; `start == end` is a legal
    /// zero-site lease).
    pub end: usize,
    /// Fencing epoch, bumped on every reclaim.
    pub epoch: u32,
    /// Lifecycle state.
    pub state: LeaseState,
    /// Expiry instant on the virtual clock; meaningful only while issued.
    pub deadline: Instant,
    /// Worker the lease is assigned to (process-mode routing; `0` means
    /// unassigned / any worker). Purely advisory: the fence is the epoch,
    /// never the owner.
    pub owner: u32,
}

impl Lease {
    /// Sites in the range.
    pub fn sites(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether an issued lease has expired at `now`. The deadline itself
    /// is the first expired instant: a lease issued at `T` for `L` ms is
    /// live through `T+L-1` and reclaimable at exactly `T+L`.
    pub fn expired(&self, now: Instant) -> bool {
        self.state == LeaseState::Issued && now >= self.deadline
    }
}

/// The whole lease table, keyed (like the store manifest) by the survey
/// fingerprint so two different surveys can never mix lease state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseTable {
    /// Survey fingerprint the leases partition.
    pub fingerprint: u64,
    /// Total ranked sites (the ranges tile `0..sites`).
    pub sites: usize,
    /// Election term of the coordinator that last wrote the table (`0`
    /// when the fabric runs unelected). Informational — the fence is the
    /// `COORD` record's CAS generation, never this number — but it makes
    /// takeovers auditable from the durable state alone.
    pub coord_term: u64,
    /// The leases, in id order.
    pub leases: Vec<Lease>,
}

impl LeaseTable {
    /// Partition `sites` sites into consecutive leases of at most
    /// `sites_per_lease` each, all pending at epoch 0. A `sites_per_lease`
    /// at or above `sites` yields a single lease covering the whole web;
    /// zero is clamped to one.
    pub fn partition(fingerprint: u64, sites: usize, sites_per_lease: usize) -> LeaseTable {
        let per = sites_per_lease.max(1);
        let mut leases = Vec::new();
        let mut start = 0usize;
        while start < sites {
            let end = (start + per).min(sites);
            leases.push(Lease {
                id: leases.len() as u32,
                start,
                end,
                epoch: 0,
                state: LeaseState::Pending,
                deadline: Instant::ZERO,
                owner: 0,
            });
            start = end;
        }
        LeaseTable {
            fingerprint,
            sites,
            coord_term: 0,
            leases,
        }
    }

    /// Whether every lease is completed — the fabric's termination test.
    pub fn all_completed(&self) -> bool {
        self.leases.iter().all(|l| l.state == LeaseState::Completed)
    }

    /// The lease with `id`, if any.
    pub fn lease(&self, id: u32) -> Option<&Lease> {
        self.leases.iter().find(|l| l.id == id)
    }

    /// Mutable access to the lease with `id`.
    pub fn lease_mut(&mut self, id: u32) -> Option<&mut Lease> {
        self.leases.iter_mut().find(|l| l.id == id)
    }

    /// Earliest deadline among issued leases — how far a driver must
    /// advance the virtual clock for an orphaned lease to expire.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.leases
            .iter()
            .filter(|l| l.state == LeaseState::Issued)
            .map(|l| l.deadline)
            .min()
    }

    /// Render to the on-disk text form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "fingerprint={:016x}", self.fingerprint);
        let _ = writeln!(out, "sites={}", self.sites);
        if self.coord_term != 0 {
            let _ = writeln!(out, "coord_term={}", self.coord_term);
        }
        for l in &self.leases {
            let _ = writeln!(
                out,
                "lease={} start={} end={} epoch={} state={} deadline={} owner={}",
                l.id,
                l.start,
                l.end,
                l.epoch,
                l.state.tag(),
                l.deadline.0,
                l.owner
            );
        }
        out
    }

    /// Parse the on-disk text form. Unknown keys are ignored so older
    /// readers survive newer writers.
    pub fn parse(text: &str) -> Result<LeaseTable, StoreError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(StoreError::BadManifest(
                "lease table: missing header line".into(),
            ));
        }
        let mut fingerprint = None;
        let mut sites = None;
        let mut coord_term = 0u64;
        let mut leases = Vec::new();
        for line in lines {
            let line = line.trim();
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key {
                "fingerprint" => {
                    fingerprint = Some(u64::from_str_radix(value, 16).map_err(|_| {
                        StoreError::BadManifest(format!("lease table: bad fingerprint {value:?}"))
                    })?);
                }
                "sites" => {
                    sites = Some(parse_int(value, "sites")? as usize);
                }
                "coord_term" => {
                    coord_term = parse_int(value, "coord_term")?;
                }
                "lease" => {
                    let rejoined = format!("lease={value}");
                    // `owner` is optional (older tables lack it) and
                    // defaults to 0 — unassigned.
                    let mut fields = [None::<u64>; 7];
                    const NAMES: [&str; 7] = [
                        "lease", "start", "end", "epoch", "state", "deadline", "owner",
                    ];
                    for field in rejoined.split_whitespace() {
                        let Some((k, v)) = field.split_once('=') else {
                            continue;
                        };
                        if let Some(slot) = NAMES.iter().position(|n| *n == k) {
                            fields[slot] = Some(parse_int(v, k)?);
                        }
                    }
                    let owner = fields[6].unwrap_or(0);
                    let [Some(id), Some(start), Some(end), Some(epoch), Some(state), Some(deadline), _] =
                        fields
                    else {
                        return Err(StoreError::BadManifest(format!(
                            "lease table: incomplete lease line {line:?}"
                        )));
                    };
                    let state = LeaseState::from_tag(state).ok_or_else(|| {
                        StoreError::BadManifest(format!("lease table: bad state tag {state}"))
                    })?;
                    leases.push(Lease {
                        id: id as u32,
                        start: start as usize,
                        end: end as usize,
                        epoch: epoch as u32,
                        state,
                        deadline: Instant(deadline),
                        owner: owner as u32,
                    });
                }
                _ => {}
            }
        }
        let fingerprint = fingerprint
            .ok_or_else(|| StoreError::BadManifest("lease table: missing fingerprint".into()))?;
        let sites =
            sites.ok_or_else(|| StoreError::BadManifest("lease table: missing sites".into()))?;
        Ok(LeaseTable {
            fingerprint,
            sites,
            coord_term,
            leases,
        })
    }

    /// Durably replace the table on `backend` (synced temp + rename +
    /// directory sync — a crash leaves the old table or the new one).
    pub fn write_atomic(&self, backend: &dyn StorageBackend) -> io::Result<()> {
        write_atomic(backend, LEASES_NAME, &self.render())
    }

    /// Read the table from `backend`; `Ok(None)` when none exists yet.
    pub fn read(backend: &dyn StorageBackend) -> Result<Option<LeaseTable>, StoreError> {
        let bytes = match retry_interrupted(|| backend.get(LEASES_NAME)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let text = String::from_utf8(bytes)
            .map_err(|_| StoreError::BadManifest("lease table is not UTF-8".into()))?;
        LeaseTable::parse(&text).map(Some)
    }
}

fn parse_int(value: &str, what: &str) -> Result<u64, StoreError> {
    value
        .parse()
        .map_err(|_| StoreError::BadManifest(format!("lease table: bad {what}: {value:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_store::LocalFs;

    fn sample() -> LeaseTable {
        let mut t = LeaseTable::partition(0xABCD, 10, 4);
        t.leases[1].state = LeaseState::Issued;
        t.leases[1].epoch = 3;
        t.leases[1].deadline = Instant(4_500);
        t.leases[2].state = LeaseState::Completed;
        t
    }

    #[test]
    fn partition_tiles_the_site_list() {
        let t = LeaseTable::partition(1, 10, 4);
        assert_eq!(t.leases.len(), 3);
        assert_eq!(
            t.leases.iter().map(Lease::sites).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        assert_eq!(t.leases[0].start, 0);
        assert_eq!(t.leases[2].end, 10);
        assert!(!t.all_completed());
    }

    #[test]
    fn single_lease_covers_the_whole_web() {
        // `sites_per_lease` at or past the site count: one lease, all of it.
        for per in [10, 11, usize::MAX] {
            let t = LeaseTable::partition(1, 10, per);
            assert_eq!(t.leases.len(), 1);
            assert_eq!((t.leases[0].start, t.leases[0].end), (0, 10));
        }
    }

    #[test]
    fn zero_site_table_is_vacuously_complete() {
        let t = LeaseTable::partition(1, 0, 4);
        assert!(t.leases.is_empty());
        assert!(t.all_completed(), "no leases → nothing outstanding");
    }

    #[test]
    fn deadline_boundary_is_exact() {
        let mut t = LeaseTable::partition(1, 4, 4);
        let l = &mut t.leases[0];
        l.state = LeaseState::Issued;
        l.deadline = Instant(1_000);
        assert!(
            !l.expired(Instant(999)),
            "one tick before the deadline: still live"
        );
        assert!(
            l.expired(Instant(1_000)),
            "the deadline instant itself is the first expired tick"
        );
        assert!(l.expired(Instant(1_001)));
        // Non-issued leases never expire, whatever the clock says.
        l.state = LeaseState::Completed;
        assert!(!l.expired(Instant(u64::MAX)));
    }

    #[test]
    fn render_parse_roundtrip() {
        let t = sample();
        assert_eq!(LeaseTable::parse(&t.render()).expect("parse"), t);
    }

    #[test]
    fn missing_header_or_fingerprint_rejected() {
        assert!(LeaseTable::parse("fingerprint=00").is_err());
        assert!(LeaseTable::parse("bfu-lease-table v1\nsites=3\n").is_err());
    }

    #[test]
    fn ownerless_lease_lines_parse_as_unassigned() {
        // Tables written before process-mode routing carry no owner key.
        let text = "bfu-lease-table v1\nfingerprint=00ab\nsites=4\n\
                    lease=0 start=0 end=4 epoch=2 state=1 deadline=77\n";
        let t = LeaseTable::parse(text).expect("parse");
        assert_eq!(t.leases[0].owner, 0);
        assert_eq!(t.leases[0].epoch, 2);
    }

    #[test]
    fn owner_roundtrips() {
        let mut t = sample();
        t.leases[1].owner = 3;
        assert_eq!(LeaseTable::parse(&t.render()).expect("parse"), t);
    }

    #[test]
    fn coord_term_roundtrips_and_defaults_to_zero() {
        let mut t = sample();
        t.coord_term = 9;
        assert_eq!(LeaseTable::parse(&t.render()).expect("parse"), t);
        // Unelected tables omit the line entirely, so pre-election readers
        // and writers agree byte-for-byte.
        t.coord_term = 0;
        assert!(!t.render().contains("coord_term"));
        assert_eq!(LeaseTable::parse(&t.render()).expect("parse").coord_term, 0);
    }

    #[test]
    fn unknown_keys_ignored() {
        let mut text = sample().render();
        text.push_str("future_key=whatever\n");
        assert_eq!(LeaseTable::parse(&text).expect("parse"), sample());
    }

    #[test]
    fn atomic_write_and_read() {
        let dir = std::env::temp_dir().join(format!("bfu-lease-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = LocalFs::open(&dir).expect("open backend");
        assert!(LeaseTable::read(&backend).expect("read empty").is_none());
        let t = sample();
        t.write_atomic(&backend).expect("write");
        assert_eq!(LeaseTable::read(&backend).expect("read"), Some(t));
        assert!(!dir.join("LEASES.tmp").exists(), "temp renamed away");
    }
}
