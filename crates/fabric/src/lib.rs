//! # bfu-fabric
//!
//! The lease-based multi-worker survey fabric: how one survey scales past
//! one process without ever double-counting or silently dropping a site.
//!
//! The paper's crawl ran from a single orchestrated host; the roadmap's
//! million-site target needs many workers surveying disjoint ranges, and
//! the follow-up measurement literature makes crawl *completeness* a
//! validity requirement — a worker dying mid-range must never silently
//! lose its sites. The fabric gets there with three pieces:
//!
//! - [`lease`] — the site list partitioned into leases: a site range, a
//!   **fencing epoch**, and a deadline on the virtual clock. The lease
//!   table persists through [`bfu_store::StorageBackend`] with the same
//!   atomic-publish discipline as the store manifest, so the coordinator's
//!   own state is crash-safe.
//! - [`worker`] — a worker crawls its leased range through
//!   [`bfu_crawler::SiteCrawler`] into *staging* shards whose names live
//!   outside the canonical `shard-NNNNN.bfu` namespace: a zombie worker
//!   can write all it likes without the store's scan or scrub ever seeing
//!   the bytes.
//! - [`coordinator`] — issues leases, reclaims expired ones (bumping the
//!   epoch, which fences every publish the previous holder might still
//!   attempt), and runs the **merge point**: the single place staged
//!   records enter the canonical store. A publish is absorbed only if its
//!   lease is still issued under the same epoch; anything else is fenced.
//!
//! Recovery invariant, proven by the `fabric_torture` suite: kill any
//! worker at any crawl/seal/publish step, crash the coordinator between
//! lease-table writes, double-issue a lease, replay a stale publish — the
//! finished dataset fingerprints identically to an uninterrupted
//! single-process run. Duplicate absorbed records collapse under the
//! store's first-record-wins scan; records lost to a death re-crawl when
//! the lease expires and reissues; the final scrub + heal pass closes any
//! residual gap.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod coordinator;
pub mod election;
pub mod lease;
pub mod proc;
pub mod run;
pub mod sim;
pub mod worker;

pub use coordinator::{Coordinator, FabricError, FabricOutcome, MergeOutcome};
pub use election::{election_supported, try_elect, CoordRecord, ElectionHandle, COORD_NAME};
pub use lease::{Lease, LeaseState, LeaseTable, LEASES_NAME};
pub use proc::{
    publish_name, run_fabric_coordinator, run_fabric_worker, run_survey_fabric_processes,
    ProcConfig, WorkerExit, DONE_NAME, PUBLISH_PREFIX,
};
pub use run::{run_survey_fabric, FabricConfig};
pub use sim::{
    run_sim, run_sim_elected, ElectedSimOutcome, FabricFaultPlan, SimOutcome, StepProbe,
};
pub use worker::WorkerPublish;
pub use worker::{run_worker, stage_name, LeaseGrant, NoProbe, Probe, StepOutcome, WorkerRun};
