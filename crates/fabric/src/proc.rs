//! The cross-process fabric driver: one coordinator process, N worker
//! OS processes, coordinating **only** through the storage backend.
//!
//! The in-process driver ([`crate::run`]) serializes through a mutex; here
//! there is no shared memory at all. The coordinator assigns leases by
//! writing `owner=` into the durable lease table ([`Coordinator::claim_for`]);
//! workers poll the table, crawl the ranges routed to them, and hand back
//! results as *publish objects* — small text manifests named
//! `publish-lNNNN-eNNNN` listing the sealed staging shards. The
//! coordinator sweeps publish objects (sorted, so the op sequence is
//! backend-order-independent), absorbs each through the same epoch-fenced
//! [`Coordinator::merge_publish`] the thread driver uses, and deletes the
//! object. A publish from a fenced epoch — a zombie worker whose lease was
//! reclaimed — is discarded exactly like a replayed thread publish.
//!
//! Failure model: a worker process dying is detected by the `worker_alive`
//! callback (process exit), and its issued leases are force-reclaimed with
//! an epoch bump ([`Coordinator::reclaim_owner`]) — no need to wait out the
//! wall-clock deadline, though expiry still covers a *hung* (alive but
//! stuck) worker. If every worker dies, the coordinator crawls the
//! remaining ranges inline, so the fabric always terminates with the
//! complete, fingerprint-identical dataset.
//!
//! Time here is wall-clock milliseconds since the coordinator started (the
//! virtual [`Instant`] currency is just relabeled), so `lease_ms` must
//! comfortably exceed a real lease's crawl time.

use crate::coordinator::{Coordinator, FabricError, FabricOutcome, MergeOutcome};
use crate::election::{election_supported, try_elect};
use crate::worker::{run_worker, LeaseGrant, NoProbe, WorkerPublish, WorkerRun};
use crate::{LeaseState, LeaseTable};
use bfu_crawler::{retry_interrupted, FabricTotals, Survey};
use bfu_store::scrub::default_scrub_threads;
use bfu_store::{StorageBackend, StoreMeta, DEFAULT_SHARD_CAPACITY};
use bfu_util::Instant;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Name of the completion marker object the coordinator writes after the
/// dataset is sealed; workers exit when they see it.
pub const DONE_NAME: &str = "FABRIC_DONE";

/// Header line of a publish object.
const PUBLISH_HEADER: &str = "bfu-fabric-publish v1";

/// Prefix shared by all publish objects.
pub const PUBLISH_PREFIX: &str = "publish-";

/// Shape of a cross-process fabric run.
#[derive(Debug, Clone)]
pub struct ProcConfig {
    /// Worker processes the coordinator expects (ids `1..=workers`).
    pub workers: u32,
    /// Sites per lease (the work-unit granularity).
    pub sites_per_lease: usize,
    /// Lease lifetime in wall-clock milliseconds. Covers hung workers;
    /// dead ones are reclaimed immediately via `worker_alive`.
    pub lease_ms: u64,
    /// Coordinator/worker polling interval in wall-clock milliseconds.
    pub poll_ms: u64,
    /// Records per staging/canonical shard before rollover.
    pub shard_capacity: u32,
    /// Threads for the final scrub pass.
    pub scrub_threads: usize,
    /// Coordinator heartbeat window in wall-clock milliseconds. Only
    /// meaningful on backends with native conditional puts, where the
    /// coordinator runs under an elected, CAS-fenced term; a standby
    /// coordinator may take over once the heartbeat goes this stale.
    pub heartbeat_ms: u64,
}

impl Default for ProcConfig {
    fn default() -> Self {
        ProcConfig {
            workers: 2,
            sites_per_lease: 25,
            lease_ms: 600_000,
            poll_ms: 10,
            shard_capacity: DEFAULT_SHARD_CAPACITY,
            scrub_threads: default_scrub_threads(),
            heartbeat_ms: 60_000,
        }
    }
}

/// The publish object's name for `lease` under `epoch`. Epoch is part of
/// the name so a zombie's stale publish can never clobber the reissued
/// holder's — they are different objects, and the fence at merge sorts
/// them out.
pub fn publish_name(lease: u32, epoch: u32) -> String {
    format!("{PUBLISH_PREFIX}l{lease:04}-e{epoch:04}")
}

/// Render a [`WorkerPublish`] as a publish object body.
fn render_publish(p: &WorkerPublish) -> String {
    let mut out = String::new();
    out.push_str(PUBLISH_HEADER);
    out.push('\n');
    out.push_str(&format!(
        "lease={} epoch={} sites={}\n",
        p.lease, p.epoch, p.sites_crawled
    ));
    for shard in &p.shards {
        out.push_str("shard=");
        out.push_str(shard);
        out.push('\n');
    }
    out
}

/// Parse a publish object body; `None` for anything malformed (a torn or
/// foreign object is skipped, never fatal — the lease just reissues).
fn parse_publish(bytes: &[u8]) -> Option<WorkerPublish> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.lines();
    if lines.next()? != PUBLISH_HEADER {
        return None;
    }
    let mut lease = None;
    let mut epoch = None;
    let mut sites = None;
    for field in lines.next()?.split_whitespace() {
        let (key, value) = field.split_once('=')?;
        match key {
            "lease" => lease = value.parse::<u32>().ok(),
            "epoch" => epoch = value.parse::<u32>().ok(),
            "sites" => sites = value.parse::<usize>().ok(),
            _ => return None,
        }
    }
    let mut shards = Vec::new();
    for line in lines {
        let name = line.strip_prefix("shard=")?;
        if name.is_empty() {
            return None;
        }
        shards.push(name.to_string());
    }
    Some(WorkerPublish {
        lease: lease?,
        epoch: epoch?,
        shards,
        sites_crawled: sites?,
    })
}

/// What ended a worker process's run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// Saw the [`DONE_NAME`] marker: the dataset is sealed.
    Done,
    /// Hit the `max_leases` cap (torture harnesses use this to model a
    /// worker dying after a fixed amount of work).
    LeaseCap,
    /// `max_polls` elapsed without the done marker appearing — the
    /// coordinator is presumed gone; exit rather than spin forever.
    Orphaned,
}

/// Worker-process entry point: poll the lease table on `backend`, crawl
/// every lease routed to `worker_id`, and hand each result back as a
/// publish object. Returns when the done marker appears, after
/// `max_leases` leases (if `Some` — the torture knob for "die after N"),
/// or after `max_polls` empty polls.
///
/// The worker never mutates the lease table — ownership flows one way
/// (coordinator writes, worker reads), and results flow back only through
/// publish objects, so there is exactly one writer per object name.
pub fn run_fabric_worker(
    survey: &Survey,
    backend: Arc<dyn StorageBackend>,
    worker_id: u32,
    cfg: &ProcConfig,
    max_leases: Option<usize>,
    max_polls: usize,
) -> Result<WorkerExit, FabricError> {
    let fingerprint = survey.fingerprint();
    let mut done_leases = 0usize;
    let mut published: Vec<(u32, u32)> = Vec::new();
    for _ in 0..max_polls.max(1) {
        if retry_interrupted(|| backend.exists(DONE_NAME)).unwrap_or(false) {
            return Ok(WorkerExit::Done);
        }
        let Some(table) = LeaseTable::read(backend.as_ref())? else {
            std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
            continue;
        };
        if table.fingerprint != fingerprint {
            return Err(FabricError::Fabric(format!(
                "lease table fingerprint {:016x} is not this survey's {:016x}",
                table.fingerprint, fingerprint
            )));
        }
        let mut worked = false;
        for lease in &table.leases {
            if lease.state != LeaseState::Issued || lease.owner != worker_id {
                continue;
            }
            if published.contains(&(lease.id, lease.epoch)) {
                continue; // crawled under this exact epoch already
            }
            let name = publish_name(lease.id, lease.epoch);
            if retry_interrupted(|| backend.exists(&name)).unwrap_or(false) {
                continue; // a previous incarnation already published this
            }
            let grant = LeaseGrant {
                lease: lease.id,
                start: lease.start,
                end: lease.end,
                epoch: lease.epoch,
            };
            let run = run_worker(
                survey,
                backend.as_ref(),
                grant,
                cfg.shard_capacity.max(1),
                &NoProbe,
            )?;
            let WorkerRun::Published(publish) = run else {
                return Err(FabricError::Fabric("worker died under NoProbe".into()));
            };
            // `replace` (not `put`): last-writer-wins whole-object publish,
            // safe against a concurrent zombie only because the epoch in
            // the name makes same-name writers same-epoch — identical
            // content by determinism.
            backend
                .replace(&name, render_publish(&publish).as_bytes())
                .map_err(FabricError::from)?;
            published.push((lease.id, lease.epoch));
            worked = true;
            done_leases += 1;
            if max_leases.is_some_and(|cap| done_leases >= cap) {
                return Ok(WorkerExit::LeaseCap);
            }
        }
        if !worked {
            std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
        }
    }
    Ok(WorkerExit::Orphaned)
}

/// Coordinator-process driver: assign leases to live workers, absorb their
/// publish objects, reclaim dead owners' leases, and finish the store.
///
/// `worker_alive(id)` reports whether worker process `id` (1-based) is
/// still running; the spawner owns that knowledge (child handles), the
/// fabric just reacts to it. When no worker is alive and ranges remain,
/// the coordinator crawls them inline so the run always completes.
pub fn run_fabric_coordinator(
    survey: &Survey,
    backend: Arc<dyn StorageBackend>,
    cfg: &ProcConfig,
    worker_alive: &mut dyn FnMut(u32) -> bool,
) -> Result<FabricOutcome, FabricError> {
    let mut meta = StoreMeta::for_survey(survey);
    meta.shard_capacity = cfg.shard_capacity.max(1);
    let started = std::time::Instant::now();
    // On a CAS-capable backend the coordinator runs under an elected,
    // generation-fenced term: win it before touching any durable state.
    // The wait is bounded — a stale COORD record from a previous process
    // (whose wall-clock relabeling doesn't align with ours) must not wedge
    // the run, so after one full heartbeat window we proceed unelected.
    let mut elected = None;
    if election_supported(backend.as_ref()) {
        let give_up = std::time::Instant::now()
            + Duration::from_millis(cfg.heartbeat_ms.saturating_add(cfg.poll_ms.max(1) * 4));
        loop {
            let now = Instant(started.elapsed().as_millis() as u64);
            match try_elect(backend.as_ref(), 1, now, cfg.heartbeat_ms)? {
                Some(h) => {
                    elected = Some(h);
                    break;
                }
                None if std::time::Instant::now() >= give_up => break,
                None => std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1))),
            }
        }
    }
    let mut coord = match elected {
        Some(handle) => Coordinator::open_elected(
            Arc::clone(&backend),
            survey,
            meta,
            cfg.sites_per_lease,
            cfg.lease_ms,
            handle,
        )?,
        None => Coordinator::open(
            Arc::clone(&backend),
            survey,
            meta,
            cfg.sites_per_lease,
            cfg.lease_ms,
        )?,
    };
    let mut stats = FabricTotals {
        enabled: true,
        workers: cfg.workers.max(1) as u64,
        ..FabricTotals::default()
    };
    stats.leases_total = coord.table().leases.len() as u64;
    stats.elections_won = u64::from(coord.election().is_some());
    let mut next_worker = 0u32;
    while !coord.all_completed() {
        let now = Instant(started.elapsed().as_millis() as u64);
        // Prove liveness every sweep; a standby takes the term the moment
        // this goes a heartbeat window stale. A Deposed error here is the
        // correct way for this process to learn it lost — stop writing.
        coord.heartbeat(now)?;

        // 1. Absorb every visible publish object, in sorted name order so
        //    the op sequence is identical whatever order the backend
        //    listed them in. Fenced publishes are discarded by the merge
        //    point; the object is removed either way.
        let mut publishes: Vec<String> = retry_interrupted(|| backend.list())?
            .into_iter()
            .filter(|n| n.starts_with(PUBLISH_PREFIX))
            .collect();
        publishes.sort_unstable();
        for name in &publishes {
            let bytes = match retry_interrupted(|| backend.get(name)) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(FabricError::from(e)),
            };
            if let Some(publish) = parse_publish(&bytes) {
                match coord.merge_publish(&publish, &NoProbe)? {
                    MergeOutcome::Accepted { records } => {
                        stats.leases_completed += 1;
                        stats.records_absorbed += records as u64;
                    }
                    MergeOutcome::Fenced => stats.publishes_fenced += 1,
                }
            }
            let _ = retry_interrupted(|| backend.remove(name));
        }

        // 2. Reclaim: wall-clock expiry first (covers hung-but-alive
        //    workers), then force-reclaim dead owners — their unmerged
        //    work is gone, waiting out the deadline buys nothing.
        let expired = coord.reclaim_expired(now, &NoProbe)?;
        stats.leases_expired += expired as u64;
        stats.leases_reclaimed += expired as u64;
        let mut alive: Vec<u32> = Vec::new();
        for id in 1..=cfg.workers.max(1) {
            if worker_alive(id) {
                alive.push(id);
            } else {
                let reclaimed = coord.reclaim_owner(id, &NoProbe)?;
                stats.leases_reclaimed += reclaimed as u64;
            }
        }

        // 3. Assign every pending lease round-robin over live workers —
        //    or crawl inline when nobody is left to route to.
        if alive.is_empty() {
            while let Some(grant) = coord.claim_for(now, 0, &NoProbe)? {
                stats.leases_issued += 1;
                let run = run_worker(
                    survey,
                    backend.as_ref(),
                    grant,
                    cfg.shard_capacity.max(1),
                    &NoProbe,
                )?;
                let WorkerRun::Published(publish) = run else {
                    return Err(FabricError::Fabric("worker died under NoProbe".into()));
                };
                match coord.merge_publish(&publish, &NoProbe)? {
                    MergeOutcome::Accepted { records } => {
                        stats.leases_completed += 1;
                        stats.records_absorbed += records as u64;
                    }
                    MergeOutcome::Fenced => stats.publishes_fenced += 1,
                }
            }
            continue;
        }
        let mut assigned = false;
        loop {
            let owner = alive[(next_worker as usize) % alive.len()];
            match coord.claim_for(now, owner, &NoProbe)? {
                Some(_) => {
                    stats.leases_issued += 1;
                    next_worker = next_worker.wrapping_add(1);
                    assigned = true;
                }
                None => break,
            }
        }
        if !assigned && publishes.is_empty() {
            std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
        }
    }

    // Leftover publish objects (fenced zombies that raced the last merge
    // sweep) are debris; remove them before sealing so the store holds
    // only canonical names. Sorted for the same order-independence reason.
    let mut leftovers: Vec<String> = retry_interrupted(|| backend.list())?
        .into_iter()
        .filter(|n| n.starts_with(PUBLISH_PREFIX))
        .collect();
    leftovers.sort_unstable();
    for name in &leftovers {
        let _ = retry_interrupted(|| backend.remove(name));
    }
    let outcome = coord.finish(survey, stats, cfg.scrub_threads.max(1))?;
    // The done marker releases polling workers. Best-effort: if this
    // write dies the workers exit via their poll cap instead.
    let fp = format!("{:016x}", outcome.dataset.fingerprint());
    let _ = backend.replace(DONE_NAME, fp.as_bytes());
    Ok(outcome)
}

/// Run `survey` across real OS worker processes on `backend`.
///
/// `spawn_worker(id)` launches worker process `id` (which must end up
/// calling [`run_fabric_worker`] with the same survey and an equivalent
/// backend — typically the same directory via `bfu-objstore`'s
/// `DirObjectStore`); the returned [`std::process::Child`] handles are
/// polled for liveness and reaped on exit. Worker deaths are tolerated:
/// their leases are fenced and reassigned, and if every worker dies the
/// coordinator finishes the crawl inline.
pub fn run_survey_fabric_processes(
    survey: &Survey,
    backend: Arc<dyn StorageBackend>,
    cfg: &ProcConfig,
    spawn_worker: &mut dyn FnMut(u32) -> io::Result<std::process::Child>,
) -> Result<FabricOutcome, FabricError> {
    let mut children: Vec<(u32, Option<std::process::Child>)> = Vec::new();
    for id in 1..=cfg.workers.max(1) {
        match spawn_worker(id) {
            Ok(child) => children.push((id, Some(child))),
            // A worker that never started is just a dead worker.
            Err(_) => children.push((id, None)),
        }
    }
    let mut alive = move |id: u32| -> bool {
        children
            .iter_mut()
            .find(|(cid, _)| *cid == id)
            .and_then(|(_, slot)| {
                let done = slot.as_mut()?.try_wait().map_or(true, |s| s.is_some());
                if done {
                    *slot = None; // reaped
                }
                slot.as_ref()
            })
            .is_some()
    };
    run_fabric_coordinator(survey, backend, cfg, &mut alive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_publish() -> WorkerPublish {
        WorkerPublish {
            lease: 3,
            epoch: 2,
            shards: vec![
                "stage-l0003-e0002-00000.bfu".into(),
                "stage-l0003-e0002-00001.bfu".into(),
            ],
            sites_crawled: 25,
        }
    }

    #[test]
    fn publish_roundtrips() {
        let p = sample_publish();
        let rendered = render_publish(&p);
        assert_eq!(parse_publish(rendered.as_bytes()), Some(p));
    }

    #[test]
    fn publish_with_no_shards_roundtrips() {
        let p = WorkerPublish {
            shards: Vec::new(),
            ..sample_publish()
        };
        let rendered = render_publish(&p);
        assert_eq!(parse_publish(rendered.as_bytes()), Some(p));
    }

    #[test]
    fn malformed_publishes_parse_as_none() {
        assert_eq!(parse_publish(b""), None);
        assert_eq!(parse_publish(b"not a publish\n"), None);
        assert_eq!(parse_publish(b"bfu-fabric-publish v1\n"), None);
        assert_eq!(
            parse_publish(b"bfu-fabric-publish v1\nlease=1 epoch=2\n"),
            None,
            "missing sites field"
        );
        assert_eq!(
            parse_publish(b"bfu-fabric-publish v1\nlease=1 epoch=2 sites=5\nbogus line\n"),
            None
        );
        assert_eq!(parse_publish(&[0xFF, 0xFE, 0x00]), None, "not UTF-8");
    }

    #[test]
    fn publish_names_sort_by_lease_then_epoch() {
        let mut names = vec![
            publish_name(10, 1),
            publish_name(2, 3),
            publish_name(2, 1),
            publish_name(1, 2),
        ];
        names.sort_unstable();
        assert_eq!(
            names,
            vec![
                "publish-l0001-e0002",
                "publish-l0002-e0001",
                "publish-l0002-e0003",
                "publish-l0010-e0001",
            ]
        );
    }
}
