//! The production fabric driver: N worker threads, one coordinator.
//!
//! Workers loop claim → crawl → publish against a mutex-held
//! [`Coordinator`]; the mutex *is* the fabric's serialization guarantee
//! (the merge point and lease table are single-writer by construction).
//! Crawling — all the actual work — runs outside the lock, so workers
//! overlap on the expensive part and serialize only on the cheap
//! bookkeeping.
//!
//! Time is a shared virtual clock advanced by crawl work (each finished
//! lease advances it by `sites × site_ms`), the same currency the torture
//! driver uses — so lease expiry behaves identically under test and in
//! production. The default [`FabricConfig::lease_ms`] is deliberately
//! generous: in-process workers don't die on their own, so expiry exists
//! for crash recovery (a *restarted* fabric reclaiming a dead run's
//! leases), not for pacing live workers.

use crate::coordinator::{Coordinator, FabricError, FabricOutcome, MergeOutcome};
use crate::worker::{run_worker, NoProbe, WorkerRun};
use bfu_crawler::{FabricTotals, Survey};
use bfu_store::scrub::default_scrub_threads;
use bfu_store::{StorageBackend, StoreMeta, DEFAULT_SHARD_CAPACITY};
use bfu_util::Instant;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shape of a fabric run.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Worker threads.
    pub workers: usize,
    /// Sites per lease (the work-unit granularity).
    pub sites_per_lease: usize,
    /// Lease lifetime in virtual milliseconds. Must dwarf
    /// `sites_per_lease × site_ms × workers`, or live workers' leases
    /// expire under them while other workers advance the clock.
    pub lease_ms: u64,
    /// Virtual milliseconds one site's crawl advances the clock.
    pub site_ms: u64,
    /// Records per staging/canonical shard before rollover.
    pub shard_capacity: u32,
    /// Threads for the final scrub pass.
    pub scrub_threads: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            workers: 4,
            sites_per_lease: 25,
            lease_ms: 1_000_000,
            site_ms: 1_000,
            shard_capacity: DEFAULT_SHARD_CAPACITY,
            scrub_threads: default_scrub_threads(),
        }
    }
}

/// Run `survey` across `cfg.workers` threads on `backend`.
///
/// Restartable: killing the process and calling this again on the same
/// backend adopts the persisted lease table and store, reclaims expired
/// leases, and finishes the remaining ranges. The result is
/// fingerprint-identical to `survey.run()` in a single process — the
/// fabric's core contract, enforced by `fabric_torture`.
pub fn run_survey_fabric(
    survey: &Survey,
    backend: Arc<dyn StorageBackend>,
    cfg: &FabricConfig,
) -> Result<FabricOutcome, FabricError> {
    let mut meta = StoreMeta::for_survey(survey);
    meta.shard_capacity = cfg.shard_capacity.max(1);
    let coordinator = Mutex::new(Coordinator::open(
        Arc::clone(&backend),
        survey,
        meta,
        cfg.sites_per_lease,
        cfg.lease_ms,
    )?);
    let stats = Mutex::new(FabricTotals {
        enabled: true,
        workers: cfg.workers.max(1) as u64,
        ..FabricTotals::default()
    });
    let clock = AtomicU64::new(0);
    let in_flight = AtomicU64::new(0);
    let failure: Mutex<Option<FabricError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            scope.spawn(|| {
                if let Err(e) = worker_loop(
                    survey,
                    backend.as_ref(),
                    &coordinator,
                    &stats,
                    &clock,
                    &in_flight,
                    &failure,
                    cfg,
                ) {
                    if let Ok(mut slot) = failure.lock() {
                        slot.get_or_insert(e);
                    }
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }
    let coordinator = coordinator.into_inner().unwrap_or_else(|p| p.into_inner());
    let mut stats = stats.into_inner().unwrap_or_else(|p| p.into_inner());
    stats.leases_total = coordinator.table().leases.len() as u64;
    coordinator.finish(survey, stats, cfg.scrub_threads.max(1))
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    survey: &Survey,
    backend: &dyn StorageBackend,
    coordinator: &Mutex<Coordinator>,
    stats: &Mutex<FabricTotals>,
    clock: &AtomicU64,
    in_flight: &AtomicU64,
    failure: &Mutex<Option<FabricError>>,
    cfg: &FabricConfig,
) -> Result<(), FabricError> {
    loop {
        if failure.lock().map_or(true, |slot| slot.is_some()) {
            return Ok(()); // another worker already failed; stand down
        }
        let now = Instant(clock.load(Ordering::SeqCst));
        let (grant, next_deadline) = {
            let mut coord = coordinator.lock().unwrap_or_else(|p| p.into_inner());
            let reclaimed = coord.reclaim_expired(now, &NoProbe)?;
            if reclaimed > 0 {
                if let Ok(mut s) = stats.lock() {
                    s.leases_expired += reclaimed as u64;
                    s.leases_reclaimed += reclaimed as u64;
                }
            }
            if coord.all_completed() {
                return Ok(());
            }
            let grant = coord.claim(now, &NoProbe)?;
            if grant.is_some() {
                // Inside the lock, so a sibling observing `None` below sees
                // this holder and never fast-forwards the clock under it.
                in_flight.fetch_add(1, Ordering::SeqCst);
            }
            (grant, coord.next_deadline())
        };
        let Some(grant) = grant else {
            // Nothing pending but not all completed: the outstanding leases
            // are either held by sibling workers (wait for their publishes)
            // or orphans adopted from a crashed run — nobody in-process
            // holds them, so nobody will advance the clock past their
            // deadlines. Fast-forward so they expire and reclaim.
            if in_flight.load(Ordering::SeqCst) == 0 {
                if let Some(deadline) = next_deadline {
                    clock.fetch_max(deadline.0, Ordering::SeqCst);
                    continue;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            continue;
        };
        if let Ok(mut s) = stats.lock() {
            s.leases_issued += 1;
        }
        let run = run_worker(survey, backend, grant, cfg.shard_capacity.max(1), &NoProbe);
        clock.fetch_add(
            (grant.end.saturating_sub(grant.start) as u64) * cfg.site_ms,
            Ordering::SeqCst,
        );
        let run = match run {
            Ok(run) => run,
            Err(e) => {
                in_flight.fetch_sub(1, Ordering::SeqCst);
                return Err(e);
            }
        };
        let WorkerRun::Published(publish) = run else {
            // NoProbe never kills; Died here is unreachable.
            in_flight.fetch_sub(1, Ordering::SeqCst);
            return Err(FabricError::Fabric("worker died under NoProbe".into()));
        };
        let outcome = {
            let mut coord = coordinator.lock().unwrap_or_else(|p| p.into_inner());
            let outcome = coord.merge_publish(&publish, &NoProbe);
            in_flight.fetch_sub(1, Ordering::SeqCst);
            outcome?
        };
        if let Ok(mut s) = stats.lock() {
            match outcome {
                MergeOutcome::Accepted { records } => {
                    s.leases_completed += 1;
                    s.records_absorbed += records as u64;
                }
                MergeOutcome::Fenced => s.publishes_fenced += 1,
            }
        }
    }
}
