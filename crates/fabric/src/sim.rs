//! The deterministic fabric simulator — `fabric_torture`'s engine.
//!
//! One thread plays every role: the coordinator, each worker, and the
//! virtual clock. Every crawl/seal/publish/issue/merge step announces
//! itself to a [`StepProbe`], which kills the acting process at exactly
//! one chosen step — so a sweep over `kill_at = 0..steps(healthy run)`
//! exercises a kill at *every* step the fabric can take:
//!
//! - a **worker** step dying models a worker process crash: its staging
//!   debris is orphaned, its lease expires on the virtual clock, reclaim
//!   bumps the epoch, and the range reissues;
//! - a **coordinator** step dying models a coordinator crash between
//!   lease-table writes: the simulator reopens a fresh [`Coordinator`]
//!   from durable state (exactly what a restarted process would do) and
//!   carries on;
//! - a kill at the *publish* step produces a zombie publish — complete,
//!   undelivered. The simulator stashes every zombie and replays them all
//!   after the table has drained, asserting each one is **fenced**: by
//!   then the lease is completed (or reissued under a bumped epoch), so
//!   acceptance would mean double-counting.
//!
//! The end state of every schedule must fingerprint identically to an
//! uninterrupted single-process survey — the recovery invariant.

use crate::coordinator::{Coordinator, FabricError, FabricOutcome, MergeOutcome};
use crate::election::{try_elect, ElectionHandle};
use crate::run::FabricConfig;
use crate::worker::{run_worker, NoProbe, Probe, StepOutcome, WorkerPublish, WorkerRun};
use bfu_crawler::{FabricTotals, Survey};
use bfu_store::{StorageBackend, StoreMeta};
use bfu_util::VirtualClock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fault schedule for one simulated fabric run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricFaultPlan {
    /// Kill the acting process (worker or coordinator) at this global
    /// step ordinal, once. `None` runs healthy.
    pub kill_at: Option<u64>,
    /// Issue every lease to *two* sequential workers before merging —
    /// the double-issue schedule. The second publish must fence.
    pub double_issue: bool,
}

/// The counting, killing probe behind the simulator. Also records the
/// step trace of a healthy run, which is how the torture sweep learns
/// how many steps there are to kill at.
#[derive(Debug, Default)]
pub struct StepProbe {
    count: AtomicU64,
    kill_at: Option<u64>,
    fired: AtomicBool,
    trace: Mutex<Vec<String>>,
}

impl StepProbe {
    /// A probe that kills at `kill_at` (never, when `None`).
    pub fn new(kill_at: Option<u64>) -> StepProbe {
        StepProbe {
            kill_at,
            ..StepProbe::default()
        }
    }

    /// Steps announced so far.
    pub fn steps(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// The labels announced so far, in order.
    pub fn trace(&self) -> Vec<String> {
        self.trace.lock().map(|t| t.clone()).unwrap_or_default()
    }
}

impl Probe for StepProbe {
    fn step(&self, label: &str) -> StepOutcome {
        let k = self.count.fetch_add(1, Ordering::SeqCst);
        if let Ok(mut t) = self.trace.lock() {
            t.push(label.to_owned());
        }
        if Some(k) == self.kill_at && !self.fired.swap(true, Ordering::SeqCst) {
            return StepOutcome::Die;
        }
        StepOutcome::Continue
    }
}

/// What one simulated schedule did, and how it ended.
#[derive(Debug)]
pub struct SimOutcome {
    /// The finished fabric outcome — dataset, health, stats, scrub.
    pub outcome: FabricOutcome,
    /// Total steps announced (healthy runs: the sweep's kill range).
    pub steps: u64,
    /// The full step trace, in order.
    pub trace: Vec<String>,
    /// Workers killed mid-lease.
    pub worker_deaths: u64,
    /// Coordinator crashes (kills at `coord:` steps) recovered from.
    pub coordinator_crashes: u64,
    /// Stashed zombie publishes replayed at the end — every one fenced.
    pub fenced_replays: u64,
}

/// Run one simulated fabric schedule to completion.
///
/// Deterministic: same survey, config, and plan → same trace, same
/// dataset, same fingerprint. Time is a [`VirtualClock`] advanced by
/// crawl work (`sites × site_ms` per attempt) and fast-forwarded to the
/// next lease deadline when every remaining lease is orphaned.
pub fn run_sim(
    survey: &Survey,
    backend: Arc<dyn StorageBackend>,
    cfg: &FabricConfig,
    plan: &FabricFaultPlan,
) -> Result<SimOutcome, FabricError> {
    let mut meta = StoreMeta::for_survey(survey);
    meta.shard_capacity = cfg.shard_capacity.max(1);
    let open = || {
        Coordinator::open(
            Arc::clone(&backend),
            survey,
            meta.clone(),
            cfg.sites_per_lease,
            cfg.lease_ms,
        )
    };
    let probe = StepProbe::new(plan.kill_at);
    let mut clock = VirtualClock::new();
    let mut coordinator = open()?;
    let mut stats = FabricTotals {
        enabled: true,
        workers: 1,
        ..FabricTotals::default()
    };
    let mut worker_deaths = 0u64;
    let mut coordinator_crashes = 0u64;
    let mut zombies: Vec<WorkerPublish> = Vec::new();
    let mut guard = 0u32;
    loop {
        guard += 1;
        if guard > 100_000 {
            return Err(FabricError::Fabric(
                "simulated fabric failed to converge".into(),
            ));
        }
        // Coordinator crash model: the kill surfaces as CoordinatorKilled;
        // the simulator "restarts the process" by reopening from durable
        // state. In-memory table changes that were never written are lost,
        // exactly like a real crash.
        match coordinator.reclaim_expired(clock.now(), &probe) {
            Ok(n) => {
                stats.leases_expired += n as u64;
                stats.leases_reclaimed += n as u64;
            }
            Err(FabricError::CoordinatorKilled(_)) => {
                coordinator_crashes += 1;
                coordinator = open()?;
                continue;
            }
            Err(e) => return Err(e),
        }
        if coordinator.all_completed() {
            break;
        }
        let grant = match coordinator.claim(clock.now(), &probe) {
            Ok(g) => g,
            Err(FabricError::CoordinatorKilled(_)) => {
                coordinator_crashes += 1;
                coordinator = open()?;
                continue;
            }
            Err(e) => return Err(e),
        };
        let Some(grant) = grant else {
            // Everything outstanding is issued to dead workers (the
            // simulator runs them to completion synchronously, so a live
            // holder can't exist here). Fast-forward to the next deadline.
            let Some(deadline) = coordinator.next_deadline() else {
                return Err(FabricError::Fabric(
                    "no pending leases, no deadlines, not complete".into(),
                ));
            };
            clock.advance_to(deadline);
            continue;
        };
        stats.leases_issued += 1;
        let attempts = if plan.double_issue { 2 } else { 1 };
        for _ in 0..attempts {
            let run = run_worker(
                survey,
                backend.as_ref(),
                grant,
                cfg.shard_capacity.max(1),
                &probe,
            )?;
            clock.advance((grant.end.saturating_sub(grant.start) as u64) * cfg.site_ms);
            let publish = match run {
                WorkerRun::Published(p) => p,
                WorkerRun::Died(orphan) => {
                    worker_deaths += 1;
                    stats.workers_died += 1;
                    // A kill at the publish step leaves a zombie message;
                    // replay it at the end to prove the fence holds.
                    zombies.extend(orphan);
                    continue;
                }
            };
            match coordinator.merge_publish(&publish, &probe) {
                Ok(MergeOutcome::Accepted { records }) => {
                    stats.leases_completed += 1;
                    stats.records_absorbed += records as u64;
                }
                Ok(MergeOutcome::Fenced) => stats.publishes_fenced += 1,
                Err(FabricError::CoordinatorKilled(_)) => {
                    // Crashed mid-merge: the publish itself is now stale
                    // from the restarted coordinator's point of view (its
                    // lease either completed durably or will reissue under
                    // a new epoch). Keep it around as a zombie replay.
                    coordinator_crashes += 1;
                    zombies.push(publish);
                    coordinator = open()?;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
    }
    // The table has drained. Replay every zombie publish: each one's lease
    // is Completed (or Issued under a bumped epoch it doesn't carry), so
    // the merge point MUST fence it — acceptance here would be the
    // double-count the fabric exists to prevent.
    let mut fenced_replays = 0u64;
    for publish in &zombies {
        match coordinator.merge_publish(publish, &NoProbe)? {
            MergeOutcome::Fenced => {
                fenced_replays += 1;
                stats.publishes_fenced += 1;
            }
            MergeOutcome::Accepted { .. } => {
                return Err(FabricError::Fabric(format!(
                    "stale publish for lease {} epoch {} was accepted after drain",
                    publish.lease, publish.epoch
                )));
            }
        }
    }
    stats.leases_total = coordinator.table().leases.len() as u64;
    let steps = probe.steps();
    let trace = probe.trace();
    let outcome = coordinator.finish(survey, stats, cfg.scrub_threads.max(1))?;
    Ok(SimOutcome {
        outcome,
        steps,
        trace,
        worker_deaths,
        coordinator_crashes,
        fenced_replays,
    })
}

/// What one elected-coordinator schedule did, and how it ended.
#[derive(Debug)]
pub struct ElectedSimOutcome {
    /// The finished fabric outcome — dataset, health, stats, scrub.
    pub outcome: FabricOutcome,
    /// Total steps announced (healthy runs: the sweep's kill range).
    pub steps: u64,
    /// Elections won across the schedule (≥ 1: the initial claim).
    pub elections_won: u64,
    /// Killed coordinators whose end-of-run replay was CAS-fenced.
    pub coordinators_deposed: u64,
    /// Stashed zombie publishes replayed at the end — every one fenced.
    pub fenced_replays: u64,
    /// Coordinator kills survived by a standby taking the term.
    pub coordinator_crashes: u64,
}

/// Win an election or die trying: advance the clock past the incumbent's
/// heartbeat deadline until the CAS lands.
fn elect_or_wait(
    backend: &dyn StorageBackend,
    owner: u32,
    clock: &mut VirtualClock,
    heartbeat_ms: u64,
) -> Result<ElectionHandle, FabricError> {
    for _ in 0..1_000 {
        if let Some(h) = try_elect(backend, owner, clock.now(), heartbeat_ms)? {
            return Ok(h);
        }
        clock.advance(heartbeat_ms.max(1));
    }
    Err(FabricError::Fabric(
        "standby failed to win an election in 1000 heartbeat windows".into(),
    ))
}

/// [`run_sim`] under coordinator **election**: the coordinator holds an
/// elected term, heartbeats every loop iteration, and every durable write
/// is fenced by the `COORD` record's CAS generation.
///
/// When the probe kills the coordinator, the simulator does *not* reopen
/// it — it keeps the dead incumbent around as a zombie, advances the
/// clock past its heartbeat deadline, and has a **standby** (next owner
/// id) win the term and finish the survey. After the table drains, every
/// zombie coordinator replays its in-memory lease table via
/// [`Coordinator::persist_table`] and every one must come back
/// [`FabricError::Deposed`] — the CAS fence rejecting stale leadership at
/// the store, with no cooperation from the zombie required.
///
/// Requires a backend with native conditional puts (see
/// [`crate::election::election_supported`]).
pub fn run_sim_elected(
    survey: &Survey,
    backend: Arc<dyn StorageBackend>,
    cfg: &FabricConfig,
    kill_at: Option<u64>,
    heartbeat_ms: u64,
) -> Result<ElectedSimOutcome, FabricError> {
    let mut meta = StoreMeta::for_survey(survey);
    meta.shard_capacity = cfg.shard_capacity.max(1);
    let probe = StepProbe::new(kill_at);
    let mut clock = VirtualClock::new();
    let mut elections_won = 0u64;
    let mut next_owner = 1u32;
    let mut open_next = |clock: &mut VirtualClock| -> Result<Coordinator, FabricError> {
        let owner = next_owner;
        next_owner += 1;
        let handle = elect_or_wait(backend.as_ref(), owner, clock, heartbeat_ms)?;
        elections_won += 1;
        Coordinator::open_elected(
            Arc::clone(&backend),
            survey,
            meta.clone(),
            cfg.sites_per_lease,
            cfg.lease_ms,
            handle,
        )
    };
    let mut coordinator = open_next(&mut clock)?;
    let mut stats = FabricTotals {
        enabled: true,
        workers: 1,
        ..FabricTotals::default()
    };
    let mut coordinator_crashes = 0u64;
    let mut zombie_coords: Vec<Coordinator> = Vec::new();
    let mut zombies: Vec<WorkerPublish> = Vec::new();
    let mut guard = 0u32;
    loop {
        guard += 1;
        if guard > 100_000 {
            return Err(FabricError::Fabric(
                "simulated elected fabric failed to converge".into(),
            ));
        }
        // Failover model: the kill surfaces as CoordinatorKilled, but the
        // dead incumbent is NOT restarted — a standby with a fresh owner id
        // waits out the heartbeat and takes the term. The corpse is kept to
        // prove, at the end, that the fence rejects everything it may yet
        // write.
        macro_rules! failover {
            () => {{
                coordinator_crashes += 1;
                let successor = open_next(&mut clock)?;
                zombie_coords.push(std::mem::replace(&mut coordinator, successor));
                continue;
            }};
        }
        coordinator.heartbeat(clock.now())?;
        match coordinator.reclaim_expired(clock.now(), &probe) {
            Ok(n) => {
                stats.leases_expired += n as u64;
                stats.leases_reclaimed += n as u64;
            }
            Err(FabricError::CoordinatorKilled(_)) => failover!(),
            Err(e) => return Err(e),
        }
        if coordinator.all_completed() {
            break;
        }
        let grant = match coordinator.claim(clock.now(), &probe) {
            Ok(g) => g,
            Err(FabricError::CoordinatorKilled(_)) => failover!(),
            Err(e) => return Err(e),
        };
        let Some(grant) = grant else {
            let Some(deadline) = coordinator.next_deadline() else {
                return Err(FabricError::Fabric(
                    "no pending leases, no deadlines, not complete".into(),
                ));
            };
            clock.advance_to(deadline);
            continue;
        };
        stats.leases_issued += 1;
        let run = run_worker(
            survey,
            backend.as_ref(),
            grant,
            cfg.shard_capacity.max(1),
            &probe,
        )?;
        clock.advance((grant.end.saturating_sub(grant.start) as u64) * cfg.site_ms);
        // Crawling took virtual time; prove liveness before merging so the
        // next standby's takeover clockwork stays honest.
        coordinator.heartbeat(clock.now())?;
        let publish = match run {
            WorkerRun::Published(p) => p,
            WorkerRun::Died(orphan) => {
                stats.workers_died += 1;
                zombies.extend(orphan);
                continue;
            }
        };
        match coordinator.merge_publish(&publish, &probe) {
            Ok(MergeOutcome::Accepted { records }) => {
                stats.leases_completed += 1;
                stats.records_absorbed += records as u64;
            }
            Ok(MergeOutcome::Fenced) => stats.publishes_fenced += 1,
            Err(FabricError::CoordinatorKilled(_)) => {
                zombies.push(publish);
                failover!()
            }
            Err(e) => return Err(e),
        }
    }
    // Zombie publish replays: fenced at the merge point, as in `run_sim`.
    let mut fenced_replays = 0u64;
    for publish in &zombies {
        match coordinator.merge_publish(publish, &NoProbe)? {
            MergeOutcome::Fenced => {
                fenced_replays += 1;
                stats.publishes_fenced += 1;
            }
            MergeOutcome::Accepted { .. } => {
                return Err(FabricError::Fabric(format!(
                    "stale publish for lease {} epoch {} was accepted after drain",
                    publish.lease, publish.epoch
                )));
            }
        }
    }
    // Zombie COORDINATOR replays: every killed incumbent still holds an
    // in-memory lease table and an election handle; let each one try the
    // durable write it would make if it woke up now. The store's CAS fence
    // must reject every single one.
    let mut coordinators_deposed = 0u64;
    for zombie in &mut zombie_coords {
        match zombie.persist_table() {
            Err(FabricError::Deposed(_)) => coordinators_deposed += 1,
            Err(e) => return Err(e),
            Ok(()) => {
                return Err(FabricError::Fabric(
                    "deposed coordinator's table write reached the store".into(),
                ));
            }
        }
    }
    stats.leases_total = coordinator.table().leases.len() as u64;
    stats.elections_won = elections_won;
    stats.coordinators_deposed = coordinators_deposed;
    let steps = probe.steps();
    let outcome = coordinator.finish(survey, stats, cfg.scrub_threads.max(1))?;
    Ok(ElectedSimOutcome {
        outcome,
        steps,
        elections_won,
        coordinators_deposed,
        fenced_replays,
        coordinator_crashes,
    })
}
