//! The fabric worker: crawl a leased range into staging shards.
//!
//! A worker never touches canonical store state. It crawls its grant's
//! sites with a [`bfu_crawler::SiteCrawler`] (one private world per
//! worker, deterministic per site) and writes the encoded measurements
//! into *staging* shards named `stage-l<lease>-e<epoch>-<ix>.bfu`. The
//! staging namespace is the isolation boundary:
//!
//! - `parse_shard_name` rejects staging names, so the store's scan and
//!   scrub are blind to them — a half-written staging shard from a dead
//!   worker can never leak records into a dataset;
//! - the name embeds the lease *and epoch*, so a zombie worker writing
//!   under a reclaimed epoch can never collide with (or corrupt) the
//!   reissued holder's files — same lease, different epoch, different
//!   names;
//! - records only enter the canonical store when the coordinator's merge
//!   point reads the staged shards back and absorbs them — after checking
//!   the fence.
//!
//! Every crawl/seal/publish step goes through a [`Probe`], the torture
//! suite's kill switch. Production passes [`NoProbe`].

use crate::coordinator::FabricError;
use bfu_crawler::{retry_interrupted, Survey};
use bfu_store::StorageBackend;
use bfu_store::{encode_site, ShardWriter};
use std::io;

/// One issued lease, as handed to a worker: the range to crawl and the
/// fencing epoch its publish must carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseGrant {
    /// Lease id.
    pub lease: u32,
    /// First site (inclusive).
    pub start: usize,
    /// One past the last site.
    pub end: usize,
    /// Epoch the lease was issued under.
    pub epoch: u32,
}

/// A worker's publish message: which sealed staging shards hold its
/// lease's records, under which epoch. The coordinator's merge point is
/// the only consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPublish {
    /// Lease id the shards belong to.
    pub lease: u32,
    /// Epoch the lease was held under — the fence token.
    pub epoch: u32,
    /// Sealed staging shard names, in write order.
    pub shards: Vec<String>,
    /// Sites crawled for this publish.
    pub sites_crawled: usize,
}

/// Whether a fabric actor survives the step it just announced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Keep going.
    Continue,
    /// Die right here — the torture harness's simulated kill.
    Die,
}

/// The torture hook every fabric step passes through. Step labels are
/// stable strings (`worker:crawl:l0:e1:s7`, `coord:merge-commit:l2`, …)
/// so a sweep can enumerate and target every one.
pub trait Probe: Sync {
    /// Announce a step; the probe decides whether the actor survives it.
    fn step(&self, label: &str) -> StepOutcome;
}

/// The production probe: nobody ever dies.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    fn step(&self, _label: &str) -> StepOutcome {
        StepOutcome::Continue
    }
}

/// Staging-shard object name for `(lease, epoch, ix)`. Deliberately does
/// not parse as a canonical shard name.
pub fn stage_name(lease: u32, epoch: u32, ix: u32) -> String {
    format!("stage-l{lease:04}-e{epoch:04}-{ix:05}.bfu")
}

/// How a worker run ended.
#[derive(Debug)]
pub enum WorkerRun {
    /// The worker finished and handed over its publish.
    Published(WorkerPublish),
    /// The worker died mid-lease. If it died at the very publish step —
    /// work complete, message never delivered — the orphaned publish is
    /// carried here so a torture driver can replay it later as the
    /// zombie message the merge point must fence.
    Died(Option<WorkerPublish>),
}

/// Crawl `grant`'s range into sealed staging shards on `backend`.
///
/// Shards roll over at `shard_capacity` records. The crawl world is built
/// lazily (a zero-site lease never pays for one) and each measurement is
/// appended as it completes, so a kill at any step leaves only staging
/// debris — cleaned up by the coordinator, invisible to the store.
/// Returns [`WorkerRun::Died`] when `probe` kills the worker; real I/O
/// errors surface as [`FabricError`].
pub fn run_worker(
    survey: &Survey,
    backend: &dyn StorageBackend,
    grant: LeaseGrant,
    shard_capacity: u32,
    probe: &dyn Probe,
) -> Result<WorkerRun, FabricError> {
    let capacity = shard_capacity.max(1);
    let mut shards: Vec<String> = Vec::new();
    let mut writer: Option<ShardWriter> = None;
    let mut next_ix = 0u32;
    let mut crawler = None;
    let seal_step =
        |shards: &mut Vec<String>, writer: &mut Option<ShardWriter>| -> io::Result<()> {
            if let Some(w) = writer.take() {
                let name = w.name().to_owned();
                w.seal()?;
                shards.push(name);
            }
            Ok(())
        };
    for site_ix in grant.start..grant.end {
        let label = format!("worker:crawl:l{}:e{}:s{site_ix}", grant.lease, grant.epoch);
        if probe.step(&label) == StepOutcome::Die {
            return Ok(WorkerRun::Died(None));
        }
        let crawler = crawler.get_or_insert_with(|| survey.site_crawler());
        let m = crawler.crawl(site_ix);
        let payload = encode_site(&m);
        let w = match writer {
            Some(ref mut w) => w,
            None => {
                let name = stage_name(grant.lease, grant.epoch, next_ix);
                next_ix += 1;
                writer.insert(ShardWriter::create_named(backend, &name, next_ix - 1)?)
            }
        };
        w.append(&payload)?;
        if w.records() >= capacity {
            let label = format!("worker:seal:l{}:e{}", grant.lease, grant.epoch);
            if probe.step(&label) == StepOutcome::Die {
                return Ok(WorkerRun::Died(None));
            }
            seal_step(&mut shards, &mut writer)?;
        }
    }
    if writer.is_some() {
        let label = format!("worker:seal:l{}:e{}", grant.lease, grant.epoch);
        if probe.step(&label) == StepOutcome::Die {
            return Ok(WorkerRun::Died(None));
        }
        seal_step(&mut shards, &mut writer)?;
    }
    // Make the staged names durable in one pass before handing them to the
    // coordinator (each seal already synced its own bytes).
    retry_interrupted(|| backend.sync_dir()).map_err(FabricError::from)?;
    let publish = WorkerPublish {
        lease: grant.lease,
        epoch: grant.epoch,
        shards,
        sites_crawled: grant.end.saturating_sub(grant.start),
    };
    let label = format!("worker:publish:l{}:e{}", grant.lease, grant.epoch);
    if probe.step(&label) == StepOutcome::Die {
        // Died with the publish in hand: the torture driver replays this
        // exact message later to prove the fence holds.
        return Ok(WorkerRun::Died(Some(publish)));
    }
    Ok(WorkerRun::Published(publish))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_crawler::{CrawlConfig, Survey};
    use bfu_store::shard::parse_shard_name;
    use bfu_store::{read_shard, FaultFs, StoreFaultPlan};
    use bfu_webgen::{SyntheticWeb, WebConfig};
    use std::sync::Arc;

    fn tiny_survey(sites: usize) -> Survey {
        let web = SyntheticWeb::generate(WebConfig {
            sites,
            seed: 5,
            script_weight: 0,
        });
        let mut config = CrawlConfig::quick(7);
        config.threads = 1;
        config.rounds_per_profile = 1;
        config.pages_per_site = 2;
        config.page_budget_ms = 2_000;
        Survey::new(web, config)
    }

    #[test]
    fn stage_names_are_invisible_to_the_store() {
        let name = stage_name(3, 1, 0);
        assert_eq!(name, "stage-l0003-e0001-00000.bfu");
        assert_eq!(parse_shard_name(&name), None);
    }

    #[test]
    fn worker_stages_sealed_shards_and_publishes() {
        let survey = tiny_survey(5);
        let fs = Arc::new(FaultFs::new(StoreFaultPlan::none()));
        let grant = LeaseGrant {
            lease: 0,
            start: 1,
            end: 4,
            epoch: 2,
        };
        let run = run_worker(&survey, fs.as_ref(), grant, 2, &NoProbe).expect("run");
        let WorkerRun::Published(p) = run else {
            panic!("NoProbe must publish");
        };
        assert_eq!(p.lease, 0);
        assert_eq!(p.epoch, 2);
        assert_eq!(p.sites_crawled, 3);
        assert_eq!(p.shards.len(), 2, "3 records at capacity 2");
        let mut records = 0;
        for name in &p.shards {
            let c = read_shard(fs.as_ref(), name).expect("read staged");
            assert!(c.pristine(), "staged shards are sealed and intact");
            records += c.payloads.len();
        }
        assert_eq!(records, 3);
    }

    #[test]
    fn zero_site_grant_publishes_nothing() {
        let survey = tiny_survey(3);
        let fs = Arc::new(FaultFs::new(StoreFaultPlan::none()));
        let grant = LeaseGrant {
            lease: 1,
            start: 2,
            end: 2,
            epoch: 0,
        };
        let run = run_worker(&survey, fs.as_ref(), grant, 4, &NoProbe).expect("run");
        let WorkerRun::Published(p) = run else {
            panic!("zero-site grant still publishes (empty)");
        };
        assert!(p.shards.is_empty());
        assert_eq!(p.sites_crawled, 0);
    }
}
