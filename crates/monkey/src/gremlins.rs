//! Gremlins: randomized page interaction (the paper's adapted gremlins.js).
//!
//! §4.3.1: "instrumenting a page to click, touch, scroll, and enter text on
//! random elements or locations on the page", for 30 seconds per page, with
//! navigation interception. The horde performs a randomized action sequence
//! against a [`Page`], advancing the virtual clock between actions, running
//! due timers, and pumping script-issued network requests — recording every
//! navigation a click *would* have caused instead of following it.

use bfu_browser::{Page, RequestPolicy};
use bfu_net::{SimNet, Url};
use bfu_util::SimRng;

/// One interaction the horde can perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interaction {
    /// Click a random visible element.
    Click,
    /// Scroll the page.
    Scroll,
    /// Type into a random input.
    Type,
    /// Idle (reading pause) — lets timers fire.
    Pause,
}

/// What an interaction session observed.
#[derive(Debug, Clone, Default)]
pub struct InteractionReport {
    /// Navigations intercepted (would-be page loads from clicks).
    pub navigations: Vec<Url>,
    /// Total actions performed.
    pub actions: u32,
    /// Listener invocations triggered.
    pub listeners_fired: u32,
    /// Timer callbacks that ran during the session.
    pub timers_fired: u32,
}

/// Something that can drive a page for a time budget.
pub trait Interactor {
    /// Interact with `page` for `budget_ms` of virtual time.
    fn interact(
        &mut self,
        page: &mut Page,
        net: &mut SimNet,
        policy: &dyn RequestPolicy,
        clock: &mut bfu_util::VirtualClock,
        budget_ms: u64,
    ) -> InteractionReport;
}

/// The monkey-testing horde.
#[derive(Debug)]
pub struct GremlinHorde {
    rng: SimRng,
}

impl GremlinHorde {
    /// A horde with its own random stream.
    pub fn new(rng: SimRng) -> Self {
        GremlinHorde { rng }
    }

    fn pick_action(&mut self) -> Interaction {
        let u = self.rng.f64();
        if u < 0.55 {
            Interaction::Click
        } else if u < 0.75 {
            Interaction::Scroll
        } else if u < 0.90 {
            Interaction::Type
        } else {
            Interaction::Pause
        }
    }
}

impl Interactor for GremlinHorde {
    fn interact(
        &mut self,
        page: &mut Page,
        net: &mut SimNet,
        policy: &dyn RequestPolicy,
        clock: &mut bfu_util::VirtualClock,
        budget_ms: u64,
    ) -> InteractionReport {
        let deadline = clock.now().plus(budget_ms);
        let mut report = InteractionReport::default();
        while clock.now() < deadline {
            match self.pick_action() {
                Interaction::Click => {
                    let candidates = page.interactive_elements();
                    if let Some(&el) = self.rng.choose(&candidates) {
                        let outcome = page.click(el);
                        report.listeners_fired += outcome.listeners_fired;
                        if let Some(nav) = outcome.navigation {
                            // Intercept: record, never follow (§4.3.1).
                            report.navigations.push(nav);
                        }
                    }
                }
                Interaction::Scroll => {
                    report.listeners_fired += page.scroll();
                }
                Interaction::Type => {
                    let inputs: Vec<_> = {
                        let h = page.api.host.borrow();
                        h.doc
                            .elements()
                            .into_iter()
                            .filter(|&n| {
                                matches!(h.doc.tag(n), Some("input" | "textarea"))
                                    && h.doc.is_visible(n)
                            })
                            .collect()
                    };
                    if let Some(&el) = self.rng.choose(&inputs) {
                        report.listeners_fired += page.type_into(el);
                    }
                }
                Interaction::Pause => {}
            }
            report.actions += 1;
            // Human-speed pacing: 200-1200 ms between actions.
            clock.advance(200 + self.rng.below(1000));
            report.timers_fired += page.run_timers(clock, clock.now());
            page.pump_network(net, policy, clock);
        }
        // Budget end: let any remaining due work finish.
        report.timers_fired += page.run_timers(clock, deadline);
        page.pump_network(net, policy, clock);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_browser::{AllowAll, Browser};
    use bfu_net::{HttpRequest, HttpResponse};
    use bfu_util::VirtualClock;
    use bfu_webidl::FeatureRegistry;
    use std::rc::Rc;
    use std::sync::Arc;

    const PAGE: &str = r#"
    <html><body>
      <a href="/sub/one">one</a>
      <div id="hot">hot</div>
      <input type="text">
      <script>
        __listen('#hot', 'click', function() { document.createElement('div'); });
        __listen('', 'scroll', function() { performance.now(); });
        __listen('input', 'input', function() { window.getSelection(); });
        setTimeout(function() { navigator.sendBeacon('/b'); }, 3000);
      </script>
    </body></html>"#;

    fn page() -> (Page, SimNet, VirtualClock) {
        let mut net = SimNet::new(SimRng::new(5));
        net.register(
            "m.test",
            Arc::new(|req: &HttpRequest| {
                if req.url.path() == "/" {
                    HttpResponse::html(PAGE)
                } else {
                    HttpResponse::ok("text/plain", "ok")
                }
            }),
        );
        let browser = Browser::new(Rc::new(FeatureRegistry::build()));
        let mut clock = VirtualClock::new();
        let url = Url::parse("http://m.test/").unwrap();
        let page = browser.load(&mut net, &url, &AllowAll, &mut clock).unwrap();
        (page, net, clock)
    }

    #[test]
    fn horde_interacts_within_budget() {
        let (mut page, mut net, mut clock) = page();
        let start = clock.now();
        let mut horde = GremlinHorde::new(SimRng::new(1));
        let report = horde.interact(&mut page, &mut net, &AllowAll, &mut clock, 30_000);
        assert!(report.actions >= 20, "30s at ≤1.2s per action");
        assert!(clock.now().since(start) >= 30_000);
        assert!(report.listeners_fired > 0, "handlers elicited");
        assert_eq!(report.timers_fired, 1, "the 3s beacon timer");
    }

    #[test]
    fn navigations_intercepted_not_followed() {
        let (mut page, mut net, mut clock) = page();
        let mut horde = GremlinHorde::new(SimRng::new(2));
        let report = horde.interact(&mut page, &mut net, &AllowAll, &mut clock, 30_000);
        assert!(
            report
                .navigations
                .iter()
                .all(|u| u.to_string() == "http://m.test/sub/one"),
            "{:?}",
            report.navigations
        );
        assert!(
            !report.navigations.is_empty(),
            "the link gets clicked in 30s"
        );
        // Page is still the original one.
        assert_eq!(page.url.to_string(), "http://m.test/");
    }

    #[test]
    fn sessions_are_seed_deterministic() {
        let run = |seed| {
            let (mut page, mut net, mut clock) = page();
            let mut horde = GremlinHorde::new(SimRng::new(seed));
            let r = horde.interact(&mut page, &mut net, &AllowAll, &mut clock, 30_000);
            (r.actions, r.listeners_fired, r.navigations.len())
        };
        assert_eq!(run(9), run(9));
        // Different seeds generally behave differently.
        assert_ne!(run(1).0, 0);
    }

    #[test]
    fn interaction_features_recorded_in_log() {
        let (mut page, mut net, mut clock) = page();
        let mut horde = GremlinHorde::new(SimRng::new(3));
        horde.interact(&mut page, &mut net, &AllowAll, &mut clock, 30_000);
        let registry = FeatureRegistry::build();
        let log = page.log.borrow();
        // The scroll handler calls performance.now — the horde scrolls a lot
        // in 30s, so this must be present.
        assert!(log.saw(registry.by_name("Performance.prototype.now").unwrap()));
    }
}
