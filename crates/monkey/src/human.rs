//! The "casual human" interaction profile used for external validation.
//!
//! §6.2 of the paper: a human interacted with 92 traffic-weighted sites for
//! 90 seconds each — reading, scrolling, clicking one *prominent* link per
//! page. [`HumanProfile`] reproduces that style: deliberate pacing, scrolls
//! and reads, one purposeful click on the first prominent content link
//! (rather than random elements), occasional form focus.

use crate::gremlins::{InteractionReport, Interactor};
use bfu_browser::{Page, RequestPolicy};
use bfu_net::SimNet;
use bfu_util::SimRng;

/// Deliberate, content-seeking interaction.
#[derive(Debug)]
pub struct HumanProfile {
    rng: SimRng,
}

impl HumanProfile {
    /// A profile with its own random stream (humans vary a little too).
    pub fn new(rng: SimRng) -> Self {
        HumanProfile { rng }
    }

    /// The "prominent" link: the first visible link inside main content
    /// (falling back to the first visible link anywhere).
    fn prominent_link(&self, page: &Page) -> Option<bfu_dom::NodeId> {
        let h = page.api.host.borrow();
        let links: Vec<_> = h
            .doc
            .elements()
            .into_iter()
            .filter(|&n| h.doc.tag(n) == Some("a") && h.doc.is_visible(n))
            .collect();
        // Prefer a link under <main>; else the first.
        let main = h.doc.first_by_tag("main");
        links
            .iter()
            .find(|&&l| main.is_some_and(|m| h.doc.is_ancestor(m, l)))
            .or(links.first())
            .copied()
    }
}

impl Interactor for HumanProfile {
    fn interact(
        &mut self,
        page: &mut Page,
        net: &mut SimNet,
        policy: &dyn RequestPolicy,
        clock: &mut bfu_util::VirtualClock,
        budget_ms: u64,
    ) -> InteractionReport {
        let deadline = clock.now().plus(budget_ms);
        let mut report = InteractionReport::default();

        // Read the page first.
        clock.advance(3_000 + self.rng.below(3_000));
        report.timers_fired += page.run_timers(clock, clock.now());

        // Scroll through the content a few times.
        for _ in 0..3 {
            report.listeners_fired += page.scroll();
            report.actions += 1;
            clock.advance(2_000 + self.rng.below(2_000));
            report.timers_fired += page.run_timers(clock, clock.now());
            page.pump_network(net, policy, clock);
        }

        // Maybe interact with a form (search boxes are common human stops).
        if self.rng.chance(0.4) {
            let input = {
                let h = page.api.host.borrow();
                h.doc
                    .elements()
                    .into_iter()
                    .find(|&n| matches!(h.doc.tag(n), Some("input")) && h.doc.is_visible(n))
            };
            if let Some(el) = input {
                report.listeners_fired += page.type_into(el);
                report.actions += 1;
                clock.advance(1_500);
            }
        }

        // Click the prominent link (the navigation is intercepted; the
        // caller decides whether to follow it, as §6.2's protocol did).
        if let Some(link) = self.prominent_link(page) {
            let outcome = page.click(link);
            report.listeners_fired += outcome.listeners_fired;
            if let Some(nav) = outcome.navigation {
                report.navigations.push(nav);
            }
            report.actions += 1;
        }

        // Idle out the rest of the budget so long timers can fire.
        report.timers_fired += page.run_timers(clock, deadline);
        clock.advance_to(deadline);
        page.pump_network(net, policy, clock);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_browser::{AllowAll, Browser};
    use bfu_net::{HttpRequest, HttpResponse, Url};
    use bfu_util::VirtualClock;
    use bfu_webidl::FeatureRegistry;
    use std::rc::Rc;
    use std::sync::Arc;

    const PAGE: &str = r#"
    <html><body>
      <nav><a href="/other">elsewhere</a></nav>
      <main><h1>Story</h1><a href="/story/full">Read more</a>
      <input type="text"></main>
      <script>
        __listen('', 'scroll', function() { performance.now(); });
      </script>
    </body></html>"#;

    fn page() -> (Page, SimNet, VirtualClock) {
        let mut net = SimNet::new(SimRng::new(5));
        net.register(
            "h.test",
            Arc::new(|_: &HttpRequest| HttpResponse::html(PAGE)),
        );
        let browser = Browser::new(Rc::new(FeatureRegistry::build()));
        let mut clock = VirtualClock::new();
        let url = Url::parse("http://h.test/").unwrap();
        let page = browser.load(&mut net, &url, &AllowAll, &mut clock).unwrap();
        (page, net, clock)
    }

    #[test]
    fn human_clicks_the_prominent_content_link() {
        let (mut page, mut net, mut clock) = page();
        let mut human = HumanProfile::new(SimRng::new(1));
        let report = human.interact(&mut page, &mut net, &AllowAll, &mut clock, 30_000);
        assert_eq!(report.navigations.len(), 1);
        assert_eq!(
            report.navigations[0].to_string(),
            "http://h.test/story/full",
            "prefers the in-content link over the nav link"
        );
    }

    #[test]
    fn human_spends_the_whole_budget() {
        let (mut page, mut net, mut clock) = page();
        let start = clock.now();
        let mut human = HumanProfile::new(SimRng::new(2));
        human.interact(&mut page, &mut net, &AllowAll, &mut clock, 30_000);
        assert!(clock.now().since(start) >= 30_000);
    }

    #[test]
    fn human_scrolling_triggers_handlers() {
        let (mut page, mut net, mut clock) = page();
        let mut human = HumanProfile::new(SimRng::new(3));
        let report = human.interact(&mut page, &mut net, &AllowAll, &mut clock, 30_000);
        assert!(report.listeners_fired >= 3, "three scrolls with a handler");
        let registry = FeatureRegistry::build();
        assert!(page
            .log
            .borrow()
            .saw(registry.by_name("Performance.prototype.now").unwrap()));
    }
}
