//! # bfu-monkey
//!
//! Monkey testing (the paper's adapted gremlins.js) and the crawl planner.
//!
//! §4.3 of the paper: visit the home page, unleash gremlins for 30 seconds
//! (random clicks, scrolls, text entry), intercept navigations, then BFS
//! through the site choosing URLs whose path structure hasn't been seen —
//! 13 pages per site, 30 s each. §6.2 validates against a human browsing
//! profile; [`human`] reproduces that profile.
//!
//! - [`gremlins`] — interaction species and the seeded interaction loop.
//! - [`planner`] — navigation interception + path-novelty BFS.
//! - [`human`] — the §6.2 "casual human" interactor for Fig. 9.

pub mod gremlins;
pub mod human;
pub mod planner;

pub use gremlins::{GremlinHorde, Interaction, InteractionReport, Interactor};
pub use human::HumanProfile;
pub use planner::CrawlPlanner;
