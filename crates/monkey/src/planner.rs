//! Crawl planning: navigation interception + path-novelty BFS.
//!
//! §4.3.1: from the URLs the monkey would have navigated to, pick 3 on the
//! same (or related) domain, "giving preference to URLs where the directory
//! structure of the URL had not been previously seen", then recurse — 13
//! pages per site in total (1 + 3 + 9).

use bfu_net::Url;
use bfu_util::SimRng;
use std::collections::HashSet;

/// Selects which intercepted URLs to visit next.
#[derive(Debug)]
pub struct CrawlPlanner {
    domain: String,
    seen_signatures: HashSet<String>,
    visited: HashSet<String>,
}

impl CrawlPlanner {
    /// A planner for one site, keyed by its registrable domain.
    pub fn new(domain: &str) -> Self {
        CrawlPlanner {
            domain: domain.to_ascii_lowercase(),
            seen_signatures: HashSet::new(),
            visited: HashSet::new(),
        }
    }

    /// Record that `url` was visited (its signature becomes "seen").
    pub fn mark_visited(&mut self, url: &Url) {
        self.visited.insert(url.to_string());
        self.seen_signatures.insert(signature(url));
    }

    /// Whether a URL belongs to this site (same registrable domain).
    pub fn same_site(&self, url: &Url) -> bool {
        url.registrable_domain() == self.domain
    }

    /// Pick up to `count` next pages from `candidates`:
    /// same-site, unvisited, structurally novel first; randomness only
    /// breaks ties within a novelty class.
    pub fn select(&mut self, candidates: &[Url], count: usize, rng: &mut SimRng) -> Vec<Url> {
        let mut pool: Vec<&Url> = candidates
            .iter()
            .filter(|u| self.same_site(u))
            .filter(|u| !self.visited.contains(&u.to_string()))
            .collect();
        // Dedup by full URL keeping first occurrence.
        let mut seen_urls = HashSet::new();
        pool.retain(|u| seen_urls.insert(u.to_string()));

        let (mut novel, mut known): (Vec<&Url>, Vec<&Url>) = pool
            .into_iter()
            .partition(|u| !self.seen_signatures.contains(&signature(u)));
        rng.shuffle(&mut novel);
        rng.shuffle(&mut known);

        let mut out: Vec<Url> = Vec::new();
        for u in novel.into_iter().chain(known) {
            if out.len() >= count {
                break;
            }
            // Avoid two picks with the same *new* signature in one batch.
            if out.iter().any(|p| signature(p) == signature(u)) {
                continue;
            }
            out.push(u.clone());
        }
        // If the signature constraint starved us, top up with anything left.
        if out.len() < count {
            for u in candidates
                .iter()
                .filter(|u| self.same_site(u))
                .filter(|u| !self.visited.contains(&u.to_string()))
            {
                if out.len() >= count {
                    break;
                }
                if !out.contains(u) {
                    out.push(u.clone());
                }
            }
        }
        for u in &out {
            self.seen_signatures.insert(signature(u));
        }
        out
    }

    /// Pages visited so far.
    pub fn visited_count(&self) -> usize {
        self.visited.len()
    }
}

/// The "directory structure" signature of a URL: its path with trailing
/// item names collapsed, so `/world/item-1` and `/world/item-2` look alike
/// but `/sports/...` is novel.
fn signature(url: &Url) -> String {
    let segs = url.path_segments();
    match segs.len() {
        0 => "/".to_owned(),
        1 => format!("/{}", collapse(segs[0])),
        _ => format!("/{}/{}", segs[0], collapse(segs[segs.len() - 1])),
    }
}

/// Collapse trailing digits so enumerated items share a signature.
fn collapse(seg: &str) -> String {
    let trimmed = seg.trim_end_matches(|c: char| c.is_ascii_digit());
    format!("{trimmed}#")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn filters_offsite_and_visited() {
        let mut p = CrawlPlanner::new("site.test");
        p.mark_visited(&u("http://site.test/"));
        let picks = p.select(
            &[
                u("http://site.test/"),          // visited
                u("http://other.test/x"),        // offsite
                u("http://www.site.test/news/"), // subdomain of same site
            ],
            3,
            &mut SimRng::new(1),
        );
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].to_string(), "http://www.site.test/news/");
    }

    #[test]
    fn prefers_novel_path_structure() {
        let mut p = CrawlPlanner::new("site.test");
        p.mark_visited(&u("http://site.test/news/item-1"));
        let picks = p.select(
            &[
                u("http://site.test/news/item-2"), // same structure as visited
                u("http://site.test/sports/"),     // novel section
            ],
            1,
            &mut SimRng::new(2),
        );
        assert_eq!(picks[0].to_string(), "http://site.test/sports/");
    }

    #[test]
    fn batch_avoids_duplicate_signatures_when_possible() {
        let mut p = CrawlPlanner::new("site.test");
        let picks = p.select(
            &[
                u("http://site.test/a/item-1"),
                u("http://site.test/a/item-2"),
                u("http://site.test/b/"),
                u("http://site.test/c/"),
            ],
            3,
            &mut SimRng::new(3),
        );
        assert_eq!(picks.len(), 3);
        let sigs: HashSet<String> = picks.iter().map(signature).collect();
        assert_eq!(sigs.len(), 3, "{picks:?}");
    }

    #[test]
    fn tops_up_when_novelty_starves() {
        let mut p = CrawlPlanner::new("site.test");
        let picks = p.select(
            &[
                u("http://site.test/a/item-1"),
                u("http://site.test/a/item-2"),
                u("http://site.test/a/item-3"),
            ],
            3,
            &mut SimRng::new(4),
        );
        assert_eq!(picks.len(), 3, "still fills the quota");
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = CrawlPlanner::new("site.test");
            p.select(
                &[
                    u("http://site.test/a/"),
                    u("http://site.test/b/"),
                    u("http://site.test/c/"),
                    u("http://site.test/d/"),
                ],
                2,
                &mut SimRng::new(seed),
            )
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn signature_collapses_item_numbers() {
        assert_eq!(
            signature(&u("http://s.test/news/item-1")),
            signature(&u("http://s.test/news/item-2"))
        );
        assert_ne!(
            signature(&u("http://s.test/news/")),
            signature(&u("http://s.test/sports/"))
        );
    }
}
