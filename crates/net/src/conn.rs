//! Connection state machine.
//!
//! Models the lifecycle of one client connection to a virtual host as an
//! explicit state machine (the sans-IO idiom): every transition is a method
//! that either succeeds, returning timing information, or fails with a typed
//! error. The simulator drives it; tests exercise it directly.
//!
//! ```text
//! Idle ──connect()──▶ Connecting ──established()──▶ Established
//!                         │                             │  ▲
//!                      (refused)        request_sent()  │  │ response_received()
//!                         ▼                             ▼  │
//!                       Failed ◀──(reset)──────────── AwaitingResponse
//!                                                       │
//! Established ──close()──▶ Closed                       ▼ (timeout) Failed
//! ```

use std::fmt;

/// Connection lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Created, no handshake yet.
    Idle,
    /// SYN sent, awaiting handshake completion.
    Connecting,
    /// Handshake done; ready to send a request.
    Established,
    /// Request sent; awaiting the response.
    AwaitingResponse,
    /// Cleanly closed.
    Closed,
    /// Refused, reset, or timed out.
    Failed,
}

/// Error from an invalid transition or a simulated network failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// Operation invalid in the current state.
    InvalidTransition {
        /// State the connection was in.
        from: ConnState,
        /// Operation attempted.
        op: &'static str,
    },
    /// The remote host refused the connection (dead host).
    Refused,
    /// The connection was reset mid-exchange (packet loss burst).
    Reset,
}

impl fmt::Display for ConnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnError::InvalidTransition { from, op } => {
                write!(f, "cannot {op} while {from:?}")
            }
            ConnError::Refused => write!(f, "connection refused"),
            ConnError::Reset => write!(f, "connection reset"),
        }
    }
}

impl std::error::Error for ConnError {}

/// One client connection with RTT bookkeeping.
#[derive(Debug, Clone)]
pub struct Connection {
    state: ConnState,
    /// Round-trip time to the host in milliseconds.
    rtt_ms: u64,
    /// Requests completed on this connection (keep-alive reuse).
    requests_served: u32,
}

impl Connection {
    /// A fresh idle connection with the given round-trip time.
    pub fn new(rtt_ms: u64) -> Self {
        Connection {
            state: ConnState::Idle,
            rtt_ms,
            requests_served: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Round-trip time in milliseconds.
    pub fn rtt_ms(&self) -> u64 {
        self.rtt_ms
    }

    /// Requests completed over this connection.
    pub fn requests_served(&self) -> u32 {
        self.requests_served
    }

    /// Begin the handshake. Returns the handshake duration in ms (one RTT).
    pub fn connect(&mut self) -> Result<u64, ConnError> {
        match self.state {
            ConnState::Idle => {
                self.state = ConnState::Connecting;
                Ok(self.rtt_ms)
            }
            from => Err(ConnError::InvalidTransition {
                from,
                op: "connect",
            }),
        }
    }

    /// Handshake completed.
    pub fn established(&mut self) -> Result<(), ConnError> {
        match self.state {
            ConnState::Connecting => {
                self.state = ConnState::Established;
                Ok(())
            }
            from => Err(ConnError::InvalidTransition {
                from,
                op: "complete handshake",
            }),
        }
    }

    /// The host refused the handshake; terminal.
    pub fn refused(&mut self) -> ConnError {
        self.state = ConnState::Failed;
        ConnError::Refused
    }

    /// Send a request of `bytes` length. Returns transfer time in ms.
    pub fn request_sent(&mut self, bytes: usize) -> Result<u64, ConnError> {
        match self.state {
            ConnState::Established => {
                self.state = ConnState::AwaitingResponse;
                Ok(transfer_ms(bytes, self.rtt_ms))
            }
            from => Err(ConnError::InvalidTransition {
                from,
                op: "send request",
            }),
        }
    }

    /// Response of `bytes` length received. Returns transfer time in ms and
    /// returns the connection to `Established` (keep-alive).
    pub fn response_received(&mut self, bytes: usize) -> Result<u64, ConnError> {
        match self.state {
            ConnState::AwaitingResponse => {
                self.state = ConnState::Established;
                self.requests_served += 1;
                Ok(transfer_ms(bytes, self.rtt_ms))
            }
            from => Err(ConnError::InvalidTransition {
                from,
                op: "receive response",
            }),
        }
    }

    /// The connection was reset mid-exchange; terminal.
    pub fn reset(&mut self) -> ConnError {
        self.state = ConnState::Failed;
        ConnError::Reset
    }

    /// Close cleanly. Valid from `Established` or `Idle`.
    pub fn close(&mut self) -> Result<(), ConnError> {
        match self.state {
            ConnState::Established | ConnState::Idle => {
                self.state = ConnState::Closed;
                Ok(())
            }
            from => Err(ConnError::InvalidTransition { from, op: "close" }),
        }
    }
}

/// Transfer time: half an RTT of propagation plus serialization at a nominal
/// 1 MB/s virtual link (1 ms per KiB), floor of 1 ms.
fn transfer_ms(bytes: usize, rtt_ms: u64) -> u64 {
    (rtt_ms / 2) + (bytes as u64 / 1024).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_with_keepalive() {
        let mut c = Connection::new(40);
        assert_eq!(c.state(), ConnState::Idle);
        assert_eq!(c.connect().unwrap(), 40);
        c.established().unwrap();
        let t1 = c.request_sent(512).unwrap();
        assert!(t1 >= 20);
        c.response_received(4096).unwrap();
        assert_eq!(c.state(), ConnState::Established);
        // Keep-alive: second request on the same connection.
        c.request_sent(256).unwrap();
        c.response_received(100).unwrap();
        assert_eq!(c.requests_served(), 2);
        c.close().unwrap();
        assert_eq!(c.state(), ConnState::Closed);
    }

    #[test]
    fn invalid_transitions_are_errors() {
        let mut c = Connection::new(10);
        assert!(matches!(
            c.request_sent(1).unwrap_err(),
            ConnError::InvalidTransition {
                from: ConnState::Idle,
                ..
            }
        ));
        c.connect().unwrap();
        assert!(c.connect().is_err(), "double connect");
        assert!(c.response_received(1).is_err());
        c.established().unwrap();
        assert!(c.established().is_err(), "double establish");
    }

    #[test]
    fn refused_and_reset_are_terminal() {
        let mut c = Connection::new(10);
        c.connect().unwrap();
        assert_eq!(c.refused(), ConnError::Refused);
        assert_eq!(c.state(), ConnState::Failed);
        assert!(c.established().is_err());
        assert!(c.close().is_err());

        let mut c2 = Connection::new(10);
        c2.connect().unwrap();
        c2.established().unwrap();
        c2.request_sent(10).unwrap();
        assert_eq!(c2.reset(), ConnError::Reset);
        assert_eq!(c2.state(), ConnState::Failed);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let small = transfer_ms(100, 20);
        let big = transfer_ms(1024 * 1024, 20);
        assert!(big > small);
        assert_eq!(transfer_ms(0, 0), 1, "floor of 1ms");
    }

    #[test]
    fn close_from_idle_ok() {
        let mut c = Connection::new(5);
        c.close().unwrap();
        assert_eq!(c.state(), ConnState::Closed);
    }
}
