//! Fault injection for the simulated network.
//!
//! The paper could not measure 267 of the Alexa 10k domains ("non-responsive
//! domains and sites that contained syntax errors in their JavaScript",
//! §4.3.3). The fault plan reproduces a full taxonomy of those losses:
//!
//! - **dead hosts** — refuse every connection (permanent);
//! - **per-host fault programs** ([`HostFault`]) — scheduled faults such as
//!   "fail the first N exchanges then recover" (flaky hosts), stalls that
//!   burn virtual-clock budget, truncated responses, HTTP error statuses,
//!   and corrupted bodies (the paper's syntax-error sites);
//! - **background resets** — a global per-exchange reset probability;
//! - **latency inflation** — extra RTT on every host.
//!
//! Fault sampling is [`bfu_util::fault_sample`] over `(plan seed, fault
//! context, host, per-host exchange index)` — *not* the shared `SimNet` RNG
//! stream — so a given exchange faults identically no matter how sites are
//! sharded across threads. The same sampler drives the dataset store's
//! fault-injecting backend, so storage and network fault schedules share
//! one audited primitive. The fault context is reset by the crawler per
//! `(site, profile, round)` via [`SimNet::set_fault_context`]
//! (`crate::sim::SimNet::set_fault_context`), which also clears the per-host
//! exchange counters.

use bfu_util::fault_sample;
use std::collections::{HashMap, HashSet};

/// What a scheduled fault does to an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Reset the connection after the request is sent.
    Reset,
    /// Stall: consume virtual-clock time, then time the exchange out.
    Stall,
    /// Truncate the response mid-body.
    Truncate,
    /// Answer with this HTTP status instead of the real response.
    ErrorStatus(u16),
    /// Serve a garbled body (scripts served this way fail to parse — the
    /// paper's "syntax errors in their JavaScript" class).
    CorruptBody,
}

/// A per-host fault program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostFault {
    /// Fault kind this program injects.
    pub kind: FaultKind,
    /// Deterministically fail the first `fail_first` exchanges in each fault
    /// context, then recover (a flaky host a retry policy can beat).
    pub fail_first: u64,
    /// Probability that exchanges *after* the scheduled window still fault.
    pub chance: f64,
    /// Virtual milliseconds a [`FaultKind::Stall`] consumes before failing.
    pub stall_ms: u64,
}

impl HostFault {
    /// A program that fails the first `n` exchanges with `kind`, then
    /// recovers completely.
    pub fn flaky(kind: FaultKind, n: u64) -> Self {
        HostFault {
            kind,
            fail_first: n,
            chance: 0.0,
            stall_ms: 5_000,
        }
    }

    /// A program that faults every exchange with probability `chance`.
    pub fn random(kind: FaultKind, chance: f64) -> Self {
        HostFault {
            kind,
            fail_first: 0,
            chance: chance.clamp(0.0, 1.0),
            stall_ms: 5_000,
        }
    }

    /// Builder: set the stall duration.
    pub fn with_stall_ms(mut self, ms: u64) -> Self {
        self.stall_ms = ms;
        self
    }
}

/// The fault to apply to one specific exchange, as decided by the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Exchange proceeds normally.
    None,
    /// Connection reset after the request is sent.
    Reset,
    /// Stall for this many virtual ms, then fail.
    Stall(u64),
    /// Response truncated mid-body.
    Truncate,
    /// Server answers with this status code.
    ErrorStatus(u16),
    /// Response body garbled.
    CorruptBody,
}

/// Plan describing which faults the simulator should inject.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Hosts that refuse every connection.
    dead_hosts: HashSet<String>,
    /// Scheduled per-host fault programs.
    programs: HashMap<String, HostFault>,
    /// Probability that any single exchange is reset mid-flight.
    pub reset_chance: f64,
    /// Extra milliseconds of RTT added to all hosts (network congestion).
    pub extra_rtt_ms: u64,
    /// Seed for hash-derived fault sampling (thread-count invariant).
    pub seed: u64,
}

impl FaultPlan {
    /// A plan injecting no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Mark a host as dead (refuses all connections).
    pub fn kill_host(&mut self, host: &str) {
        self.dead_hosts.insert(host.to_ascii_lowercase());
    }

    /// Whether a host is dead.
    pub fn is_dead(&self, host: &str) -> bool {
        self.dead_hosts.contains(&host.to_ascii_lowercase())
    }

    /// Number of dead hosts.
    pub fn dead_host_count(&self) -> usize {
        self.dead_hosts.len()
    }

    /// Install a fault program for a host, replacing any existing one.
    pub fn set_program(&mut self, host: &str, program: HostFault) {
        self.programs.insert(host.to_ascii_lowercase(), program);
    }

    /// The fault program for a host, if any.
    pub fn program(&self, host: &str) -> Option<&HostFault> {
        self.programs.get(&host.to_ascii_lowercase())
    }

    /// Number of hosts with fault programs.
    pub fn program_count(&self) -> usize {
        self.programs.len()
    }

    /// Builder: set the reset probability.
    pub fn with_reset_chance(mut self, p: f64) -> Self {
        self.reset_chance = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: add RTT inflation.
    pub fn with_extra_rtt(mut self, ms: u64) -> Self {
        self.extra_rtt_ms = ms;
        self
    }

    /// Builder: set the fault-sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: install a fault program for a host.
    pub fn with_program(mut self, host: &str, program: HostFault) -> Self {
        self.set_program(host, program);
        self
    }

    /// Merge `overlay` into this plan: dead hosts union, overlay programs
    /// win on conflict, scalar knobs take the larger value, a nonzero
    /// overlay seed wins.
    pub fn merge(mut self, overlay: FaultPlan) -> FaultPlan {
        self.dead_hosts.extend(overlay.dead_hosts);
        self.programs.extend(overlay.programs);
        self.reset_chance = self.reset_chance.max(overlay.reset_chance);
        self.extra_rtt_ms = self.extra_rtt_ms.max(overlay.extra_rtt_ms);
        if overlay.seed != 0 {
            self.seed = overlay.seed;
        }
        self
    }

    /// Stable digest of the whole plan, independent of hash-map iteration
    /// order: two plans that inject the same faults digest identically on
    /// every run. The dataset store keys resumable crawls on this, so a
    /// crawl resumed under a *different* fault plan is refused instead of
    /// silently mixing measurements.
    pub fn digest(&self) -> u64 {
        let mut f = bfu_util::Fnv64::new();
        f.write(b"fault-plan-v1");
        let mut dead: Vec<&str> = self.dead_hosts.iter().map(String::as_str).collect();
        dead.sort_unstable();
        f.write_u64(dead.len() as u64);
        for host in dead {
            f.write_str(host);
        }
        let mut programs: Vec<(&str, &HostFault)> =
            self.programs.iter().map(|(h, p)| (h.as_str(), p)).collect();
        programs.sort_unstable_by_key(|(h, _)| *h);
        f.write_u64(programs.len() as u64);
        for (host, p) in programs {
            f.write_str(host);
            let (kind_tag, kind_extra) = match p.kind {
                FaultKind::Reset => (0u64, 0u64),
                FaultKind::Stall => (1, 0),
                FaultKind::Truncate => (2, 0),
                FaultKind::ErrorStatus(code) => (3, u64::from(code)),
                FaultKind::CorruptBody => (4, 0),
            };
            f.write_u64(kind_tag);
            f.write_u64(kind_extra);
            f.write_u64(p.fail_first);
            f.write_u64(p.chance.to_bits());
            f.write_u64(p.stall_ms);
        }
        f.write_u64(self.reset_chance.to_bits());
        f.write_u64(self.extra_rtt_ms);
        f.write_u64(self.seed);
        f.finish()
    }

    /// Decide the fault (if any) for exchange number `exchange_ix` to `host`
    /// within fault context `ctx`.
    ///
    /// Pure function of `(seed, ctx, host, exchange_ix)`: the crawl's thread
    /// layout cannot change which exchanges fault.
    pub fn decide(&self, host: &str, exchange_ix: u64, ctx: u64) -> FaultOutcome {
        if let Some(program) = self.programs.get(host) {
            if exchange_ix < program.fail_first {
                return outcome_of(program);
            }
            if program.chance > 0.0
                && fault_sample(self.seed, ctx, host, exchange_ix, 0x50C) < program.chance
            {
                return outcome_of(program);
            }
        }
        if self.reset_chance > 0.0
            && fault_sample(self.seed, ctx, host, exchange_ix, 0x2E5E7) < self.reset_chance
        {
            return FaultOutcome::Reset;
        }
        FaultOutcome::None
    }
}

fn outcome_of(program: &HostFault) -> FaultOutcome {
    match program.kind {
        FaultKind::Reset => FaultOutcome::Reset,
        FaultKind::Stall => FaultOutcome::Stall(program.stall_ms),
        FaultKind::Truncate => FaultOutcome::Truncate,
        FaultKind::ErrorStatus(code) => FaultOutcome::ErrorStatus(code),
        FaultKind::CorruptBody => FaultOutcome::CorruptBody,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_hosts_case_insensitive() {
        let mut plan = FaultPlan::none();
        plan.kill_host("WWW.Dead.com");
        assert!(plan.is_dead("www.dead.com"));
        assert!(plan.is_dead("WWW.DEAD.COM"));
        assert!(!plan.is_dead("www.alive.com"));
        assert_eq!(plan.dead_host_count(), 1);
    }

    #[test]
    fn builders_clamp() {
        let plan = FaultPlan::none().with_reset_chance(7.0).with_extra_rtt(5);
        assert_eq!(plan.reset_chance, 1.0);
        assert_eq!(plan.extra_rtt_ms, 5);
    }

    #[test]
    fn flaky_program_fails_then_recovers() {
        let plan =
            FaultPlan::none().with_program("flaky.com", HostFault::flaky(FaultKind::Reset, 2));
        assert_eq!(plan.decide("flaky.com", 0, 1), FaultOutcome::Reset);
        assert_eq!(plan.decide("flaky.com", 1, 1), FaultOutcome::Reset);
        assert_eq!(plan.decide("flaky.com", 2, 1), FaultOutcome::None);
        assert_eq!(plan.decide("other.com", 0, 1), FaultOutcome::None);
    }

    #[test]
    fn stall_program_carries_duration() {
        let plan = FaultPlan::none().with_program(
            "slow.com",
            HostFault::flaky(FaultKind::Stall, 1).with_stall_ms(2_500),
        );
        assert_eq!(plan.decide("slow.com", 0, 9), FaultOutcome::Stall(2_500));
    }

    #[test]
    fn decide_is_pure_in_its_coordinates() {
        let plan = FaultPlan::none().with_reset_chance(0.5).with_seed(42);
        for ix in 0..50 {
            assert_eq!(
                plan.decide("a.com", ix, 7),
                plan.decide("a.com", ix, 7),
                "exchange {ix} must fault identically on re-ask"
            );
        }
        // Different contexts sample independently.
        let faults_ctx = |ctx: u64| {
            (0..200)
                .filter(|&ix| plan.decide("a.com", ix, ctx) != FaultOutcome::None)
                .count()
        };
        let (a, b) = (faults_ctx(1), faults_ctx(2));
        assert!(a > 50 && b > 50, "~half should reset: {a}, {b}");
    }

    #[test]
    fn reset_chance_one_always_faults() {
        let plan = FaultPlan::none().with_reset_chance(1.0);
        for ix in 0..20 {
            assert_eq!(plan.decide("x.com", ix, 0), FaultOutcome::Reset);
        }
    }

    #[test]
    fn merge_unions_and_overlay_wins() {
        let mut base = FaultPlan::none().with_reset_chance(0.1);
        base.kill_host("dead.com");
        base.set_program("a.com", HostFault::flaky(FaultKind::Reset, 1));
        let overlay = FaultPlan::none()
            .with_seed(99)
            .with_program("a.com", HostFault::flaky(FaultKind::Truncate, 3))
            .with_program("b.com", HostFault::random(FaultKind::Stall, 0.2));
        let merged = base.merge(overlay);
        assert!(merged.is_dead("dead.com"));
        assert_eq!(merged.program("a.com").unwrap().kind, FaultKind::Truncate);
        assert_eq!(merged.program_count(), 2);
        assert_eq!(merged.reset_chance, 0.1);
        assert_eq!(merged.seed, 99);
    }

    #[test]
    fn digest_is_order_insensitive_and_content_sensitive() {
        let build = |order: &[&str]| {
            let mut p = FaultPlan::none().with_reset_chance(0.2).with_seed(5);
            for host in order {
                p.kill_host(host);
                p.set_program(host, HostFault::flaky(FaultKind::Reset, 2));
            }
            p
        };
        let a = build(&["a.com", "b.com", "c.com"]);
        let b = build(&["c.com", "a.com", "b.com"]);
        assert_eq!(a.digest(), b.digest(), "insertion order must not matter");
        let mut c = build(&["a.com", "b.com", "c.com"]);
        c.set_program("a.com", HostFault::flaky(FaultKind::Truncate, 2));
        assert_ne!(a.digest(), c.digest(), "program kind must matter");
        let d = build(&["a.com", "b.com"]);
        assert_ne!(a.digest(), d.digest(), "host set must matter");
    }
}
