//! Fault injection for the simulated network.
//!
//! The paper could not measure 267 of the Alexa 10k domains ("non-responsive
//! domains and sites that contained syntax errors in their JavaScript", §4.3.3).
//! We reproduce both failure classes: dead hosts (connection refused) and a
//! small random reset probability, plus optional per-host latency inflation
//! for tail-latency realism.

use std::collections::HashSet;

/// Plan describing which faults the simulator should inject.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Hosts that refuse every connection.
    dead_hosts: HashSet<String>,
    /// Probability that any single exchange is reset mid-flight.
    pub reset_chance: f64,
    /// Extra milliseconds of RTT added to all hosts (network congestion).
    pub extra_rtt_ms: u64,
}

impl FaultPlan {
    /// A plan injecting no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Mark a host as dead (refuses all connections).
    pub fn kill_host(&mut self, host: &str) {
        self.dead_hosts.insert(host.to_ascii_lowercase());
    }

    /// Whether a host is dead.
    pub fn is_dead(&self, host: &str) -> bool {
        self.dead_hosts.contains(&host.to_ascii_lowercase())
    }

    /// Number of dead hosts.
    pub fn dead_host_count(&self) -> usize {
        self.dead_hosts.len()
    }

    /// Builder: set the reset probability.
    pub fn with_reset_chance(mut self, p: f64) -> Self {
        self.reset_chance = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: add RTT inflation.
    pub fn with_extra_rtt(mut self, ms: u64) -> Self {
        self.extra_rtt_ms = ms;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_hosts_case_insensitive() {
        let mut plan = FaultPlan::none();
        plan.kill_host("WWW.Dead.com");
        assert!(plan.is_dead("www.dead.com"));
        assert!(plan.is_dead("WWW.DEAD.COM"));
        assert!(!plan.is_dead("www.alive.com"));
        assert_eq!(plan.dead_host_count(), 1);
    }

    #[test]
    fn builders_clamp() {
        let plan = FaultPlan::none().with_reset_chance(7.0).with_extra_rtt(5);
        assert_eq!(plan.reset_chance, 1.0);
        assert_eq!(plan.extra_rtt_ms, 5);
    }
}
