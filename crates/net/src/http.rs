//! HTTP/1.1 message types and wire codec.
//!
//! Requests and responses travel between the simulated browser and the
//! virtual servers as real HTTP/1.1 bytes: the client serializes each
//! request, the server side parses it, and vice versa for responses. This
//! keeps the substrate honest — blockers and the proxy-injection step (the
//! paper's Fig. 2) operate on genuine messages, and codec bugs surface in
//! tests rather than being defined away.

use crate::url::Url;
use std::collections::BTreeMap;
use std::fmt;

/// HTTP request method (the subset a crawler needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET — document, script, image, stylesheet fetches.
    Get,
    /// POST — form submissions, beacons, XHR uploads.
    Post,
    /// HEAD — probes.
    Head,
}

impl Method {
    /// The method token as written on the request line.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }

    /// Parse a method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }
}

/// Response status code (newtype over the numeric code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK
    pub const OK: StatusCode = StatusCode(200);
    /// 404 Not Found
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 500 Internal Server Error
    pub const SERVER_ERROR: StatusCode = StatusCode(500);

    /// Whether this is a 2xx code.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            403 => "Forbidden",
            404 => "Not Found",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// What kind of resource a request is for — the classification blockers use
/// (`$script`, `$image`, `$subdocument`, ... options in ABP filter syntax).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceType {
    /// Top-level HTML document.
    Document,
    /// Embedded frame document.
    SubDocument,
    /// JavaScript.
    Script,
    /// Image or tracking pixel.
    Image,
    /// CSS.
    Stylesheet,
    /// Web font.
    Font,
    /// Audio/video media.
    Media,
    /// XMLHttpRequest / fetch.
    Xhr,
    /// `navigator.sendBeacon` / ping.
    Beacon,
    /// WebSocket handshake.
    WebSocket,
    /// Anything else.
    Other,
}

impl ResourceType {
    /// The ABP option name for this type.
    pub fn abp_option(self) -> &'static str {
        match self {
            ResourceType::Document => "document",
            ResourceType::SubDocument => "subdocument",
            ResourceType::Script => "script",
            ResourceType::Image => "image",
            ResourceType::Stylesheet => "stylesheet",
            ResourceType::Font => "font",
            ResourceType::Media => "media",
            ResourceType::Xhr => "xmlhttprequest",
            ResourceType::Beacon => "ping",
            ResourceType::WebSocket => "websocket",
            ResourceType::Other => "other",
        }
    }
}

/// An HTTP request bound for a virtual server.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Absolute target URL.
    pub url: Url,
    /// Header map (lowercased names, insertion-stable via BTreeMap).
    pub headers: BTreeMap<String, String>,
    /// Body bytes (empty for GET/HEAD).
    pub body: Vec<u8>,
    /// Resource classification for blockers.
    pub resource_type: ResourceType,
    /// URL of the document that initiated the request (None for the
    /// top-level navigation itself). Drives third-party determination.
    pub initiator: Option<Url>,
}

impl HttpRequest {
    /// A GET request for `url` of the given resource type.
    pub fn get(url: Url, resource_type: ResourceType) -> Self {
        HttpRequest {
            method: Method::Get,
            url,
            headers: BTreeMap::new(),
            body: Vec::new(),
            resource_type,
            initiator: None,
        }
    }

    /// Set the initiating document (builder style).
    pub fn with_initiator(mut self, initiator: Url) -> Self {
        self.initiator = Some(initiator);
        self
    }

    /// Add a header (builder style). Names are lowercased.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_owned());
        self
    }

    /// Whether this request is third-party relative to its initiator.
    pub fn is_third_party(&self) -> bool {
        match &self.initiator {
            Some(init) => init.is_third_party_to(&self.url),
            None => false,
        }
    }

    /// Serialize to HTTP/1.1 wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256 + self.body.len());
        buf.extend_from_slice(self.method.as_str().as_bytes());
        buf.push(b' ');
        buf.extend_from_slice(self.url.request_target().as_bytes());
        buf.extend_from_slice(b" HTTP/1.1\r\n");
        buf.extend_from_slice(b"host: ");
        buf.extend_from_slice(self.url.host().as_bytes());
        buf.extend_from_slice(b"\r\n");
        for (k, v) in &self.headers {
            if k == "host" {
                continue;
            }
            buf.extend_from_slice(k.as_bytes());
            buf.extend_from_slice(b": ");
            buf.extend_from_slice(v.as_bytes());
            buf.extend_from_slice(b"\r\n");
        }
        buf.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(&self.body);
        buf
    }

    /// Parse a request from wire bytes (as a virtual server receives it).
    ///
    /// `scheme` is supplied by the connection (plaintext vs TLS port).
    pub fn decode(bytes: &[u8], scheme: &str) -> Result<HttpRequest, CodecError> {
        let (head, body) = split_head(bytes)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(CodecError::Truncated)?;
        let mut parts = request_line.split(' ');
        let method = Method::parse(parts.next().unwrap_or(""))
            .ok_or_else(|| CodecError::Malformed("bad method".into()))?;
        let target = parts
            .next()
            .ok_or_else(|| CodecError::Malformed("missing target".into()))?;
        if parts.next() != Some("HTTP/1.1") {
            return Err(CodecError::Malformed("bad version".into()));
        }
        let headers = parse_headers(lines)?;
        let host = headers
            .get("host")
            .ok_or_else(|| CodecError::Malformed("missing host header".into()))?;
        let url = Url::parse(&format!("{scheme}://{host}{target}"))
            .map_err(|e| CodecError::Malformed(e.to_string()))?;
        let expected = content_length(&headers)?;
        if body.len() < expected {
            return Err(CodecError::Truncated);
        }
        Ok(HttpRequest {
            method,
            url,
            headers,
            body: body[..expected].to_vec(),
            resource_type: ResourceType::Other,
            initiator: None,
        })
    }
}

/// An HTTP response from a virtual server.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: StatusCode,
    /// Header map (lowercased names).
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 response with a content type and body.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        let mut headers = BTreeMap::new();
        headers.insert("content-type".to_owned(), content_type.to_owned());
        HttpResponse {
            status: StatusCode::OK,
            headers,
            body: body.into(),
        }
    }

    /// An HTML document response.
    pub fn html(body: impl Into<Vec<u8>>) -> Self {
        Self::ok("text/html; charset=utf-8", body)
    }

    /// A JavaScript response.
    pub fn javascript(body: impl Into<Vec<u8>>) -> Self {
        Self::ok("application/javascript", body)
    }

    /// An empty response with the given status.
    pub fn status(status: StatusCode) -> Self {
        HttpResponse {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// The `content-type` header value, if any.
    pub fn content_type(&self) -> Option<&str> {
        self.headers.get("content-type").map(String::as_str)
    }

    /// Serialize to HTTP/1.1 wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128 + self.body.len());
        buf.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status.0, self.status.reason()).as_bytes(),
        );
        for (k, v) in &self.headers {
            buf.extend_from_slice(k.as_bytes());
            buf.extend_from_slice(b": ");
            buf.extend_from_slice(v.as_bytes());
            buf.extend_from_slice(b"\r\n");
        }
        buf.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(&self.body);
        buf
    }

    /// Parse a response from wire bytes (as the browser receives it).
    pub fn decode(bytes: &[u8]) -> Result<HttpResponse, CodecError> {
        let (head, body) = split_head(bytes)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or(CodecError::Truncated)?;
        let mut parts = status_line.splitn(3, ' ');
        if parts.next() != Some("HTTP/1.1") {
            return Err(CodecError::Malformed("bad version".into()));
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| CodecError::Malformed("bad status code".into()))?;
        let headers = parse_headers(lines)?;
        let expected = content_length(&headers)?;
        if body.len() < expected {
            return Err(CodecError::Truncated);
        }
        Ok(HttpResponse {
            status: StatusCode(code),
            headers,
            body: body[..expected].to_vec(),
        })
    }
}

/// Error from the HTTP codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Message ended before head/body was complete.
    Truncated,
    /// Structurally invalid message.
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated HTTP message"),
            CodecError::Malformed(m) => write!(f, "malformed HTTP message: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn split_head(bytes: &[u8]) -> Result<(&str, &[u8]), CodecError> {
    let sep = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(CodecError::Truncated)?;
    let head = std::str::from_utf8(&bytes[..sep])
        .map_err(|_| CodecError::Malformed("non-UTF8 head".into()))?;
    Ok((head, &bytes[sep + 4..]))
}

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<BTreeMap<String, String>, CodecError> {
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| CodecError::Malformed(format!("bad header line {line:?}")))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
    }
    Ok(headers)
}

fn content_length(headers: &BTreeMap<String, String>) -> Result<usize, CodecError> {
    match headers.get("content-length") {
        None => Ok(0),
        Some(v) => v
            .parse()
            .map_err(|_| CodecError::Malformed(format!("bad content-length {v:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let req = HttpRequest::get(url("http://example.com/a?b=1"), ResourceType::Script)
            .with_header("User-Agent", "bfu-crawler/1.0")
            .with_header("Accept", "*/*");
        let wire = req.encode();
        let parsed = HttpRequest::decode(&wire, "http").unwrap();
        assert_eq!(parsed.method, Method::Get);
        assert_eq!(parsed.url, req.url);
        assert_eq!(parsed.headers["user-agent"], "bfu-crawler/1.0");
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn request_with_body_roundtrip() {
        let mut req = HttpRequest::get(url("http://example.com/submit"), ResourceType::Xhr);
        req.method = Method::Post;
        req.body = b"k=v&x=y".to_vec();
        let parsed = HttpRequest::decode(&req.encode(), "http").unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(&parsed.body[..], b"k=v&x=y");
    }

    #[test]
    fn response_roundtrip() {
        let resp = HttpResponse::html("<html><body>hi</body></html>");
        let parsed = HttpResponse::decode(&resp.encode()).unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.content_type(), Some("text/html; charset=utf-8"));
        assert_eq!(&parsed.body[..], b"<html><body>hi</body></html>");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            HttpResponse::decode(b"not http").unwrap_err(),
            CodecError::Truncated
        );
        assert!(matches!(
            HttpResponse::decode(b"SPDY/1 200 OK\r\n\r\n"),
            Err(CodecError::Malformed(_))
        ));
        assert!(matches!(
            HttpRequest::decode(b"YEET / HTTP/1.1\r\nhost: a.com\r\n\r\n", "http"),
            Err(CodecError::Malformed(_))
        ));
        // Missing host header.
        assert!(matches!(
            HttpRequest::decode(b"GET / HTTP/1.1\r\n\r\n", "http"),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_body_detected() {
        let resp = HttpResponse::ok("text/plain", "hello world");
        let wire = resp.encode();
        let cut = &wire[..wire.len() - 3];
        assert_eq!(
            HttpResponse::decode(cut).unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn third_party_detection() {
        let req = HttpRequest::get(url("http://ads.net/pixel.gif"), ResourceType::Image)
            .with_initiator(url("http://news.com/"));
        assert!(req.is_third_party());
        let own = HttpRequest::get(url("http://cdn.news.com/app.js"), ResourceType::Script)
            .with_initiator(url("http://news.com/"));
        assert!(!own.is_third_party());
        let nav = HttpRequest::get(url("http://news.com/"), ResourceType::Document);
        assert!(!nav.is_third_party());
    }

    #[test]
    fn status_helpers() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::NOT_FOUND.is_success());
        assert_eq!(StatusCode(503).reason(), "Service Unavailable");
    }

    #[test]
    fn resource_type_abp_names() {
        assert_eq!(ResourceType::Script.abp_option(), "script");
        assert_eq!(ResourceType::Xhr.abp_option(), "xmlhttprequest");
        assert_eq!(ResourceType::Beacon.abp_option(), "ping");
    }

    #[test]
    fn https_scheme_preserved_through_decode() {
        let req = HttpRequest::get(url("https://secure.com/x"), ResourceType::Document);
        let parsed = HttpRequest::decode(&req.encode(), "https").unwrap();
        assert_eq!(parsed.url.scheme(), "https");
    }
}
