//! # bfu-net
//!
//! A deterministic, in-memory network substrate for the crawler.
//!
//! The paper's measurement rig sits between a browser and the live web; ours
//! sits between the simulated browser (`bfu-browser`) and the synthetic web
//! (`bfu-webgen`). Following the sans-IO style of embedded TCP/IP stacks,
//! everything here is event-driven over *virtual* time — no sockets, no
//! threads, no wall clock — which makes every crawl reproducible bit-for-bit
//! from a seed.
//!
//! Layers, bottom up:
//!
//! - [`url`] — a from-scratch URL parser/resolver (absolute + relative),
//!   with origin and registrable-domain logic used by the blockers'
//!   `third-party` rules.
//! - [`http`] — HTTP/1.1 request/response types and a byte-level codec
//!   (serializer + incremental parser over [`bytes`]).
//! - [`conn`] — a connection state machine (handshake, request/response
//!   exchange, close) with explicit states and transition errors.
//! - [`fault`] — fault injection: dead hosts, packet-drop probability,
//!   per-host extra latency.
//! - [`sim`] — [`sim::SimNet`]: DNS, registered virtual servers, a latency
//!   model, statistics, and the `fetch` entry point the browser uses.
//! - [`wire`] — fault schedules for framed request/response exchanges
//!   (dropped/truncated/stalled/duplicated/reordered frames), consumed by
//!   the remote object-store transport in `bfu-objstore`.

pub mod conn;
pub mod fault;
pub mod http;
pub mod sim;
pub mod url;
pub mod wire;

pub use fault::{FaultKind, FaultOutcome, FaultPlan, HostFault};
pub use http::{HttpRequest, HttpResponse, Method, ResourceType, StatusCode};
pub use sim::{NetError, NetStats, Server, SimNet};
pub use url::Url;
pub use wire::{WireFault, WireFaultPlan};
