//! The network simulator: DNS, virtual servers, latency, and `fetch`.
//!
//! [`SimNet`] owns a table of virtual hosts, each backed by a [`Server`]
//! implementation (the synthetic web registers one server per origin). A
//! fetch drives a full [`Connection`](crate::conn::Connection) exchange:
//! handshake, request serialization to wire bytes, server-side decode,
//! handler dispatch, response encode, client-side decode — advancing the
//! caller's virtual clock by the modeled time at every step.

use crate::conn::Connection;
use crate::fault::{FaultOutcome, FaultPlan};
use crate::http::{CodecError, HttpRequest, HttpResponse};
use bfu_util::{SimRng, VirtualClock};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A virtual origin server: receives decoded requests, returns responses.
///
/// Implementations must be pure functions of the request (plus their own
/// immutable state) so crawls stay deterministic and can run in parallel.
pub trait Server: Send + Sync {
    /// Handle one request.
    fn handle(&self, req: &HttpRequest) -> HttpResponse;
}

impl<F> Server for F
where
    F: Fn(&HttpRequest) -> HttpResponse + Send + Sync,
{
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        self(req)
    }
}

/// Network-level failure of a fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No DNS entry for the host.
    NameNotResolved(String),
    /// Host refused the connection (dead host).
    ConnectionRefused(String),
    /// Exchange reset mid-flight.
    ConnectionReset(String),
    /// Exchange stalled past the timeout without a response.
    Stalled(String),
    /// The response ended before the advertised body was complete.
    Truncated(String),
    /// The peer sent bytes that failed to parse.
    ProtocolError(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NameNotResolved(h) => write!(f, "could not resolve {h}"),
            NetError::ConnectionRefused(h) => write!(f, "{h} refused the connection"),
            NetError::ConnectionReset(h) => write!(f, "connection to {h} reset"),
            NetError::Stalled(h) => write!(f, "exchange with {h} stalled past the timeout"),
            NetError::Truncated(h) => write!(f, "response from {h} was truncated"),
            NetError::ProtocolError(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Aggregate transfer statistics (feeds the paper's Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Successful request/response exchanges.
    pub requests: u64,
    /// Failed fetches (refused / reset / unresolvable).
    pub failures: u64,
    /// Total request bytes on the wire.
    pub bytes_sent: u64,
    /// Total response bytes on the wire.
    pub bytes_received: u64,
}

impl NetStats {
    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &NetStats) {
        self.requests += other.requests;
        self.failures += other.failures;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }
}

/// The deterministic in-memory network.
pub struct SimNet {
    hosts: HashMap<String, Arc<dyn Server>>,
    /// Base RTT per host, assigned at registration from the latency model.
    rtt: HashMap<String, u64>,
    faults: FaultPlan,
    rng: SimRng,
    stats: NetStats,
    /// Fault context (reset per site-visit by the crawler) and per-host
    /// exchange counters within it — the coordinates of hash-derived fault
    /// sampling, so faults are identical regardless of thread layout.
    fault_ctx: u64,
    exchange_counts: HashMap<String, u64>,
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet")
            .field("hosts", &self.hosts.len())
            .field("faults", &self.faults)
            .field("stats", &self.stats)
            .finish()
    }
}

impl SimNet {
    /// An empty network with the given RNG stream (drives latency jitter and
    /// fault sampling).
    pub fn new(rng: SimRng) -> Self {
        SimNet {
            hosts: HashMap::new(),
            rtt: HashMap::new(),
            faults: FaultPlan::none(),
            rng,
            stats: NetStats::default(),
            fault_ctx: 0,
            exchange_counts: HashMap::new(),
        }
    }

    /// Install a fault plan.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Enter a new fault context (e.g. one `(site, profile, round)` visit),
    /// clearing the per-host exchange counters. Fault sampling is a pure
    /// function of `(plan seed, context, host, exchange index)`, so any two
    /// nets replaying the same context see identical faults.
    pub fn set_fault_context(&mut self, ctx: u64) {
        self.fault_ctx = ctx;
        self.exchange_counts.clear();
    }

    /// The current fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Register a server for `host`. The host gets a base RTT sampled from
    /// an exponential distribution with a 40 ms mean, clamped to 5-400 ms —
    /// a rough model of real-world origin diversity.
    pub fn register(&mut self, host: &str, server: Arc<dyn Server>) {
        let host = host.to_ascii_lowercase();
        let rtt = (self.rng.exp(40.0) as u64).clamp(5, 400);
        self.rtt.insert(host.clone(), rtt);
        self.hosts.insert(host, server);
    }

    /// Whether `host` resolves.
    pub fn resolves(&self, host: &str) -> bool {
        self.hosts.contains_key(&host.to_ascii_lowercase())
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Perform one fetch, advancing `clock` by handshake + transfer time.
    ///
    /// The request is serialized to wire bytes, decoded server-side, handled,
    /// and the response is serialized and decoded client-side — a full codec
    /// round trip per exchange.
    pub fn fetch(
        &mut self,
        req: &HttpRequest,
        clock: &mut VirtualClock,
    ) -> Result<HttpResponse, NetError> {
        let host = req.url.host().to_owned();
        let Some(server) = self.hosts.get(&host).cloned() else {
            self.stats.failures += 1;
            clock.advance(30); // failed DNS lookup still costs time
            return Err(NetError::NameNotResolved(host));
        };
        let exchange_ix = {
            let c = self.exchange_counts.entry(host.clone()).or_insert(0);
            let ix = *c;
            *c += 1;
            ix
        };
        let rtt = self.rtt[&host] + self.faults.extra_rtt_ms;
        let mut conn = Connection::new(rtt);

        let handshake = conn.connect().expect("fresh connection");
        clock.advance(handshake);
        if self.faults.is_dead(&host) {
            conn.refused();
            self.stats.failures += 1;
            return Err(NetError::ConnectionRefused(host));
        }
        conn.established().expect("post-handshake");

        let wire_req = req.encode();
        let send_ms = conn.request_sent(wire_req.len()).expect("established");
        clock.advance(send_ms);
        self.stats.bytes_sent += wire_req.len() as u64;

        let fault = self.faults.decide(&host, exchange_ix, self.fault_ctx);
        match fault {
            FaultOutcome::Reset => {
                conn.reset();
                self.stats.failures += 1;
                return Err(NetError::ConnectionReset(host));
            }
            FaultOutcome::Stall(ms) => {
                clock.advance(ms);
                conn.reset();
                self.stats.failures += 1;
                return Err(NetError::Stalled(host));
            }
            _ => {}
        }

        // Server side: decode the wire bytes, preserving classification
        // metadata that doesn't travel on the wire.
        let response = if let FaultOutcome::ErrorStatus(code) = fault {
            crate::http::HttpResponse::status(crate::http::StatusCode(code))
        } else {
            let mut server_req = HttpRequest::decode(&wire_req, req.url.scheme())
                .map_err(|e| NetError::ProtocolError(e.to_string()))?;
            server_req.resource_type = req.resource_type;
            server_req.initiator = req.initiator.clone();
            let mut response = server.handle(&server_req);
            if fault == FaultOutcome::CorruptBody {
                // Garble the body in place: valid HTTP, broken payload
                // (scripts served this way no longer parse).
                response.body = b")]}' bfu-corrupted {{{ ;;; <<<".to_vec();
            }
            response
        };

        let mut wire_resp = response.encode();
        let recv_ms = conn.response_received(wire_resp.len()).expect("awaiting");
        clock.advance(recv_ms);

        if fault == FaultOutcome::Truncate {
            wire_resp.truncate(wire_resp.len() * 2 / 3);
        }
        self.stats.bytes_received += wire_resp.len() as u64;

        match HttpResponse::decode(&wire_resp) {
            Ok(resp) => {
                self.stats.requests += 1;
                Ok(resp)
            }
            Err(CodecError::Truncated) => {
                self.stats.failures += 1;
                Err(NetError::Truncated(host))
            }
            Err(e) => {
                self.stats.failures += 1;
                Err(NetError::ProtocolError(e.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{ResourceType, StatusCode};
    use crate::url::Url;

    fn simple_net() -> SimNet {
        let mut net = SimNet::new(SimRng::new(7));
        net.register(
            "example.com",
            Arc::new(|req: &HttpRequest| {
                if req.url.path() == "/hello" {
                    HttpResponse::html("<html>hi</html>")
                } else {
                    HttpResponse::status(StatusCode::NOT_FOUND)
                }
            }),
        );
        net
    }

    fn get(url: &str) -> HttpRequest {
        HttpRequest::get(Url::parse(url).unwrap(), ResourceType::Document)
    }

    #[test]
    fn fetch_roundtrip_advances_clock() {
        let mut net = simple_net();
        let mut clock = VirtualClock::new();
        let resp = net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(&resp.body[..], b"<html>hi</html>");
        assert!(clock.now().millis() > 0, "time must pass");
        assert_eq!(net.stats().requests, 1);
        assert!(net.stats().bytes_received > 0);
    }

    #[test]
    fn server_routing_by_path() {
        let mut net = simple_net();
        let mut clock = VirtualClock::new();
        let resp = net
            .fetch(&get("http://example.com/missing"), &mut clock)
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn unresolvable_host_fails() {
        let mut net = simple_net();
        let mut clock = VirtualClock::new();
        let err = net
            .fetch(&get("http://nowhere.test/"), &mut clock)
            .unwrap_err();
        assert!(matches!(err, NetError::NameNotResolved(_)));
        assert_eq!(net.stats().failures, 1);
    }

    #[test]
    fn dead_host_refuses() {
        let mut net = simple_net();
        let mut faults = FaultPlan::none();
        faults.kill_host("example.com");
        net.set_faults(faults);
        let mut clock = VirtualClock::new();
        let err = net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .unwrap_err();
        assert!(matches!(err, NetError::ConnectionRefused(_)));
    }

    #[test]
    fn reset_chance_one_always_resets() {
        let mut net = simple_net();
        net.set_faults(FaultPlan::none().with_reset_chance(1.0));
        let mut clock = VirtualClock::new();
        let err = net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .unwrap_err();
        assert!(matches!(err, NetError::ConnectionReset(_)));
    }

    #[test]
    fn deterministic_latency_per_seed() {
        let run = |seed| {
            let mut net = SimNet::new(SimRng::new(seed));
            net.register("a.com", Arc::new(|_: &HttpRequest| HttpResponse::html("x")));
            let mut clock = VirtualClock::new();
            net.fetch(&get("http://a.com/"), &mut clock).unwrap();
            clock.now().millis()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn stall_program_burns_clock_then_fails() {
        use crate::fault::{FaultKind, HostFault};
        let mut net = simple_net();
        net.set_faults(FaultPlan::none().with_program(
            "example.com",
            HostFault::flaky(FaultKind::Stall, 1).with_stall_ms(4_000),
        ));
        let mut clock = VirtualClock::new();
        let err = net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .unwrap_err();
        assert!(matches!(err, NetError::Stalled(_)));
        assert!(
            clock.now().millis() >= 4_000,
            "stall must consume its budget"
        );
        // Second exchange recovers (fail_first = 1).
        let resp = net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
    }

    #[test]
    fn truncate_program_yields_truncated_error() {
        use crate::fault::{FaultKind, HostFault};
        let mut net = simple_net();
        net.set_faults(
            FaultPlan::none().with_program("example.com", HostFault::flaky(FaultKind::Truncate, 1)),
        );
        let mut clock = VirtualClock::new();
        let err = net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .unwrap_err();
        assert!(matches!(err, NetError::Truncated(_)));
        assert_eq!(net.stats().failures, 1);
    }

    #[test]
    fn error_status_program_answers_without_server() {
        use crate::fault::{FaultKind, HostFault};
        let mut net = simple_net();
        net.set_faults(FaultPlan::none().with_program(
            "example.com",
            HostFault::flaky(FaultKind::ErrorStatus(503), 1),
        ));
        let mut clock = VirtualClock::new();
        let resp = net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .unwrap();
        assert_eq!(resp.status, StatusCode(503));
        let resp = net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
    }

    #[test]
    fn corrupt_body_program_garbles_payload() {
        use crate::fault::{FaultKind, HostFault};
        let mut net = simple_net();
        net.set_faults(
            FaultPlan::none()
                .with_program("example.com", HostFault::flaky(FaultKind::CorruptBody, 1)),
        );
        let mut clock = VirtualClock::new();
        let resp = net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_ne!(&resp.body[..], b"<html>hi</html>");
    }

    #[test]
    fn fault_context_resets_exchange_counters() {
        use crate::fault::{FaultKind, HostFault};
        let mut net = simple_net();
        net.set_faults(
            FaultPlan::none().with_program("example.com", HostFault::flaky(FaultKind::Reset, 1)),
        );
        let mut clock = VirtualClock::new();
        // Context A: first exchange faults, second recovers.
        net.set_fault_context(1);
        assert!(net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .is_err());
        assert!(net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .is_ok());
        // New context: the schedule replays from exchange zero.
        net.set_fault_context(2);
        assert!(net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .is_err());
        assert!(net
            .fetch(&get("http://example.com/hello"), &mut clock)
            .is_ok());
    }

    #[test]
    fn faults_identical_across_nets_given_same_context() {
        let plan = FaultPlan::none().with_reset_chance(0.4).with_seed(0xFA117);
        let run = |net_seed: u64| {
            let mut net = SimNet::new(SimRng::new(net_seed));
            net.register("a.com", Arc::new(|_: &HttpRequest| HttpResponse::html("x")));
            net.set_faults(plan.clone());
            net.set_fault_context(0xC0FFEE);
            let mut clock = VirtualClock::new();
            (0..32)
                .map(|_| net.fetch(&get("http://a.com/"), &mut clock).is_ok())
                .collect::<Vec<_>>()
        };
        // Different SimNet RNG seeds (different thread-local streams) must
        // not change which exchanges fault.
        assert_eq!(run(1), run(999));
    }

    #[test]
    fn initiator_metadata_reaches_server() {
        let mut net = SimNet::new(SimRng::new(1));
        net.register(
            "srv.com",
            Arc::new(|req: &HttpRequest| {
                assert_eq!(req.resource_type, ResourceType::Script);
                assert!(req.initiator.is_some());
                HttpResponse::javascript("1")
            }),
        );
        let mut clock = VirtualClock::new();
        let req = HttpRequest::get(
            Url::parse("http://srv.com/app.js").unwrap(),
            ResourceType::Script,
        )
        .with_initiator(Url::parse("http://page.com/").unwrap());
        net.fetch(&req, &mut clock).unwrap();
    }
}
