//! URL parsing, resolution, and origin logic.
//!
//! A from-scratch implementation of the subset of the WHATWG URL model the
//! study needs: absolute `http`/`https` URLs, relative reference resolution
//! against a base, path normalization (`.` / `..`), query strings, and the
//! origin / registrable-domain comparisons that advertising and tracking
//! blockers use to decide whether a request is *third-party*.

use std::fmt;

/// A parsed absolute URL (scheme, host, port, path, query).
///
/// Fragments are parsed and discarded (they never reach the network). User
/// info is not supported — the crawl never authenticates (the paper measures
/// the *open* web only, §4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    scheme: String,
    host: String,
    port: Option<u16>,
    path: String,
    query: Option<String>,
}

/// Error from [`Url::parse`] / [`Url::join`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlError(pub String);

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid URL: {}", self.0)
    }
}

impl std::error::Error for UrlError {}

impl Url {
    /// Parse an absolute URL. Only `http` and `https` schemes are accepted.
    pub fn parse(input: &str) -> Result<Url, UrlError> {
        let input = input.trim();
        let (scheme, rest) = input
            .split_once("://")
            .ok_or_else(|| UrlError(format!("missing scheme in {input:?}")))?;
        let scheme = scheme.to_ascii_lowercase();
        if scheme != "http" && scheme != "https" {
            return Err(UrlError(format!("unsupported scheme {scheme:?}")));
        }
        // Strip fragment first: it never reaches the network.
        let rest = rest.split('#').next().unwrap_or(rest);
        let (authority, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(UrlError(format!("empty host in {input:?}")));
        }
        if authority.contains('@') {
            return Err(UrlError("userinfo not supported".into()));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| UrlError(format!("bad port {p:?}")))?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        let host = host.to_ascii_lowercase();
        if host.is_empty()
            || !host
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-')
        {
            return Err(UrlError(format!("bad host {host:?}")));
        }
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p, Some(q.to_owned())),
            None => (path_query, None),
        };
        Ok(Url {
            scheme,
            host,
            port,
            path: normalize_path(path),
            query,
        })
    }

    /// Resolve a (possibly relative) reference against this URL as base.
    ///
    /// Supports absolute URLs, protocol-relative (`//host/...`),
    /// root-relative (`/path`), relative paths, and query-only (`?q`)
    /// references.
    pub fn join(&self, reference: &str) -> Result<Url, UrlError> {
        let reference = reference.trim();
        let reference = reference.split('#').next().unwrap_or("");
        if reference.is_empty() {
            return Ok(self.clone());
        }
        if reference.contains("://") {
            return Url::parse(reference);
        }
        if let Some(rest) = reference.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, rest));
        }
        if let Some(q) = reference.strip_prefix('?') {
            let mut out = self.clone();
            out.query = Some(q.to_owned());
            return Ok(out);
        }
        let mut out = self.clone();
        if let Some(root) = reference.strip_prefix('/') {
            let (path, query) = split_path_query(root);
            out.path = normalize_path(&format!("/{path}"));
            out.query = query;
        } else {
            let (path, query) = split_path_query(reference);
            let base_dir = match self.path.rfind('/') {
                Some(i) => &self.path[..=i],
                None => "/",
            };
            out.path = normalize_path(&format!("{base_dir}{path}"));
            out.query = query;
        }
        Ok(out)
    }

    /// The scheme (`http` or `https`).
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Lowercased host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Explicit port, if any.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// Port in effect (explicit, or the scheme default).
    pub fn effective_port(&self) -> u16 {
        self.port
            .unwrap_or(if self.scheme == "https" { 443 } else { 80 })
    }

    /// Normalized path, always beginning with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Raw query string (without `?`), if present.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Path plus query, as sent on the request line.
    pub fn request_target(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// `scheme://host[:port]`, the origin triple used for same-origin checks.
    pub fn origin(&self) -> String {
        match self.port {
            Some(p) => format!("{}://{}:{}", self.scheme, self.host, p),
            None => format!("{}://{}", self.scheme, self.host),
        }
    }

    /// The registrable domain: the last two labels of the host
    /// (`cdn.ads.example.com` → `example.com`).
    ///
    /// Real browsers consult the Public Suffix List; our synthetic web only
    /// mints two-label registrable domains, so last-two-labels is exact here.
    pub fn registrable_domain(&self) -> &str {
        registrable_domain_of(&self.host)
    }

    /// Whether `other` is third-party relative to `self` (different
    /// registrable domain) — the test blockers apply to requests.
    pub fn is_third_party_to(&self, other: &Url) -> bool {
        self.registrable_domain() != other.registrable_domain()
    }

    /// Path segments, excluding empty ones: `/a/b/` → `["a", "b"]`.
    pub fn path_segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// First path segment (the "directory" the paper's crawl strategy uses
    /// to prefer structurally novel URLs), or `""` for the root.
    pub fn first_segment(&self) -> &str {
        self.path_segments().first().copied().unwrap_or("")
    }
}

/// Registrable domain of a bare host string (last two labels).
pub fn registrable_domain_of(host: &str) -> &str {
    let mut dots = 0;
    for (i, b) in host.bytes().enumerate().rev() {
        if b == b'.' {
            dots += 1;
            if dots == 2 {
                return &host[i + 1..];
            }
        }
    }
    host
}

fn split_path_query(s: &str) -> (String, Option<String>) {
    match s.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (s.to_owned(), None),
    }
}

/// Normalize `.` and `..` segments and collapse duplicate slashes.
fn normalize_path(path: &str) -> String {
    let trailing_slash = path.ends_with('/') && path.len() > 1;
    let mut stack: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                stack.pop();
            }
            other => stack.push(other),
        }
    }
    let mut out = String::from("/");
    out.push_str(&stack.join("/"));
    if trailing_slash && out.len() > 1 {
        out.push('/');
    }
    out
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        write!(f, "{}", self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic() {
        let u = Url::parse("http://www.Example.com/a/b?x=1#frag").unwrap();
        assert_eq!(u.scheme(), "http");
        assert_eq!(u.host(), "www.example.com");
        assert_eq!(u.path(), "/a/b");
        assert_eq!(u.query(), Some("x=1"));
        assert_eq!(u.port(), None);
        assert_eq!(u.effective_port(), 80);
    }

    #[test]
    fn parses_port_and_https_default() {
        let u = Url::parse("https://example.com:8443/").unwrap();
        assert_eq!(u.port(), Some(8443));
        assert_eq!(
            Url::parse("https://example.com/").unwrap().effective_port(),
            443
        );
    }

    #[test]
    fn bare_host_gets_root_path() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.path(), "/");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Url::parse("ftp://example.com/").is_err());
        assert!(Url::parse("example.com/").is_err());
        assert!(Url::parse("http:///path").is_err());
        assert!(Url::parse("http://user@example.com/").is_err());
        assert!(Url::parse("http://exa mple.com/").is_err());
        assert!(Url::parse("http://example.com:notaport/").is_err());
    }

    #[test]
    fn join_absolute_and_protocol_relative() {
        let base = Url::parse("https://a.com/x/y").unwrap();
        assert_eq!(
            base.join("http://b.com/z").unwrap().to_string(),
            "http://b.com/z"
        );
        assert_eq!(
            base.join("//c.com/w").unwrap().to_string(),
            "https://c.com/w"
        );
    }

    #[test]
    fn join_root_and_relative() {
        let base = Url::parse("http://a.com/dir/page.html?q=1").unwrap();
        assert_eq!(base.join("/top").unwrap().to_string(), "http://a.com/top");
        assert_eq!(
            base.join("other.html").unwrap().to_string(),
            "http://a.com/dir/other.html"
        );
        assert_eq!(
            base.join("../up.html").unwrap().to_string(),
            "http://a.com/up.html"
        );
        assert_eq!(
            base.join("?only=query").unwrap().to_string(),
            "http://a.com/dir/page.html?only=query"
        );
        assert_eq!(base.join("").unwrap(), base);
        assert_eq!(base.join("#frag").unwrap(), base);
    }

    #[test]
    fn path_normalization() {
        let u = Url::parse("http://a.com/a//b/./c/../d/").unwrap();
        assert_eq!(u.path(), "/a/b/d/");
        let dotdot = Url::parse("http://a.com/../..").unwrap();
        assert_eq!(dotdot.path(), "/");
    }

    #[test]
    fn origin_and_third_party() {
        let a = Url::parse("http://www.shop.com/p").unwrap();
        let b = Url::parse("http://cdn.shop.com/img.png").unwrap();
        let c = Url::parse("http://ads.tracker.net/pixel").unwrap();
        assert_eq!(a.origin(), "http://www.shop.com");
        assert_eq!(a.registrable_domain(), "shop.com");
        assert_eq!(b.registrable_domain(), "shop.com");
        assert!(!a.is_third_party_to(&b), "same registrable domain");
        assert!(a.is_third_party_to(&c));
    }

    #[test]
    fn registrable_domain_of_short_hosts() {
        assert_eq!(registrable_domain_of("localhost"), "localhost");
        assert_eq!(registrable_domain_of("a.b"), "a.b");
        assert_eq!(registrable_domain_of("x.y.z.w"), "z.w");
    }

    #[test]
    fn segments() {
        let u = Url::parse("http://a.com/news/2016/may/").unwrap();
        assert_eq!(u.path_segments(), vec!["news", "2016", "may"]);
        assert_eq!(u.first_segment(), "news");
        assert_eq!(Url::parse("http://a.com/").unwrap().first_segment(), "");
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in [
            "http://a.com/",
            "https://a.b.c.com:8080/x/y?q=1",
            "http://a.com/x/",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn request_target_includes_query() {
        let u = Url::parse("http://a.com/x?b=2").unwrap();
        assert_eq!(u.request_target(), "/x?b=2");
    }
}
