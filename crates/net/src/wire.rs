//! Wire-level fault injection for framed request/response exchanges.
//!
//! [`crate::fault`] models *host*-level misbehavior inside the simulated
//! web (dead servers, slow origins). This module models the **transport
//! itself** misbehaving under a remote object-store client: a request that
//! never arrives, a response that is lost, truncated, stalled, delivered
//! twice, or delivered out of order. The faults are keyed per *exchange
//! ordinal* through [`bfu_util::fault_fires`], so a schedule is a pure
//! function of the seed — and [`WireFaultPlan::with_fault_at`] forces one
//! chosen fault onto one chosen exchange, which is what lets a torture
//! sweep subject *every* wire op of a run to *every* fault class, one at a
//! time.
//!
//! The plan only ever *decides*; the transport that consults it is the one
//! that executes the fault (drops the frame, burns the stall on the virtual
//! clock, replays the duplicate). That keeps the decision table reusable
//! across transports.

use bfu_util::{fault_choice, fault_fires};

const SALT_DROP_REQ: u64 = 0xD409;
const SALT_DROP_RESP: u64 = 0xD4E5;
const SALT_TRUNC: u64 = 0x7124;
const SALT_STALL: u64 = 0x57A1;
const SALT_STALL_MS: u64 = 0x57A2;
const SALT_DUP: u64 = 0xD0B1;
const SALT_REORDER: u64 = 0x4E04;

/// One class of wire fault, applied to one request/response exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The request frame never reaches the server; the client sees a
    /// broken stream. The server performed nothing.
    DropRequest,
    /// The server executes the request but the response frame is lost;
    /// the client sees a broken stream. Retrying re-executes — this is the
    /// fault idempotent request ids exist for.
    DropResponse,
    /// The response frame arrives with its tail cut off; the checksum
    /// fails and the client must retry.
    TruncateResponse,
    /// The exchange completes, but only after a stall paid from the
    /// clock — the fault per-op deadlines exist for.
    Stall,
    /// The request frame is delivered twice; the server must deduplicate
    /// or a retried put becomes a double-apply.
    Duplicate,
    /// The client receives a *previous* exchange's response; request-id
    /// matching must reject it and retry.
    ReorderResponse,
}

impl WireFault {
    /// Every fault class, in a fixed order — the torture sweep's axis.
    pub const ALL: [WireFault; 6] = [
        WireFault::DropRequest,
        WireFault::DropResponse,
        WireFault::TruncateResponse,
        WireFault::Stall,
        WireFault::Duplicate,
        WireFault::ReorderResponse,
    ];
}

/// Seeded fault schedule for one wire transport.
#[derive(Debug, Clone, Copy)]
pub struct WireFaultPlan {
    /// Master seed for every per-exchange decision.
    pub seed: u64,
    /// Force exactly this fault on exactly this exchange ordinal (the
    /// sweep's knob); chance-based faults still apply to other exchanges.
    pub fault_at: Option<(u64, WireFault)>,
    /// Chance the request frame is dropped.
    pub drop_request_chance: f64,
    /// Chance the response frame is dropped (server still executed).
    pub drop_response_chance: f64,
    /// Chance the response frame arrives truncated.
    pub truncate_chance: f64,
    /// Chance the exchange stalls.
    pub stall_chance: f64,
    /// Maximum stall in virtual milliseconds (uniform in `1..=max`).
    pub stall_ms_max: u64,
    /// Chance the request is delivered twice.
    pub duplicate_chance: f64,
    /// Chance the response is swapped with a stashed earlier one.
    pub reorder_chance: f64,
}

impl Default for WireFaultPlan {
    fn default() -> WireFaultPlan {
        WireFaultPlan::none()
    }
}

impl WireFaultPlan {
    /// A perfectly healthy wire.
    pub fn none() -> WireFaultPlan {
        WireFaultPlan {
            seed: 0,
            fault_at: None,
            drop_request_chance: 0.0,
            drop_response_chance: 0.0,
            truncate_chance: 0.0,
            stall_chance: 0.0,
            stall_ms_max: 50,
            duplicate_chance: 0.0,
            reorder_chance: 0.0,
        }
    }

    /// Every fault class active at once, seeded — the chaos preset.
    pub fn chaos(seed: u64) -> WireFaultPlan {
        WireFaultPlan {
            seed,
            drop_request_chance: 0.06,
            drop_response_chance: 0.06,
            truncate_chance: 0.05,
            stall_chance: 0.10,
            duplicate_chance: 0.06,
            reorder_chance: 0.05,
            ..WireFaultPlan::none()
        }
    }

    /// This plan, forcing `fault` on exchange `k`.
    pub fn with_fault_at(mut self, k: u64, fault: WireFault) -> WireFaultPlan {
        self.fault_at = Some((k, fault));
        self
    }

    /// The fault (if any) for exchange ordinal `ix`, plus the stall length
    /// when the fault is [`WireFault::Stall`]. First matching class wins,
    /// in [`WireFault::ALL`] order, so a decision never depends on float
    /// comparison order.
    pub fn outcome(&self, ix: u64) -> Option<(WireFault, u64)> {
        if let Some((k, fault)) = self.fault_at {
            if k == ix {
                return Some((fault, self.stall_len(ix)));
            }
        }
        let s = self.seed;
        let fired = |salt: u64, chance: f64| fault_fires(s, 0, "wire", ix, salt, chance);
        if fired(SALT_DROP_REQ, self.drop_request_chance) {
            Some((WireFault::DropRequest, 0))
        } else if fired(SALT_DROP_RESP, self.drop_response_chance) {
            Some((WireFault::DropResponse, 0))
        } else if fired(SALT_TRUNC, self.truncate_chance) {
            Some((WireFault::TruncateResponse, 0))
        } else if fired(SALT_STALL, self.stall_chance) {
            Some((WireFault::Stall, self.stall_len(ix)))
        } else if fired(SALT_DUP, self.duplicate_chance) {
            Some((WireFault::Duplicate, 0))
        } else if fired(SALT_REORDER, self.reorder_chance) {
            Some((WireFault::ReorderResponse, 0))
        } else {
            None
        }
    }

    fn stall_len(&self, ix: u64) -> u64 {
        let max = self.stall_ms_max.max(1);
        1 + fault_choice(self.seed, 0, "wire", ix, SALT_STALL_MS, max as usize - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_never_faults() {
        let p = WireFaultPlan::none();
        assert!((0..1000).all(|ix| p.outcome(ix).is_none()));
    }

    #[test]
    fn forced_fault_fires_exactly_once() {
        let p = WireFaultPlan::none().with_fault_at(7, WireFault::Duplicate);
        for ix in 0..20 {
            match p.outcome(ix) {
                Some((WireFault::Duplicate, _)) => assert_eq!(ix, 7),
                Some(other) => panic!("unexpected fault {other:?} at {ix}"),
                None => assert_ne!(ix, 7),
            }
        }
    }

    #[test]
    fn chaos_is_deterministic_and_diverse() {
        let p = WireFaultPlan::chaos(41);
        let a: Vec<_> = (0..4000).map(|ix| p.outcome(ix)).collect();
        let b: Vec<_> = (0..4000).map(|ix| p.outcome(ix)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for fault in WireFault::ALL {
            assert!(
                a.iter().flatten().any(|(f, _)| *f == fault),
                "chaos never produced {fault:?}"
            );
        }
        assert!(
            a.iter().filter(|o| o.is_none()).count() > 2000,
            "most exchanges stay healthy"
        );
    }

    #[test]
    fn stalls_are_bounded_and_nonzero() {
        let p = WireFaultPlan {
            stall_chance: 1.0,
            stall_ms_max: 10,
            ..WireFaultPlan::none()
        };
        for ix in 0..200 {
            let (fault, ms) = p.outcome(ix).expect("always stalls");
            assert_eq!(fault, WireFault::Stall);
            assert!((1..=10).contains(&ms), "stall {ms} out of range");
        }
    }
}
