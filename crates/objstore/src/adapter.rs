//! [`ObjectBackend`]: the [`bfu_store::StorageBackend`] adapter over any
//! [`ObjectStore`].
//!
//! The impedance mismatches, and how each is absorbed:
//!
//! - **No append, no partial files.** `create` hands out a buffering
//!   [`StorageFile`]; `write` accumulates in memory, `flush` is a no-op,
//!   and `sync_all` performs one whole-object put. Until that put, nothing
//!   exists remotely — exactly the store's durability contract ("unsynced
//!   bytes may vanish"), just with a coarser grain.
//! - **No rename.** `rename` is copy+delete: a visibility-checked get of
//!   `from`, a put of `to`, a delete of `from`. A crash between copy and
//!   delete leaves *both* names, which the store layer already tolerates
//!   (scrub re-quarantines, sweeps re-sweep). For the manifest-publish
//!   path the adapter overrides [`StorageBackend::replace`] with a single
//!   versioned put, so old-or-new-never-torn holds without any rename.
//! - **No directory sync.** `sync_dir` is a no-op *plus a read-after-write
//!   visibility check*: every name this adapter has put since the last
//!   check is re-read until the store serves the acknowledged content.
//! - **Eventual visibility.** The adapter remembers the checksum of every
//!   object it wrote that has not yet been observed, and re-issues gets and
//!   lists that contradict those expectations (bounded retries). A backend
//!   whose partition outlasts the retry budget is recorded in
//!   `visibility_failures` and the last observation is served — layers
//!   above see a slow backend, never a lying one.
//!
//! Every op lands in atomic counters surfaced as
//! [`bfu_crawler::BackendTotals`] via [`StorageBackend::op_totals`], which
//! the fabric coordinator folds into the provenance sidecar's `"backend"`
//! block.

use crate::object::ObjectStore;
use bfu_crawler::BackendTotals;
use bfu_store::{StorageBackend, StorageFile};
use bfu_util::{fnv64, VirtualClock};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Re-reads allowed for a get/list that contradicts our own acknowledged
/// writes. Each retry is itself a backend op, so this must comfortably
/// exceed the simulator's worst-case visibility lag (2 × partition window).
const VIS_RETRY_CAP: u32 = 32;

/// Virtual milliseconds each visibility retry waits before re-reading.
/// Paid from the adapter's clock (when it has one) so the wait shows up
/// in a run's virtual duration instead of being a free spin.
const VIS_RETRY_DELAY_MS: u64 = 5;

#[derive(Debug, Default)]
struct OpCounters {
    puts: AtomicU64,
    gets: AtomicU64,
    deletes: AtomicU64,
    lists: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    retries: AtomicU64,
    visibility_failures: AtomicU64,
    cas_puts: AtomicU64,
    cas_conflicts: AtomicU64,
}

struct Inner {
    store: Arc<dyn ObjectStore>,
    counters: OpCounters,
    /// Clock that visibility-retry delays are paid from; `None` means the
    /// caller gave us no notion of time and retries are immediate.
    clock: Option<Arc<Mutex<VirtualClock>>>,
    /// Read-your-write expectations: object name → FNV-64 of the content
    /// this adapter last put, *until a read confirms the store serves it*.
    /// `sync_dir` drains this set — it is the "what have I published but
    /// never seen back" work list.
    expected: Mutex<BTreeMap<String, u64>>,
    /// Long-lived record of the last content this adapter wrote per name,
    /// cleared when the adapter itself removes or renames the name away
    /// (or gives up after a visibility-retry exhaustion). This is what
    /// keeps *later* reads honest: a confirmed object that a partition
    /// subsequently hides (stale get, lost-then-replayed overwrite) is
    /// still detected and retried, long after the `expected` entry drained.
    written: Mutex<BTreeMap<String, u64>>,
}

impl fmt::Debug for Inner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectBackend")
            .field("store", &self.store.describe())
            .finish()
    }
}

impl Inner {
    /// Charge one visibility-retry delay to the clock (no-op without one).
    /// Counted by the caller into `retries`; this only accounts the time.
    fn pay_retry_delay(&self) {
        if let Some(clock) = &self.clock {
            if let Ok(mut c) = clock.lock() {
                c.advance(VIS_RETRY_DELAY_MS);
            }
        }
    }

    fn expectation(&self, name: &str) -> Option<u64> {
        self.expected
            .lock()
            .ok()
            .and_then(|e| e.get(name).copied())
            .or_else(|| self.written.lock().ok().and_then(|w| w.get(name).copied()))
    }

    /// Drop the pending-visibility entry; the long-lived `written` record
    /// survives (a confirmed object must *stay* readable).
    fn clear_expectation(&self, name: &str) {
        if let Ok(mut e) = self.expected.lock() {
            e.remove(name);
        }
    }

    /// Forget everything about `name` — it left our custody (removed or
    /// renamed away) or the backend won out (retry exhaustion).
    fn forget(&self, name: &str) {
        if let Ok(mut e) = self.expected.lock() {
            e.remove(name);
        }
        if let Ok(mut w) = self.written.lock() {
            w.remove(name);
        }
    }

    fn put_object(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.store.put(name, bytes)?;
        self.counters.puts.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_in
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let sum = fnv64(bytes);
        if let Ok(mut e) = self.expected.lock() {
            e.insert(name.to_owned(), sum);
        }
        if let Ok(mut w) = self.written.lock() {
            w.insert(name.to_owned(), sum);
        }
        Ok(())
    }

    /// Get with read-your-write enforcement: while an expectation for
    /// `name` is outstanding, a missing or checksum-mismatched read is
    /// retried (each retry is a backend op, which is what lets a bounded
    /// partition heal *during* the retries). Convergence clears the
    /// expectation; exhaustion counts a visibility failure, clears it, and
    /// serves the last observation.
    fn get_checked(&self, name: &str) -> io::Result<Vec<u8>> {
        let expect = self.expectation(name);
        let mut last: Option<io::Result<Vec<u8>>> = None;
        for attempt in 0..=VIS_RETRY_CAP {
            let res = self.store.get(name);
            self.counters.gets.fetch_add(1, Ordering::Relaxed);
            let converged = match (&res, expect) {
                (Ok(bytes), Some(want)) => fnv64(bytes) == want,
                (Ok(_), None) => true,
                (Err(e), _) if e.kind() != io::ErrorKind::NotFound => true,
                (Err(_), None) => true,
                (Err(_), Some(_)) => false,
            };
            if converged {
                if expect.is_some() {
                    self.clear_expectation(name);
                }
                if let Ok(bytes) = &res {
                    self.counters
                        .bytes_out
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                }
                return res;
            }
            last = Some(res);
            if attempt < VIS_RETRY_CAP {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                self.pay_retry_delay();
            }
        }
        self.counters
            .visibility_failures
            .fetch_add(1, Ordering::Relaxed);
        self.forget(name);
        let res = last.unwrap_or_else(|| {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("object {name:?} never became visible"),
            ))
        });
        if let Ok(bytes) = &res {
            self.counters
                .bytes_out
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        }
        res
    }
}

/// Adapts whole-object semantics to the store's backend contract.
#[derive(Debug, Clone)]
pub struct ObjectBackend {
    inner: Arc<Inner>,
}

impl ObjectBackend {
    /// Wrap `store` as a [`StorageBackend`]. Visibility retries are
    /// immediate; prefer [`ObjectBackend::with_clock`] where a run has a
    /// virtual clock to charge them to.
    pub fn new(store: Arc<dyn ObjectStore>) -> ObjectBackend {
        ObjectBackend::build(store, None)
    }

    /// Wrap `store`, paying visibility-retry delays from `clock`.
    pub fn with_clock(
        store: Arc<dyn ObjectStore>,
        clock: Arc<Mutex<VirtualClock>>,
    ) -> ObjectBackend {
        ObjectBackend::build(store, Some(clock))
    }

    fn build(
        store: Arc<dyn ObjectStore>,
        clock: Option<Arc<Mutex<VirtualClock>>>,
    ) -> ObjectBackend {
        ObjectBackend {
            inner: Arc::new(Inner {
                store,
                counters: OpCounters::default(),
                clock,
                expected: Mutex::new(BTreeMap::new()),
                written: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The wrapped object store.
    pub fn object_store(&self) -> &Arc<dyn ObjectStore> {
        &self.inner.store
    }
}

/// A buffering [`StorageFile`]: bytes accumulate locally and become one
/// whole-object put at `sync_all`.
struct ObjectWriter {
    inner: Arc<Inner>,
    name: String,
    buf: Vec<u8>,
}

impl fmt::Debug for ObjectWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectWriter")
            .field("name", &self.name)
            .field("buffered", &self.buf.len())
            .finish()
    }
}

impl StorageFile for ObjectWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.inner.put_object(&self.name, &self.buf)
    }
}

impl StorageBackend for ObjectBackend {
    fn create(&self, name: &str) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(ObjectWriter {
            inner: Arc::clone(&self.inner),
            name: name.to_owned(),
            buf: Vec::new(),
        }))
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.get_checked(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        // Copy + delete. The copy reads through the visibility check, so a
        // rename right after a put (the tmp-file publish idiom) cannot copy
        // a stale version.
        let bytes = self.inner.get_checked(from)?;
        self.inner.put_object(to, &bytes)?;
        match self.inner.store.delete(from) {
            Ok(()) => {
                self.inner.counters.deletes.fetch_add(1, Ordering::Relaxed);
            }
            // A replayed delete or a concurrent sweep got there first; the
            // rename's postcondition (`to` has the bytes) already holds.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        self.inner.forget(from);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let res = self.inner.store.delete(name);
        if res.is_ok() {
            self.inner.counters.deletes.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.forget(name);
        res
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        match self.inner.get_checked(name) {
            Ok(_) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        // Listings pass through in the store's (unspecified, possibly
        // shuffled) order — consumers sort. A listing that omits a name we
        // wrote and never deleted is stale and re-taken — whether the name
        // is freshly put or long since confirmed.
        let expected: Vec<String> = self
            .inner
            .written
            .lock()
            .map(|w| w.keys().cloned().collect())
            .unwrap_or_default();
        let mut last: Vec<String> = Vec::new();
        for attempt in 0..=VIS_RETRY_CAP {
            let names = self.inner.store.list()?;
            self.inner.counters.lists.fetch_add(1, Ordering::Relaxed);
            if expected.iter().all(|e| names.contains(e)) {
                return Ok(names);
            }
            last = names;
            if attempt < VIS_RETRY_CAP {
                self.inner.counters.retries.fetch_add(1, Ordering::Relaxed);
                self.inner.pay_retry_delay();
            }
        }
        self.inner
            .counters
            .visibility_failures
            .fetch_add(1, Ordering::Relaxed);
        // Force convergence: we hold acknowledgements for these names.
        for e in expected {
            if !last.contains(&e) {
                last.push(e);
            }
        }
        Ok(last)
    }

    fn sync_dir(&self) -> io::Result<()> {
        // No namespace to sync — acknowledged puts are already durable.
        // Instead: read-after-write visibility check over every name put
        // since the last check, so the "names are published" postcondition
        // callers rely on holds before we return.
        let pending: Vec<String> = self
            .inner
            .expected
            .lock()
            .map(|e| e.keys().cloned().collect())
            .unwrap_or_default();
        for name in pending {
            // NotFound after retries is counted by get_checked; the name's
            // put was acknowledged, so the store will serve it eventually —
            // later reads retry again. Anything else is a real error.
            match self.inner.get_checked(&name) {
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn describe(&self) -> String {
        format!("objstore:{}", self.inner.store.describe())
    }

    fn put(&self, name: &str, contents: &[u8]) -> io::Result<()> {
        self.inner.put_object(name, contents)
    }

    /// Atomic replace is native here: one versioned put, no tmp, no rename.
    /// The follow-up read is the publish's read-after-write check.
    fn replace(&self, name: &str, contents: &[u8]) -> io::Result<()> {
        self.inner.put_object(name, contents)?;
        match self.inner.get_checked(name) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// The strongly consistent generation probe, served by the store's
    /// native `head` — the election layer's read side of the fence.
    fn generation(&self, name: &str) -> io::Result<u64> {
        self.inner.counters.gets.fetch_add(1, Ordering::Relaxed);
        self.inner.store.head(name)
    }

    /// Conditional replace, served by the store's native compare-and-swap.
    /// A lost race surfaces as a [`bfu_store::CasConflict`]-carrying error
    /// and is counted — conflicts are the election working as designed,
    /// not a fault.
    fn replace_if(&self, name: &str, expected: u64, contents: &[u8]) -> io::Result<u64> {
        self.inner.counters.cas_puts.fetch_add(1, Ordering::Relaxed);
        match self.inner.store.put_if(name, expected, contents) {
            Ok(generation) => {
                self.inner
                    .counters
                    .bytes_in
                    .fetch_add(contents.len() as u64, Ordering::Relaxed);
                // The CAS is strongly consistent: no visibility lag to
                // absorb, so record the write as already-confirmed.
                if let Ok(mut w) = self.inner.written.lock() {
                    w.insert(name.to_owned(), fnv64(contents));
                }
                Ok(generation)
            }
            Err(e) => {
                if bfu_store::as_cas_conflict(&e).is_some() {
                    self.inner
                        .counters
                        .cas_conflicts
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    fn op_totals(&self) -> Option<BackendTotals> {
        let c = &self.inner.counters;
        let remote = self.inner.store.remote_totals().unwrap_or_default();
        let replica = self.inner.store.replica_totals().unwrap_or_default();
        Some(BackendTotals {
            enabled: true,
            puts: c.puts.load(Ordering::Relaxed),
            gets: c.gets.load(Ordering::Relaxed),
            deletes: c.deletes.load(Ordering::Relaxed),
            lists: c.lists.load(Ordering::Relaxed),
            bytes_in: c.bytes_in.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            visibility_failures: c.visibility_failures.load(Ordering::Relaxed),
            cas_puts: c.cas_puts.load(Ordering::Relaxed),
            cas_conflicts: c.cas_conflicts.load(Ordering::Relaxed),
            remote_ops: remote.ops,
            remote_retries: remote.retries,
            remote_reconnects: remote.reconnects,
            replicas: replica.replicas,
            replica_quorum_writes: replica.quorum_writes,
            replica_quorum_reads: replica.quorum_reads,
            replica_read_repairs: replica.read_repairs,
            replica_errors: replica.replica_errors,
            replica_cas_promotions: replica.cas_promotions,
            replica_anti_entropy_copies: replica.anti_entropy_copies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ObjFaultPlan, SimObjectStore};

    fn sim_backend(plan: ObjFaultPlan) -> ObjectBackend {
        ObjectBackend::new(Arc::new(SimObjectStore::new(plan)))
    }

    #[test]
    fn buffered_file_becomes_one_put() {
        let b = sim_backend(ObjFaultPlan::none());
        let mut f = b.create("obj").unwrap();
        f.write(b"hello ").unwrap();
        f.write(b"world").unwrap();
        f.flush().unwrap();
        assert!(
            b.get("obj").is_err(),
            "nothing exists before sync_all publishes the buffer"
        );
        f.sync_all().unwrap();
        assert_eq!(b.get("obj").unwrap(), b"hello world");
        let t = b.op_totals().unwrap();
        assert_eq!(t.puts, 1);
        assert_eq!(t.bytes_in, 11);
    }

    #[test]
    fn rename_is_copy_plus_delete() {
        let b = sim_backend(ObjFaultPlan::none());
        b.put("a.tmp", b"payload").unwrap();
        b.rename("a.tmp", "a").unwrap();
        assert_eq!(b.get("a").unwrap(), b"payload");
        assert!(!b.exists("a.tmp").unwrap());
        assert_eq!(b.op_totals().unwrap().deletes, 1);
    }

    #[test]
    fn get_heals_delayed_visibility() {
        // Partition the put itself: its effect is delayed a full window.
        // The adapter's read retries until the store converges.
        let b = sim_backend(ObjFaultPlan::none().with_partition_at(0));
        b.put("m", b"v1").unwrap();
        assert_eq!(b.get("m").unwrap(), b"v1", "read-your-write healed");
        let t = b.op_totals().unwrap();
        assert!(t.retries > 0, "healing took retries: {t:?}");
        assert_eq!(t.visibility_failures, 0);
    }

    #[test]
    fn get_heals_stale_read_your_writes() {
        let b = sim_backend(ObjFaultPlan::none().with_partition_at(2));
        b.put("m", b"v1").unwrap();
        b.put("m", b"v2").unwrap();
        // Op 2 is the get: the store serves v1, the adapter rejects it
        // against its own acknowledged v2 and retries.
        assert_eq!(b.get("m").unwrap(), b"v2");
        assert!(b.op_totals().unwrap().retries > 0);
    }

    #[test]
    fn list_heals_stale_listings_and_stays_unsorted() {
        let b = sim_backend(
            ObjFaultPlan::none()
                .with_shuffled_lists()
                .with_partition_at(2),
        );
        b.put("b", b"2").unwrap();
        b.put("a", b"1").unwrap();
        // Op 2 is the list: stale (misses a recent name) → retried.
        let names = b.list().unwrap();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["a".to_owned(), "b".to_owned()]);
        assert!(b.op_totals().unwrap().retries > 0);
    }

    #[test]
    fn replace_is_old_or_new_under_chaos() {
        let b = sim_backend(ObjFaultPlan::chaos(41));
        b.replace("MANIFEST", b"old").unwrap();
        b.replace("MANIFEST", b"new").unwrap();
        for _ in 0..32 {
            let bytes = b.get("MANIFEST").unwrap();
            assert!(
                bytes == b"old" || bytes == b"new",
                "torn manifest: {bytes:?}"
            );
        }
    }

    #[test]
    fn removed_names_never_cause_retry_storms() {
        // Once the adapter itself removes a name, all expectations about
        // it are forgotten — later probes see plain store behavior.
        let b = sim_backend(ObjFaultPlan::none());
        b.put("x", b"1").unwrap();
        assert_eq!(b.get("x").unwrap(), b"1");
        b.remove("x").unwrap();
        assert!(!b.exists("x").unwrap(), "no expectation, no retries");
        assert_eq!(b.op_totals().unwrap().retries, 0);
    }

    #[test]
    fn confirmed_objects_stay_protected_from_later_partitions() {
        // The long-lived written record: confirm a write, then hit a later
        // get with a partition — the stale/missing read must still be
        // retried to the acknowledged content, not served as truth.
        let b = sim_backend(ObjFaultPlan::none().with_partition_at(2));
        b.put("shard", b"records").unwrap();
        assert_eq!(b.get("shard").unwrap(), b"records", "confirmed");
        // Op 2 is this get: partitioned. With only one version in history
        // the stale read serves nothing — indistinguishable from a lost
        // object — and must heal against the written record.
        assert_eq!(b.get("shard").unwrap(), b"records");
        let t = b.op_totals().unwrap();
        assert!(t.retries > 0, "healing took retries: {t:?}");
        assert_eq!(t.visibility_failures, 0);
    }

    #[test]
    fn visibility_retries_pay_the_virtual_clock() {
        // Satellite fix: the sync_dir/get visibility loop used to spin for
        // free. With a clock attached, every counted retry advances it.
        let clock = Arc::new(Mutex::new(VirtualClock::new()));
        let store = Arc::new(SimObjectStore::new(
            ObjFaultPlan::none().with_partition_at(0),
        ));
        let b = ObjectBackend::with_clock(store, Arc::clone(&clock));
        b.put("m", b"v1").unwrap();
        b.sync_dir().unwrap();
        let t = b.op_totals().unwrap();
        assert!(t.retries > 0, "partition must force retries: {t:?}");
        let paid = clock.lock().unwrap().now().millis();
        assert_eq!(
            paid,
            t.retries * 5,
            "every retry pays exactly one delay from the clock"
        );
    }

    #[test]
    fn clockless_backend_still_converges() {
        // Without a clock the loop degrades to the old immediate retry —
        // correct, just unbilled.
        let b = sim_backend(ObjFaultPlan::none().with_partition_at(0));
        b.put("m", b"v1").unwrap();
        b.sync_dir().unwrap();
        assert_eq!(b.get("m").unwrap(), b"v1");
    }

    #[test]
    fn replace_if_and_generation_ride_native_cas() {
        let b = sim_backend(ObjFaultPlan::none());
        let g1 = b.replace_if("COORD", 0, b"term1").unwrap();
        assert!(g1 > 0);
        assert_eq!(b.generation("COORD").unwrap(), g1);
        // Stale expected loses, with the typed conflict payload intact.
        let err = b.replace_if("COORD", g1 + 9, b"zombie").unwrap_err();
        let c = bfu_store::as_cas_conflict(&err).expect("typed conflict");
        assert_eq!(c.found, g1);
        // The winner's successor succeeds.
        let g2 = b.replace_if("COORD", g1, b"term2").unwrap();
        assert!(g2 > g1);
        let t = b.op_totals().unwrap();
        assert_eq!(t.cas_puts, 3);
        assert_eq!(t.cas_conflicts, 1);
    }

    #[test]
    fn local_backend_reports_zero_remote_effort() {
        let b = sim_backend(ObjFaultPlan::none());
        b.put("x", b"1").unwrap();
        let t = b.op_totals().unwrap();
        assert_eq!(
            (t.remote_ops, t.remote_retries, t.remote_reconnects),
            (0, 0, 0)
        );
        assert_eq!(t.replicas, 0, "single-copy stores report no replicas");
    }

    #[test]
    fn replicated_store_counters_reach_op_totals() {
        let replicas: Vec<Arc<dyn ObjectStore>> = (0..3)
            .map(|_| Arc::new(SimObjectStore::new(ObjFaultPlan::none())) as Arc<dyn ObjectStore>)
            .collect();
        let store = crate::replica::ReplicatedObjectStore::majority(replicas).unwrap();
        let b = ObjectBackend::new(Arc::new(store));
        b.put("x", b"1").unwrap();
        assert_eq!(b.get("x").unwrap(), b"1");
        let t = b.op_totals().unwrap();
        assert_eq!(t.replicas, 3);
        assert!(t.replica_quorum_writes >= 1, "put acked at quorum: {t:?}");
        assert!(t.replica_quorum_reads >= 1, "get settled at quorum: {t:?}");
        assert_eq!(t.replica_errors, 0, "healthy replicas: {t:?}");
    }
}
