//! The production-shaped object store: immutable generation blobs over a
//! local directory.
//!
//! Every `put` writes a *new file* — `name#g<counter>` — framed with a
//! magic, a length, and an FNV-64 checksum, then fsyncs the file and the
//! directory. Nothing is ever renamed and no file is ever appended to after
//! creation: a crash mid-put leaves at worst a torn generation that fails
//! frame validation and is invisible to readers, while every previously
//! acknowledged generation is untouched. `get` serves the newest *valid*
//! generation, which is exactly the "versioned put" publish the manifest
//! and lease table need: old-or-new, never torn, with no rename.
//!
//! The generation counter is process-local (seeded from the directory's
//! current maximum at open, and bumped past any on-disk generation at each
//! put). Two processes concurrently putting the *same* name could race a
//! generation number, which is why mutable names are single-writer by
//! fabric discipline — the coordinator owns the manifest and lease table;
//! workers only put fresh lease-and-epoch-scoped names.

use crate::object::ObjectStore;
use bfu_crawler::retry_interrupted;
use bfu_util::fnv64;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Frame magic: torn or foreign files can never validate.
const FRAME_MAGIC: &[u8; 8] = b"BFUOBJ1\n";
/// Separator between the object name and its generation suffix. Never
/// appears in object names (the store layer's names are `[A-Za-z0-9._-]`).
const GEN_SEP: char = '#';

/// Objects as immutable checksummed generation files in one directory.
pub struct DirObjectStore {
    root: PathBuf,
    counter: AtomicU64,
}

impl fmt::Debug for DirObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DirObjectStore")
            .field("root", &self.root)
            .finish()
    }
}

/// `name#g<gen>` → `(name, gen)`.
fn parse_gen_file(file: &str) -> Option<(&str, u64)> {
    let (name, suffix) = file.rsplit_once(GEN_SEP)?;
    let hex = suffix.strip_prefix('g')?;
    let gen = u64::from_str_radix(hex, 16).ok()?;
    if name.is_empty() {
        return None;
    }
    Some((name, gen))
}

fn gen_file(name: &str, gen: u64) -> String {
    format!("{name}{GEN_SEP}g{gen:016x}")
}

/// Frame: magic, LE payload length, LE FNV-64 of the payload, payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_MAGIC.len() + 16 + payload.len());
    out.extend_from_slice(FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a frame, returning the payload. `None` for torn/foreign bytes.
fn unframe(bytes: &[u8]) -> Option<Vec<u8>> {
    let rest = bytes.strip_prefix(FRAME_MAGIC.as_slice())?;
    let (len_bytes, rest) = rest.split_first_chunk::<8>()?;
    let (sum_bytes, payload) = rest.split_first_chunk::<8>()?;
    if u64::from_le_bytes(*len_bytes) != payload.len() as u64 {
        return None;
    }
    if u64::from_le_bytes(*sum_bytes) != fnv64(payload) {
        return None;
    }
    Some(payload.to_vec())
}

impl DirObjectStore {
    /// Open (creating if absent) `root` as an object store.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DirObjectStore> {
        let root = root.into();
        retry_interrupted(|| fs::create_dir_all(&root))?;
        let store = DirObjectStore {
            root,
            counter: AtomicU64::new(1),
        };
        let max = store
            .scan_generations()?
            .values()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0);
        store.counter.store(max + 1, Ordering::SeqCst);
        Ok(store)
    }

    /// The backing directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// name → ascending generation numbers present on disk (valid or not).
    fn scan_generations(&self) -> io::Result<BTreeMap<String, Vec<u64>>> {
        let mut out: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for entry in retry_interrupted(|| fs::read_dir(&self.root))? {
            let entry = entry?;
            let file_name = entry.file_name();
            let Some(file) = file_name.to_str() else {
                continue;
            };
            if let Some((name, gen)) = parse_gen_file(file) {
                out.entry(name.to_owned()).or_default().push(gen);
            }
        }
        for gens in out.values_mut() {
            gens.sort_unstable();
        }
        Ok(out)
    }

    /// Ascending generations of one name.
    fn generations(&self, name: &str) -> io::Result<Vec<u64>> {
        Ok(self.scan_generations()?.remove(name).unwrap_or_default())
    }

    fn read_generation(&self, name: &str, gen: u64) -> Option<Vec<u8>> {
        let path = self.root.join(gen_file(name, gen));
        let mut file = retry_interrupted(|| File::open(&path)).ok()?;
        let mut bytes = Vec::new();
        retry_interrupted(|| file.read_to_end(&mut bytes)).ok()?;
        unframe(&bytes)
    }

    fn sync_root(&self) -> io::Result<()> {
        match retry_interrupted(|| File::open(&self.root)) {
            Ok(dir) => retry_interrupted(|| dir.sync_all()),
            Err(_) => Ok(()),
        }
    }

    /// Newest generation of `name` whose frame validates; 0 if none.
    fn head_gen(&self, name: &str) -> io::Result<u64> {
        Ok(self
            .generations(name)?
            .into_iter()
            .rev()
            .find(|&g| self.read_generation(name, g).is_some())
            .unwrap_or(0))
    }

    /// Durably write `framed` to a fresh temp file and return its path.
    /// Temp names use a `#t` suffix [`parse_gen_file`] rejects, so a
    /// crashed attempt is invisible to every scan.
    fn write_temp(&self, name: &str, framed: &[u8]) -> io::Result<PathBuf> {
        let nonce = self.counter.fetch_add(1, Ordering::SeqCst);
        let path = self
            .root
            .join(format!("{name}{GEN_SEP}t{}-{nonce:x}", std::process::id()));
        let mut file = retry_interrupted(|| File::create(&path))?;
        let mut rest: &[u8] = framed;
        while !rest.is_empty() {
            let n = retry_interrupted(|| file.write(rest))?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "object store accepted zero bytes",
                ));
            }
            rest = &rest[n..];
        }
        retry_interrupted(|| file.sync_all())?;
        Ok(path)
    }
}

impl ObjectStore for DirObjectStore {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        if name.contains(GEN_SEP) || name.contains('/') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("object name {name:?} contains a reserved character"),
            ));
        }
        let prior = self.generations(name)?;
        let mut gen = self.counter.fetch_add(1, Ordering::SeqCst);
        if let Some(&max) = prior.last() {
            if gen <= max {
                gen = max + 1;
                self.counter.fetch_max(gen + 1, Ordering::SeqCst);
            }
        }
        let path = self.root.join(gen_file(name, gen));
        let framed = frame(bytes);
        let mut file = retry_interrupted(|| File::create(&path))?;
        let mut rest: &[u8] = &framed;
        while !rest.is_empty() {
            let n = retry_interrupted(|| file.write(rest))?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "object store accepted zero bytes",
                ));
            }
            rest = &rest[n..];
        }
        retry_interrupted(|| file.sync_all())?;
        self.sync_root()?;
        // The new generation is durable and visible; older generations are
        // garbage. Collection is best-effort — a leftover older generation
        // only costs disk, readers always pick the newest valid one.
        for old in prior {
            let _ = fs::remove_file(self.root.join(gen_file(name, old)));
        }
        Ok(())
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        for gen in self.generations(name)?.into_iter().rev() {
            if let Some(payload) = self.read_generation(name, gen) {
                return Ok(payload);
            }
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no valid generation of object {name:?}"),
        ))
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        let gens = self.generations(name)?;
        if gens.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("object {name:?} not found"),
            ));
        }
        for gen in gens {
            retry_interrupted(|| fs::remove_file(self.root.join(gen_file(name, gen))))?;
        }
        self.sync_root()
    }

    fn list(&self) -> io::Result<Vec<String>> {
        // A name is visible only if at least one of its generations holds a
        // complete frame: a torn put must not list a name whose every get
        // would fail.
        let mut out = Vec::new();
        for (name, gens) in self.scan_generations()? {
            if gens
                .iter()
                .rev()
                .any(|&g| self.read_generation(&name, g).is_some())
            {
                out.push(name);
            }
        }
        Ok(out)
    }

    fn describe(&self) -> String {
        format!("dirobj:{}", self.root.display())
    }

    fn head(&self, name: &str) -> io::Result<u64> {
        match self.head_gen(name)? {
            0 => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no valid generation of object {name:?}"),
            )),
            gen => Ok(gen),
        }
    }

    fn put_if(&self, name: &str, expected: u64, bytes: &[u8]) -> io::Result<u64> {
        if name.contains(GEN_SEP) || name.contains('/') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("object name {name:?} contains a reserved character"),
            ));
        }
        // Atomicity: the full frame lands in a synced temp file first, then
        // `hard_link` publishes it at exactly generation `expected + 1` —
        // link fails with AlreadyExists if any racer got there first, and
        // the published name only ever holds a complete frame (no torn
        // winner a loser could mistake for debris).
        let found = self.head_gen(name)?;
        if found != expected {
            return Err(bfu_store::cas_conflict_error(expected, found));
        }
        let target = expected + 1;
        let target_path = self.root.join(gen_file(name, target));
        let temp = self.write_temp(name, &frame(bytes))?;
        let mut attempts = 0u32;
        let linked = loop {
            match fs::hard_link(&temp, &target_path) {
                Ok(()) => break true,
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if self.read_generation(name, target).is_some() {
                        break false; // a racer's complete frame: real conflict
                    }
                    // A torn file from a crashed plain `put` squats on the
                    // slot; it is invisible to readers and its writer is
                    // gone (live CAS writers publish complete frames only),
                    // so clear it and retry the link.
                    attempts += 1;
                    if attempts > 4 {
                        break false;
                    }
                    let _ = fs::remove_file(&target_path);
                }
                Err(e) => {
                    let _ = fs::remove_file(&temp);
                    return Err(e);
                }
            }
        };
        let _ = fs::remove_file(&temp);
        if !linked {
            let found = self.head_gen(name)?.max(target);
            return Err(bfu_store::cas_conflict_error(expected, found));
        }
        self.sync_root()?;
        self.counter.fetch_max(target + 1, Ordering::SeqCst);
        // GC generations the new one supersedes (best-effort, like `put`).
        for old in self.generations(name)? {
            if old < target {
                let _ = fs::remove_file(self.root.join(gen_file(name, old)));
            }
        }
        Ok(target)
    }

    fn put_at(&self, name: &str, gen: u64, bytes: &[u8]) -> io::Result<()> {
        if name.contains(GEN_SEP) || name.contains('/') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("object name {name:?} contains a reserved character"),
            ));
        }
        if gen == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "generation 0 is reserved for absence",
            ));
        }
        if self.read_generation(name, gen).is_some() {
            return Ok(()); // generations are immutable: idempotent re-send
        }
        // Same publish discipline as put_if: complete synced frame in a temp
        // file, hard_link to exactly `name#g<gen>`. AlreadyExists with a
        // valid frame is another replication writer landing the same
        // content; a torn squatter (crashed plain put) is cleared first.
        let target_path = self.root.join(gen_file(name, gen));
        let temp = self.write_temp(name, &frame(bytes))?;
        let mut attempts = 0u32;
        let landed = loop {
            match fs::hard_link(&temp, &target_path) {
                Ok(()) => break true,
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if self.read_generation(name, gen).is_some() {
                        break true; // identical content already published
                    }
                    attempts += 1;
                    if attempts > 4 {
                        break false;
                    }
                    let _ = fs::remove_file(&target_path);
                }
                Err(e) => {
                    let _ = fs::remove_file(&temp);
                    return Err(e);
                }
            }
        };
        let _ = fs::remove_file(&temp);
        if !landed {
            return Err(io::Error::other(format!(
                "generation {gen} of object {name:?} is squatted by a torn frame"
            )));
        }
        self.sync_root()?;
        self.counter.fetch_max(gen + 1, Ordering::SeqCst);
        for old in self.generations(name)? {
            if old < gen {
                let _ = fs::remove_file(self.root.join(gen_file(name, old)));
            }
        }
        Ok(())
    }

    fn get_at(&self, name: &str, gen: u64) -> io::Result<Vec<u8>> {
        self.read_generation(name, gen).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("object {name:?} has no generation {gen}"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DirObjectStore {
        let dir = std::env::temp_dir().join(format!("bfu-dirobj-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DirObjectStore::open(dir).expect("open dir store")
    }

    #[test]
    fn put_get_roundtrip_and_versioning() {
        let s = temp_store("roundtrip");
        s.put("a", b"one").unwrap();
        assert_eq!(s.get("a").unwrap(), b"one");
        s.put("a", b"two").unwrap();
        assert_eq!(s.get("a").unwrap(), b"two", "newest generation wins");
        assert_eq!(s.list().unwrap(), vec!["a".to_owned()]);
        s.delete("a").unwrap();
        assert_eq!(s.get("a").unwrap_err().kind(), io::ErrorKind::NotFound);
        assert!(s.list().unwrap().is_empty());
    }

    #[test]
    fn torn_generation_is_invisible() {
        let s = temp_store("torn");
        s.put("m", b"good").unwrap();
        // Fake a crash mid-put: a newer generation file with a torn frame.
        let torn = gen_file("m", 0xFFFF);
        fs::write(s.root().join(&torn), b"BFUOBJ1\n\x99garbage").unwrap();
        assert_eq!(s.get("m").unwrap(), b"good", "falls back to valid gen");
        assert_eq!(s.list().unwrap(), vec!["m".to_owned()]);
        // A name with ONLY torn generations is not listed and not gettable.
        fs::write(s.root().join(gen_file("t", 1)), b"junk").unwrap();
        assert_eq!(s.get("t").unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(s.list().unwrap(), vec!["m".to_owned()]);
    }

    #[test]
    fn counter_resumes_past_existing_generations() {
        let dir = std::env::temp_dir().join(format!("bfu-dirobj-{}-resume", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = DirObjectStore::open(&dir).unwrap();
            s.put("k", b"first").unwrap();
            s.put("k", b"second").unwrap();
        }
        let s = DirObjectStore::open(&dir).unwrap();
        s.put("k", b"third").unwrap();
        assert_eq!(s.get("k").unwrap(), b"third");
    }

    #[test]
    fn reserved_names_rejected() {
        let s = temp_store("reserved");
        assert!(s.put("a#b", b"x").is_err());
        assert!(s.put("a/b", b"x").is_err());
    }

    #[test]
    fn frame_validation() {
        let f = frame(b"payload");
        assert_eq!(unframe(&f).unwrap(), b"payload");
        assert!(unframe(&f[..f.len() - 1]).is_none(), "truncated payload");
        let mut flipped = f.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(unframe(&flipped).is_none(), "flipped byte");
        assert!(unframe(b"short").is_none());
    }

    #[test]
    fn cas_lifecycle_and_stale_writers_fenced() {
        let s = temp_store("cas-life");
        assert_eq!(s.head("c").unwrap_err().kind(), io::ErrorKind::NotFound);
        let g1 = s.put_if("c", 0, b"first").unwrap();
        assert_eq!(s.head("c").unwrap(), g1);
        assert_eq!(s.get("c").unwrap(), b"first");
        // Creating over an existing object must lose.
        let err = s.put_if("c", 0, b"usurper").unwrap_err();
        let c = bfu_store::as_cas_conflict(&err).expect("typed conflict");
        assert_eq!((c.expected, c.found), (0, g1));
        // A stale generation (deposed writer replaying) must lose too.
        let g2 = s.put_if("c", g1, b"second").unwrap();
        assert!(g2 > g1);
        let err = s.put_if("c", g1, b"zombie").unwrap_err();
        assert_eq!(bfu_store::as_cas_conflict(&err).expect("typed").found, g2);
        assert_eq!(s.get("c").unwrap(), b"second", "zombie write rejected");
    }

    #[test]
    fn cas_exactly_one_winner_under_process_contention() {
        // The hard_link publish is the whole point: N racers CASing from
        // the same observed generation, exactly one may win.
        let s = std::sync::Arc::new(temp_store("cas-race"));
        s.put_if("seat", 0, b"seed").unwrap();
        let base = s.head("seat").unwrap();
        let wins: Vec<bool> = std::thread::scope(|scope| {
            (0..8u32)
                .map(|i| {
                    let s = std::sync::Arc::clone(&s);
                    scope.spawn(move || {
                        s.put_if("seat", base, format!("racer{i}").as_bytes())
                            .is_ok()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        });
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "exactly one CAS racer may win: {wins:?}"
        );
        assert_eq!(s.head("seat").unwrap(), base + 1);
    }

    #[test]
    fn cas_clears_torn_squatter_on_target_generation() {
        // A crashed plain put can leave a torn frame exactly where the CAS
        // wants to publish; it is invisible to readers, so the CAS must
        // clear it and still win.
        let s = temp_store("cas-squat");
        let g = s.put_if("c", 0, b"base").unwrap();
        fs::write(s.root().join(gen_file("c", g + 1)), b"BFUOBJ1\n\x07torn").unwrap();
        let g2 = s.put_if("c", g, b"next").unwrap();
        assert_eq!(g2, g + 1);
        assert_eq!(s.get("c").unwrap(), b"next");
    }

    #[test]
    fn cas_interleaves_with_plain_puts() {
        // Plain put bumps the shared counter past the CAS target; head and
        // a follow-up CAS must keep agreeing on the newest generation.
        let s = temp_store("cas-mixed");
        s.put("c", b"plain1").unwrap();
        let g = s.head("c").unwrap();
        let g2 = s.put_if("c", g, b"cas").unwrap();
        assert!(g2 > g);
        s.put("c", b"plain2").unwrap();
        let g3 = s.head("c").unwrap();
        assert!(g3 > g2, "plain put supersedes the CAS generation");
        assert_eq!(s.get("c").unwrap(), b"plain2");
    }
}
