//! `bfu-objstore` — an object-store-semantics storage backend.
//!
//! The dataset store and the survey fabric speak [`bfu_store::StorageBackend`],
//! whose contract was written for a POSIX directory: open files appended in
//! place, atomic `rename`, `fsync` of the parent directory. An object store
//! offers none of that. What it offers instead is *whole objects*: a `put`
//! is atomic and durable on acknowledgement, a `get` returns a complete
//! object or nothing, `list` enumerates names — possibly stale, in no
//! particular order. This crate maps the first contract onto the second:
//!
//! - [`ObjectStore`] — the narrow object contract: `put` / `get` / `delete`
//!   / `list` of whole named blobs.
//! - [`DirObjectStore`] — the production-shaped impl: every put lands as an
//!   immutable generation blob (`name#g<counter>`) with a checksummed frame,
//!   readers pick the newest valid generation, so a "versioned put" to a
//!   mutable name (the manifest, the lease table) is old-or-new by
//!   construction with no rename anywhere.
//! - [`SimObjectStore`] — the deterministic partition injector: a seeded
//!   [`ObjFaultPlan`] delays put visibility, loses-then-replays puts,
//!   violates read-your-writes, serves stale or shuffled listings, and
//!   power-cuts at a chosen op — the torture suite's backend-level twin of
//!   `FaultFs`.
//! - [`ReplicatedObjectStore`] — client-side replication over N inner
//!   stores: mutations fan out and ack at write-quorum W, reads settle a
//!   generation at quorum R with inline read-repair, CAS routes through a
//!   deterministic per-object primary (promoted when unreachable), and an
//!   anti-entropy scrub catches a crashed-and-rejoined replica back up —
//!   all on the *lockstep generation* invariant (every replica stores a
//!   given `(name, generation)` with identical content).
//! - [`ObjectBackend`] — the adapter implementing `StorageBackend` on top of
//!   any `ObjectStore`: created files buffer in memory and become one put at
//!   `sync_all`; `rename` is copy+delete; `sync_dir` is a no-op plus a
//!   read-after-write visibility check over everything put since the last
//!   sync; `replace` (the manifest-publish primitive) is a single versioned
//!   put. Every op is counted into [`bfu_crawler::BackendTotals`] for the
//!   provenance sidecar's `"backend"` block.
//!
//! The adapter is where eventual consistency is absorbed: it remembers the
//! checksum of every object *it* wrote and re-issues gets/lists that
//! contradict its own acknowledged writes (bounded retries, counted), so
//! layers above see a backend that merely has slow moments, never one that
//! lies. Multi-writer safety comes from the fabric's discipline — mutable
//! names are single-writer (the coordinator), workers only ever put fresh
//! immutable names — and from fencing epochs at the merge point.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod adapter;
mod dir;
mod object;
mod remote;
mod replica;
mod server;
mod sim;
pub mod wire;

pub use adapter::ObjectBackend;
pub use dir::DirObjectStore;
pub use object::{ObjectStore, RemoteTotals, ReplicaTotals};
pub use remote::{
    RemoteClock, RemoteObjectStore, RemotePolicy, SimTransport, TcpTransport, Transport,
};
pub use replica::{ReplicaPolicy, ReplicatedObjectStore, ScrubReport};
pub use server::{read_frame, spawn_tcp_server, ObjectServer, TcpServerHandle, REPLAY_WINDOW};
pub use sim::{ObjFaultPlan, SimObjectStore};
pub use wire::{is_replay_evicted, RemoteError, Request, RequestOp, RespBody, Response};
