//! The narrow object contract every object store implements.

use std::fmt;
use std::io;

/// A flat namespace of whole, immutable-once-written byte objects.
///
/// Semantics (the contract [`crate::ObjectBackend`] builds on):
///
/// - [`ObjectStore::put`] is **atomic and durable on acknowledgement**:
///   after `Ok`, a reader sees either the complete new object or an older
///   complete version — never a prefix, never a mixture — and the new
///   version survives a crash. Visibility may lag acknowledgement.
/// - [`ObjectStore::get`] returns one complete version of the object.
///   It is *allowed* to be stale: an acknowledged put may take bounded time
///   to become visible, and a reader may briefly see an older version.
/// - [`ObjectStore::list`] enumerates names in **no particular order** and
///   may reflect a slightly stale view of the namespace.
/// - [`ObjectStore::delete`] removes the object; like puts, tombstones may
///   take bounded time to become visible.
///
/// There is no rename, no partial write, no directory sync. Anything the
/// store layer needs beyond this is synthesized by the adapter.
pub trait ObjectStore: fmt::Debug + Send + Sync {
    /// Atomically write the whole object `name`. Durable on `Ok`.
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Read one complete (possibly stale) version of object `name`.
    /// [`io::ErrorKind::NotFound`] if no version is visible.
    fn get(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Delete object `name`. [`io::ErrorKind::NotFound`] if no version is
    /// visible.
    fn delete(&self, name: &str) -> io::Result<()>;

    /// All visible object names, in unspecified order, possibly stale.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Human-readable location for error messages and provenance.
    fn describe(&self) -> String;
}
