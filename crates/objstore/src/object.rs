//! The narrow object contract every object store implements.

use bfu_store::cas_conflict_error;
use bfu_util::fnv64;
use std::fmt;
use std::io;

/// A flat namespace of whole, immutable-once-written byte objects.
///
/// Semantics (the contract [`crate::ObjectBackend`] builds on):
///
/// - [`ObjectStore::put`] is **atomic and durable on acknowledgement**:
///   after `Ok`, a reader sees either the complete new object or an older
///   complete version — never a prefix, never a mixture — and the new
///   version survives a crash. Visibility may lag acknowledgement.
/// - [`ObjectStore::get`] returns one complete version of the object.
///   It is *allowed* to be stale: an acknowledged put may take bounded time
///   to become visible, and a reader may briefly see an older version.
/// - [`ObjectStore::list`] enumerates names in **no particular order** and
///   may reflect a slightly stale view of the namespace.
/// - [`ObjectStore::delete`] removes the object; like puts, tombstones may
///   take bounded time to become visible.
/// - [`ObjectStore::head`] and [`ObjectStore::put_if`] speak **generations**:
///   every visible version of a name has a generation, distinct versions
///   never share one, and 0 is reserved for "absent". Unlike plain gets,
///   these are the store's *strongly consistent* ops — real object stores
///   grew exactly this split (eventual reads, linearizable conditional
///   writes), and the coordinator-election fence depends on it.
///
/// There is no rename, no partial write, no directory sync. Anything the
/// store layer needs beyond this is synthesized by the adapter.
pub trait ObjectStore: fmt::Debug + Send + Sync {
    /// Atomically write the whole object `name`. Durable on `Ok`.
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Read one complete (possibly stale) version of object `name`.
    /// [`io::ErrorKind::NotFound`] if no version is visible.
    fn get(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Delete object `name`. [`io::ErrorKind::NotFound`] if no version is
    /// visible.
    fn delete(&self, name: &str) -> io::Result<()>;

    /// All visible object names, in unspecified order, possibly stale.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Human-readable location for error messages and provenance.
    fn describe(&self) -> String;

    /// The current generation of `name` (never 0);
    /// [`io::ErrorKind::NotFound`] if absent.
    ///
    /// The default **emulates** generations as the FNV-64 of the visible
    /// content: good enough to detect "someone else wrote since I looked",
    /// which is all the compare in [`ObjectStore::put_if`] needs. Native
    /// implementations serve their real version counters and are strongly
    /// consistent; the emulation inherits `get`'s staleness.
    fn head(&self, name: &str) -> io::Result<u64> {
        self.get(name).map(|bytes| fnv64(&bytes).max(1))
    }

    /// Conditional put: write `bytes` to `name` only if its current
    /// generation equals `expected` (0 = must be absent). Returns the new
    /// generation; a lost race is a [`bfu_store::CasConflict`]-carrying
    /// error (recover it with [`bfu_store::as_cas_conflict`]).
    ///
    /// The default is an **emulation with an honest race**: it compares via
    /// [`ObjectStore::head`] and then puts, so two emulated callers can
    /// interleave between compare and put and both "win". Native
    /// implementations ([`crate::DirObjectStore`], [`crate::SimObjectStore`],
    /// the remote server) make the compare-and-write atomic, which is what
    /// the election fence requires — never build a fence on the emulation.
    fn put_if(&self, name: &str, expected: u64, bytes: &[u8]) -> io::Result<u64> {
        let found = match self.head(name) {
            Ok(gen) => gen,
            Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        if found != expected {
            return Err(cas_conflict_error(expected, found));
        }
        // The honest race: another writer can land here, between the
        // compare above and the put below.
        self.put(name, bytes)?;
        Ok(fnv64(bytes).max(1))
    }

    /// Wire-level op accounting, if this store is a network client.
    ///
    /// `None` for local stores; [`crate::RemoteObjectStore`] reports the
    /// requests, retries, and reconnects it spent, which the adapter folds
    /// into [`bfu_crawler::BackendTotals`] for the provenance sidecar.
    fn remote_totals(&self) -> Option<RemoteTotals> {
        None
    }

    /// Write `bytes` at **exactly** generation `gen` — the replication
    /// primitive. Generations are immutable once written: if `gen` already
    /// exists the call is an idempotent no-op (the replication layer only
    /// ever re-sends the same content for the same generation). The store's
    /// head must become at least `gen` afterwards.
    ///
    /// Only stores that participate in replication implement this; the
    /// default refuses with [`io::ErrorKind::Unsupported`], the same
    /// pattern as election support elsewhere in the stack.
    fn put_at(&self, name: &str, gen: u64, bytes: &[u8]) -> io::Result<()> {
        let _ = (name, gen, bytes);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "store does not support exact-generation writes",
        ))
    }

    /// Read **exactly** generation `gen` of `name` — the verifiable read.
    /// Because a generation's content is immutable, any replica serving
    /// generation `gen` serves *the* content of that generation; the call
    /// is immune to the staleness plain `get` is allowed. `NotFound` if
    /// that generation is absent on this store.
    fn get_at(&self, name: &str, gen: u64) -> io::Result<Vec<u8>> {
        let _ = (name, gen);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "store does not support exact-generation reads",
        ))
    }

    /// Replication-layer accounting, if this store is a replicated front.
    ///
    /// `None` for plain stores; [`crate::ReplicatedObjectStore`] reports
    /// quorum writes/reads, read repairs, absorbed replica errors, CAS
    /// primary promotions, and anti-entropy copies, which the adapter folds
    /// into [`bfu_crawler::BackendTotals`] for the provenance sidecar.
    fn replica_totals(&self) -> Option<ReplicaTotals> {
        None
    }
}

/// Effort counters for a replicated store front: how much quorum work it
/// did and how much repair traffic the replica set needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaTotals {
    /// Replicas in the set.
    pub replicas: u64,
    /// Mutations acknowledged at write quorum.
    pub quorum_writes: u64,
    /// Reads served at read quorum.
    pub quorum_reads: u64,
    /// Stale replicas repaired inline by a quorum read.
    pub read_repairs: u64,
    /// Individual replica failures absorbed by the quorum (the op still
    /// succeeded).
    pub replica_errors: u64,
    /// CAS ops routed through a promoted primary because the deterministic
    /// primary was unreachable.
    pub cas_promotions: u64,
    /// Object generations copied to lagging replicas by anti-entropy scrub.
    pub anti_entropy_copies: u64,
}

/// Effort counters for a store that talks over a wire: how many requests
/// it issued and how much of that was spent re-sending.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteTotals {
    /// Logical operations issued over the wire.
    pub ops: u64,
    /// Extra request attempts beyond the first (drops, stalls, truncated
    /// or reordered responses, transient server errors).
    pub retries: u64,
    /// Connections re-established after a broken stream.
    pub reconnects: u64,
}
