//! The remote object-store client: retries, backoff, deadlines, reconnect.
//!
//! [`RemoteObjectStore`] implements [`ObjectStore`] by exchanging wire
//! frames with an [`crate::ObjectServer`] through a pluggable
//! [`Transport`]. Two transports exist:
//!
//! - [`SimTransport`] — deterministic: an in-memory server plus a
//!   [`bfu_net::WireFaultPlan`], with every latency, stall, and backoff
//!   paid from a shared [`VirtualClock`] through a
//!   [`bfu_net::conn::Connection`] lifecycle. This is the transport the
//!   torture suite drives, because a seed fully determines the run.
//! - [`TcpTransport`] — real loopback TCP against
//!   [`crate::spawn_tcp_server`], used by the cross-process fabric.
//!
//! Retry discipline (the part the faults exist to exercise):
//!
//! - Each logical op picks one request id and re-sends it verbatim on
//!   every retry, so the server's idempotency cache absorbs "response
//!   lost after the mutation applied".
//! - Only [`RemoteError::retryable`] failures and transport breakage are
//!   retried; `NotFound` / `CasConflict` / `InvalidInput` surface
//!   immediately — retrying a lost CAS race would just lose it again.
//! - A response whose `(client, id)` echo does not match the outstanding
//!   request is a reordered frame: discarded and retried, never
//!   misattributed.
//! - Backoff is capped exponential with deterministic jitter, paid from
//!   the clock ([`RemoteClock::Virtual`] advances the shared clock;
//!   `Wall` sleeps), and every attempt checks the per-op deadline.

use crate::object::{ObjectStore, RemoteTotals};
use crate::server::{read_frame, ObjectServer};
use crate::wire::{
    decode_response, encode_request, unframe, RemoteError, Request, RequestOp, RespBody,
};
use bfu_net::conn::Connection;
use bfu_net::WireFaultPlan;
use bfu_util::{fault_choice, VirtualClock};
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a client pays for waiting: on the shared virtual clock
/// (deterministic tests) or the wall clock (real TCP).
#[derive(Debug, Clone)]
pub enum RemoteClock {
    /// Sleep for real, capped so a retry storm cannot hang a test.
    Wall,
    /// Advance a shared virtual clock; no real time passes.
    Virtual(Arc<Mutex<VirtualClock>>),
}

impl RemoteClock {
    fn pause(&self, ms: u64) {
        match self {
            RemoteClock::Wall => std::thread::sleep(Duration::from_millis(ms.min(250))),
            RemoteClock::Virtual(clock) => {
                if let Ok(mut c) = clock.lock() {
                    c.advance(ms);
                }
            }
        }
    }

    fn now_ms(&self) -> u64 {
        match self {
            // Wall deadlines are enforced against attempt counts instead
            // (see `RemotePolicy::max_attempts`); report monotone zero.
            RemoteClock::Wall => 0,
            RemoteClock::Virtual(clock) => clock.lock().map(|c| c.now().millis()).unwrap_or(0),
        }
    }
}

/// Retry/backoff/deadline policy for one client.
#[derive(Debug, Clone, Copy)]
pub struct RemotePolicy {
    /// Attempts per logical op before giving up (first try included).
    pub max_attempts: u32,
    /// First backoff, doubled each retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Per-op deadline on the virtual clock; exceeded → `TimedOut`.
    pub op_deadline_ms: u64,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RemotePolicy {
    fn default() -> RemotePolicy {
        RemotePolicy {
            max_attempts: 10,
            base_backoff_ms: 5,
            max_backoff_ms: 320,
            op_deadline_ms: 30_000,
            seed: 0,
        }
    }
}

/// One request/response exchange over some medium.
///
/// `exchange` sends a complete request frame and returns the complete
/// response frame the peer sent back — or an error for a broken stream,
/// after which the transport must present a *fresh* connection on the
/// next call (counting it in [`Transport::reconnects`]).
pub trait Transport: fmt::Debug + Send {
    /// Send one frame, receive one frame.
    fn exchange(&mut self, frame: &[u8]) -> io::Result<Vec<u8>>;
    /// Connections (re-)established so far, the first included.
    fn reconnects(&self) -> u64;
    /// Human-readable peer description.
    fn describe(&self) -> String;
}

/// An [`ObjectStore`] client speaking the wire protocol over a transport.
pub struct RemoteObjectStore {
    client_id: u64,
    transport: Mutex<Box<dyn Transport>>,
    clock: RemoteClock,
    policy: RemotePolicy,
    next_id: AtomicU64,
    ops: AtomicU64,
    retries: AtomicU64,
}

impl fmt::Debug for RemoteObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteObjectStore")
            .field("client_id", &self.client_id)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl RemoteObjectStore {
    /// A client with identity `client_id` (must be unique among clients
    /// of one server — it namespaces the idempotency cache).
    pub fn new(
        client_id: u64,
        transport: Box<dyn Transport>,
        clock: RemoteClock,
        policy: RemotePolicy,
    ) -> RemoteObjectStore {
        RemoteObjectStore {
            client_id,
            transport: Mutex::new(transport),
            clock,
            policy,
            next_id: AtomicU64::new(1),
            ops: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// The backoff-jitter seed: the shared policy seed with this client's
    /// identity folded in, so no two clients share a retry schedule.
    fn jitter_seed(&self) -> u64 {
        self.policy.seed ^ self.client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn op(&self, op: RequestOp) -> io::Result<RespBody> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        // Ops that are idempotent by content may be re-issued under a fresh
        // id if the server evicted the original id from its replay window;
        // a CAS may not — its outcome under the old id is unknowable.
        let refreshable = !matches!(op, RequestOp::PutIf { .. });
        let mut id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut frame = encode_request(&Request {
            client: self.client_id,
            id,
            op: op.clone(),
        });
        let started = self.clock.now_ms();
        let mut attempt: u32 = 0;
        loop {
            let outcome = {
                let mut t = self
                    .transport
                    .lock()
                    .map_err(|_| io::Error::other("remote transport poisoned"))?;
                t.exchange(&frame)
            };
            let retryable = match outcome {
                Ok(resp_frame) => match unframe(&resp_frame).and_then(decode_response) {
                    Ok(resp) if resp.client == self.client_id && resp.id == id => match resp.body {
                        Ok(body) => return Ok(body),
                        Err(RemoteError::ReplayEvicted) if refreshable => {
                            // The server can no longer dedupe this id. The
                            // op is idempotent by content, so re-issue it
                            // as a brand-new request.
                            id = self.next_id.fetch_add(1, Ordering::Relaxed);
                            frame = encode_request(&Request {
                                client: self.client_id,
                                id,
                                op: op.clone(),
                            });
                            true
                        }
                        Err(err) if err.retryable() => true,
                        Err(err) => return Err(err.into_io()),
                    },
                    // Someone else's (or an earlier) response: reordered
                    // delivery. Discard and re-ask.
                    Ok(_) => true,
                    // Damaged in flight.
                    Err(_) => true,
                },
                // Broken stream; transport reconnects on the next call.
                Err(_) => true,
            };
            debug_assert!(retryable);
            attempt += 1;
            if attempt >= self.policy.max_attempts {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "remote op {id}: gave up after {attempt} attempts against {}",
                        self.describe()
                    ),
                ));
            }
            let exp = self
                .policy
                .base_backoff_ms
                .saturating_mul(1u64 << attempt.min(16))
                .min(self.policy.max_backoff_ms)
                .max(1);
            // Jitter is seeded per client (the id folded into the seed), so
            // N workers retrying the same fault spread out instead of
            // backing off in lockstep and re-colliding.
            let jitter = fault_choice(
                self.jitter_seed(),
                self.client_id,
                "remote-backoff",
                id,
                attempt as u64,
                (exp / 2) as usize,
            ) as u64;
            self.clock.pause(exp + jitter);
            self.retries.fetch_add(1, Ordering::Relaxed);
            let elapsed = self.clock.now_ms().saturating_sub(started);
            if elapsed >= self.policy.op_deadline_ms {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "remote op {id}: deadline {}ms exceeded",
                        self.policy.op_deadline_ms
                    ),
                ));
            }
        }
    }
}

impl ObjectStore for RemoteObjectStore {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        match self.op(RequestOp::Put {
            name: name.to_string(),
            bytes: bytes.to_vec(),
        })? {
            RespBody::Unit => Ok(()),
            other => Err(io::Error::other(format!("put: bad body {other:?}"))),
        }
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        match self.op(RequestOp::Get {
            name: name.to_string(),
        })? {
            RespBody::Bytes(b) => Ok(b),
            other => Err(io::Error::other(format!("get: bad body {other:?}"))),
        }
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        match self.op(RequestOp::Delete {
            name: name.to_string(),
        })? {
            RespBody::Unit => Ok(()),
            other => Err(io::Error::other(format!("delete: bad body {other:?}"))),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        match self.op(RequestOp::List)? {
            RespBody::Names(names) => Ok(names),
            other => Err(io::Error::other(format!("list: bad body {other:?}"))),
        }
    }

    fn describe(&self) -> String {
        let peer = self
            .transport
            .lock()
            .map(|t| t.describe())
            .unwrap_or_else(|_| "poisoned".to_string());
        format!("remote({peer})")
    }

    fn head(&self, name: &str) -> io::Result<u64> {
        match self.op(RequestOp::Head {
            name: name.to_string(),
        })? {
            RespBody::Gen(g) => Ok(g),
            other => Err(io::Error::other(format!("head: bad body {other:?}"))),
        }
    }

    fn put_if(&self, name: &str, expected: u64, bytes: &[u8]) -> io::Result<u64> {
        match self.op(RequestOp::PutIf {
            name: name.to_string(),
            expected,
            bytes: bytes.to_vec(),
        })? {
            RespBody::Gen(g) => Ok(g),
            other => Err(io::Error::other(format!("put_if: bad body {other:?}"))),
        }
    }

    fn put_at(&self, name: &str, gen: u64, bytes: &[u8]) -> io::Result<()> {
        match self.op(RequestOp::PutAt {
            name: name.to_string(),
            gen,
            bytes: bytes.to_vec(),
        })? {
            RespBody::Unit => Ok(()),
            other => Err(io::Error::other(format!("put_at: bad body {other:?}"))),
        }
    }

    fn get_at(&self, name: &str, gen: u64) -> io::Result<Vec<u8>> {
        match self.op(RequestOp::GetAt {
            name: name.to_string(),
            gen,
        })? {
            RespBody::Bytes(b) => Ok(b),
            other => Err(io::Error::other(format!("get_at: bad body {other:?}"))),
        }
    }

    fn remote_totals(&self) -> Option<RemoteTotals> {
        let reconnects = self.transport.lock().map(|t| t.reconnects()).unwrap_or(0);
        Some(RemoteTotals {
            ops: self.ops.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            reconnects,
        })
    }
}

/// Deterministic in-memory transport: a server behind a faulty wire, all
/// time paid on a shared virtual clock through a connection state machine.
pub struct SimTransport {
    server: Arc<ObjectServer>,
    plan: WireFaultPlan,
    clock: Arc<Mutex<VirtualClock>>,
    conn: Connection,
    connected: bool,
    exchange_ix: u64,
    reconnects: u64,
    /// Response delivered by the most recent completed exchange; a
    /// reorder fault serves this instead of the fresh one.
    last_delivered: Option<Vec<u8>>,
}

impl fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimTransport")
            .field("exchange_ix", &self.exchange_ix)
            .field("reconnects", &self.reconnects)
            .finish_non_exhaustive()
    }
}

impl SimTransport {
    /// A transport to `server` over a wire governed by `plan`, with
    /// `rtt_ms` of simulated round-trip latency.
    pub fn new(
        server: Arc<ObjectServer>,
        plan: WireFaultPlan,
        clock: Arc<Mutex<VirtualClock>>,
        rtt_ms: u64,
    ) -> SimTransport {
        SimTransport {
            server,
            plan,
            clock,
            conn: Connection::new(rtt_ms),
            connected: false,
            exchange_ix: 0,
            reconnects: 0,
            last_delivered: None,
        }
    }

    /// Exchanges attempted so far (the wire-op count a torture sweep
    /// enumerates to place its forced faults).
    pub fn exchanges(&self) -> u64 {
        self.exchange_ix
    }

    fn pay(&self, ms: u64) {
        if let Ok(mut c) = self.clock.lock() {
            c.advance(ms);
        }
    }

    fn broken(&mut self, what: &str) -> io::Error {
        let _ = self.conn.reset();
        self.connected = false;
        io::Error::new(io::ErrorKind::BrokenPipe, format!("sim wire: {what}"))
    }
}

impl Transport for SimTransport {
    fn exchange(&mut self, frame: &[u8]) -> io::Result<Vec<u8>> {
        use bfu_net::WireFault;
        if !self.connected {
            self.conn = Connection::new(self.conn.rtt_ms());
            let rtt = self
                .conn
                .connect()
                .map_err(|e| io::Error::other(format!("sim connect: {e:?}")))?;
            self.pay(rtt);
            self.conn
                .established()
                .map_err(|e| io::Error::other(format!("sim establish: {e:?}")))?;
            self.connected = true;
            self.reconnects += 1;
        }
        let ix = self.exchange_ix;
        self.exchange_ix += 1;
        let fault = self.plan.outcome(ix);
        let send_ms = self
            .conn
            .request_sent(frame.len())
            .map_err(|e| io::Error::other(format!("sim send: {e:?}")))?;
        self.pay(send_ms);
        let deliver = |me: &mut SimTransport, resp: Vec<u8>| -> io::Result<Vec<u8>> {
            let recv_ms = me
                .conn
                .response_received(resp.len())
                .map_err(|e| io::Error::other(format!("sim recv: {e:?}")))?;
            me.pay(recv_ms);
            me.last_delivered = Some(resp.clone());
            Ok(resp)
        };
        match fault {
            Some((WireFault::DropRequest, _)) => {
                // Server never saw it.
                Err(self.broken("request dropped"))
            }
            Some((WireFault::DropResponse, _)) => {
                // Server executed; the answer evaporated.
                let _ = self.server.handle_frame(frame);
                Err(self.broken("response dropped"))
            }
            Some((WireFault::TruncateResponse, _)) => {
                let resp = self.server.handle_frame(frame);
                let keep = resp.len().saturating_sub(3).max(1);
                let truncated = resp[..keep].to_vec();
                // Damaged bytes still cross the wire and cost time, and a
                // stream that lost bytes is no longer frame-aligned.
                let recv_ms = self
                    .conn
                    .response_received(truncated.len())
                    .map_err(|e| io::Error::other(format!("sim recv: {e:?}")))?;
                self.pay(recv_ms);
                let _ = self.broken("response truncated");
                Ok(truncated)
            }
            Some((WireFault::Stall, ms)) => {
                self.pay(ms);
                let resp = self.server.handle_frame(frame);
                deliver(self, resp)
            }
            Some((WireFault::Duplicate, _)) => {
                // The request arrives twice; the server must dedupe.
                let _ = self.server.handle_frame(frame);
                let resp = self.server.handle_frame(frame);
                deliver(self, resp)
            }
            Some((WireFault::ReorderResponse, _)) => {
                let fresh = self.server.handle_frame(frame);
                match self.last_delivered.take() {
                    Some(stale) => {
                        // An earlier response surfaces instead; the fresh
                        // one becomes the next candidate for reordering.
                        let recv_ms = self
                            .conn
                            .response_received(stale.len())
                            .map_err(|e| io::Error::other(format!("sim recv: {e:?}")))?;
                        self.pay(recv_ms);
                        self.last_delivered = Some(fresh);
                        Ok(stale)
                    }
                    // Nothing earlier to reorder with: delivered as-is.
                    None => deliver(self, fresh),
                }
            }
            None => {
                let resp = self.server.handle_frame(frame);
                deliver(self, resp)
            }
        }
    }

    fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn describe(&self) -> String {
        format!("sim:{}", self.server.describe_inner())
    }
}

/// Real loopback TCP transport for the cross-process fabric.
#[derive(Debug)]
pub struct TcpTransport {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    reconnects: u64,
}

impl TcpTransport {
    /// A transport that dials `addr` lazily and redials after breakage.
    pub fn new(addr: SocketAddr) -> TcpTransport {
        TcpTransport {
            addr,
            stream: None,
            reconnects: 0,
        }
    }
}

impl Transport for TcpTransport {
    fn exchange(&mut self, frame: &[u8]) -> io::Result<Vec<u8>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            self.stream = Some(stream);
            self.reconnects += 1;
        }
        let result = (|| {
            let stream = self
                .stream
                .as_mut()
                .ok_or_else(|| io::Error::other("no stream"))?;
            stream.write_all(frame)?;
            read_frame(stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::ConnectionReset, "server closed mid-exchange")
            })
        })();
        if result.is_err() {
            // Whatever state the stream is in, it is not frame-aligned.
            self.stream = None;
        }
        result
    }

    fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn describe(&self) -> String {
        format!("tcp:{}", self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::DirObjectStore;
    use bfu_net::WireFault;
    use bfu_store::as_cas_conflict;

    fn rig(
        tag: &str,
        plan: WireFaultPlan,
    ) -> (
        RemoteObjectStore,
        Arc<ObjectServer>,
        Arc<Mutex<VirtualClock>>,
    ) {
        let dir = std::env::temp_dir().join(format!("bfu-remote-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirObjectStore::open(dir).expect("open dir store");
        let server = Arc::new(ObjectServer::new(Arc::new(store)));
        let clock = Arc::new(Mutex::new(VirtualClock::new()));
        let transport = SimTransport::new(Arc::clone(&server), plan, Arc::clone(&clock), 20);
        let client = RemoteObjectStore::new(
            1,
            Box::new(transport),
            RemoteClock::Virtual(Arc::clone(&clock)),
            RemotePolicy::default(),
        );
        (client, server, clock)
    }

    #[test]
    fn healthy_wire_full_contract() {
        let (client, _server, clock) = rig("healthy", WireFaultPlan::none());
        client.put("a", b"one").expect("put");
        assert_eq!(client.get("a").expect("get"), b"one");
        assert_eq!(client.list().expect("list"), vec!["a".to_string()]);
        let g = client.head("a").expect("head");
        let g2 = client.put_if("a", g, b"two").expect("cas");
        assert!(g2 > g);
        assert_eq!(client.get("a").expect("get"), b"two");
        client.delete("a").expect("delete");
        assert_eq!(
            client.get("a").expect_err("gone").kind(),
            io::ErrorKind::NotFound
        );
        // Latency was paid on the virtual clock, not the wall clock.
        assert!(clock.lock().expect("clock").now().millis() > 0);
        let totals = client.remote_totals().expect("totals");
        assert_eq!(totals.retries, 0);
        assert_eq!(totals.reconnects, 1);
        assert!(totals.ops >= 7);
    }

    #[test]
    fn every_fault_class_is_survived_per_op() {
        for fault in WireFault::ALL {
            for at in 0..3u64 {
                let plan = WireFaultPlan::none().with_fault_at(at, fault);
                let (client, _server, _clock) = rig(&format!("fault-{fault:?}-{at}"), plan);
                client.put("k", b"v").expect("put survives");
                assert_eq!(
                    client
                        .get("k")
                        .unwrap_or_else(|e| panic!("get after {fault:?}@{at}: {e}")),
                    b"v"
                );
            }
        }
    }

    #[test]
    fn lost_response_on_cas_is_not_a_self_conflict() {
        // The canonical retry hazard: the CAS applies, the response drops,
        // the retry must win via server replay, not lose to itself.
        let plan = WireFaultPlan::none().with_fault_at(0, WireFault::DropResponse);
        let (client, server, _clock) = rig("cas-lost-resp", plan);
        let g = client
            .put_if("COORD", 0, b"leader")
            .expect("cas wins via replay");
        assert!(g > 0);
        assert_eq!(server.replayed(), 1, "the win was replayed, not re-run");
        let totals = client.remote_totals().expect("totals");
        assert_eq!(totals.retries, 1);
        assert_eq!(totals.reconnects, 2, "broken stream forced a redial");
    }

    #[test]
    fn fatal_errors_do_not_retry() {
        let (client, _server, _clock) = rig("fatal", WireFaultPlan::none());
        assert_eq!(
            client.get("missing").expect_err("absent").kind(),
            io::ErrorKind::NotFound
        );
        client.put("c", b"x").expect("put");
        let err = client.put_if("c", 999, b"y").expect_err("stale cas");
        let conflict = as_cas_conflict(&err).expect("typed conflict");
        assert_eq!(conflict.expected, 999);
        let totals = client.remote_totals().expect("totals");
        assert_eq!(totals.retries, 0, "fatal classes must not burn retries");
    }

    #[test]
    fn chaos_wire_converges_deterministically() {
        let run = |seed: u64| {
            let (client, _server, clock) =
                rig(&format!("chaos-{seed}"), WireFaultPlan::chaos(seed));
            for i in 0..30 {
                let name = format!("obj{i:02}");
                client.put(&name, name.as_bytes()).expect("put under chaos");
            }
            let mut names = client.list().expect("list under chaos");
            names.sort();
            assert_eq!(names.len(), 30);
            let totals = client.remote_totals().expect("totals");
            let ms = clock.lock().expect("clock").now().millis();
            (names, totals, ms)
        };
        let (names_a, totals_a, ms_a) = run(11);
        let (names_b, totals_b, ms_b) = run(11);
        assert_eq!(names_a, names_b);
        assert_eq!(totals_a, totals_b, "same seed, same effort");
        assert_eq!(ms_a, ms_b, "same seed, same virtual duration");
        assert!(totals_a.retries > 0, "chaos plan must actually bite");
    }

    #[test]
    fn unreachable_wire_times_out_with_budget() {
        // A plan that drops every request: the client must give up with
        // TimedOut after max_attempts, having paid backoff on the clock.
        let plan = WireFaultPlan {
            drop_request_chance: 1.0,
            ..WireFaultPlan::none()
        };
        let (client, _server, clock) = rig("unreachable", plan);
        let err = client.get("x").expect_err("unreachable");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let paid = clock.lock().expect("clock").now().millis();
        assert!(paid > 0, "backoff must be paid from the clock");
        let totals = client.remote_totals().expect("totals");
        assert_eq!(
            totals.retries,
            u64::from(RemotePolicy::default().max_attempts) - 1
        );
    }

    /// Satellite regression: two clients retrying the same fault must not
    /// back off in lockstep. Same policy seed, same fault schedule, same
    /// rig shape — only the client id differs — and the total backoff each
    /// pays on its own virtual clock must diverge.
    #[test]
    fn retry_jitter_diverges_per_client() {
        let paid_by = |client_id: u64| {
            let dir = std::env::temp_dir().join(format!(
                "bfu-remote-{}-jitter-{client_id}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = DirObjectStore::open(dir).expect("open dir store");
            let server = Arc::new(ObjectServer::new(Arc::new(store)));
            let clock = Arc::new(Mutex::new(VirtualClock::new()));
            let plan = WireFaultPlan {
                drop_request_chance: 1.0,
                ..WireFaultPlan::none()
            };
            let transport = SimTransport::new(Arc::clone(&server), plan, Arc::clone(&clock), 20);
            let client = RemoteObjectStore::new(
                client_id,
                Box::new(transport),
                RemoteClock::Virtual(Arc::clone(&clock)),
                RemotePolicy::default(),
            );
            client.get("x").expect_err("wire drops everything");
            let guard = clock.lock().expect("clock");
            guard.now().millis()
        };
        let a = paid_by(1);
        let b = paid_by(2);
        assert_ne!(a, b, "clients 1 and 2 paid identical backoff schedules");
    }

    /// A transport that answers the first exchange with `ReplayEvicted`
    /// and forwards everything after to the real server.
    struct EvictFirstTransport {
        inner: SimTransport,
        evicted_once: bool,
    }

    impl fmt::Debug for EvictFirstTransport {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("EvictFirstTransport")
                .finish_non_exhaustive()
        }
    }

    impl Transport for EvictFirstTransport {
        fn exchange(&mut self, frame: &[u8]) -> io::Result<Vec<u8>> {
            if !self.evicted_once {
                self.evicted_once = true;
                let req = crate::wire::decode_request(unframe(frame).expect("frame"))
                    .expect("decode request");
                return Ok(crate::wire::encode_response(&crate::wire::Response {
                    client: req.client,
                    id: req.id,
                    body: Err(RemoteError::ReplayEvicted),
                }));
            }
            self.inner.exchange(frame)
        }

        fn reconnects(&self) -> u64 {
            self.inner.reconnects()
        }

        fn describe(&self) -> String {
            self.inner.describe()
        }
    }

    fn evict_first_rig(tag: &str) -> (RemoteObjectStore, Arc<ObjectServer>) {
        let dir = std::env::temp_dir().join(format!("bfu-remote-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirObjectStore::open(dir).expect("open dir store");
        let server = Arc::new(ObjectServer::new(Arc::new(store)));
        let clock = Arc::new(Mutex::new(VirtualClock::new()));
        let inner = SimTransport::new(
            Arc::clone(&server),
            WireFaultPlan::none(),
            Arc::clone(&clock),
            20,
        );
        let client = RemoteObjectStore::new(
            1,
            Box::new(EvictFirstTransport {
                inner,
                evicted_once: false,
            }),
            RemoteClock::Virtual(clock),
            RemotePolicy::default(),
        );
        (client, server)
    }

    /// Satellite: a put whose id fell out of the replay window is re-issued
    /// under a fresh id (idempotent by content) and converges.
    #[test]
    fn evicted_put_reissues_under_fresh_id() {
        let (client, _server) = evict_first_rig("evict-put");
        client.put("k", b"v").expect("put converges via fresh id");
        assert_eq!(client.get("k").expect("get"), b"v");
        let totals = client.remote_totals().expect("totals");
        assert_eq!(totals.retries, 1, "the re-issue is counted as a retry");
    }

    /// Satellite: a CAS whose id fell out of the replay window must surface
    /// the typed eviction error — its outcome under the old id is
    /// unknowable, so the client must not guess.
    #[test]
    fn evicted_cas_surfaces_typed_error() {
        let (client, server) = evict_first_rig("evict-cas");
        let err = client
            .put_if("seat", 0, b"claim")
            .expect_err("eviction must surface");
        assert!(
            crate::wire::is_replay_evicted(&err),
            "error must carry the typed eviction class: {err:?}"
        );
        assert_eq!(server.replayed(), 0);
    }

    #[test]
    fn tcp_transport_end_to_end_with_reconnect() {
        let dir = std::env::temp_dir().join(format!("bfu-remote-{}-tcp", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirObjectStore::open(dir).expect("open dir store");
        let server = Arc::new(ObjectServer::new(Arc::new(store)));
        let handle = crate::server::spawn_tcp_server(Arc::clone(&server)).expect("spawn");
        let client = RemoteObjectStore::new(
            5,
            Box::new(TcpTransport::new(handle.addr)),
            RemoteClock::Wall,
            RemotePolicy::default(),
        );
        client.put("t", b"tcp").expect("put");
        assert_eq!(client.get("t").expect("get"), b"tcp");
        let g = client.head("t").expect("head");
        assert!(client.put_if("t", g, b"tcp2").expect("cas") > g);
        let totals = client.remote_totals().expect("totals");
        assert_eq!(totals.reconnects, 1);
        drop(handle);
    }
}
