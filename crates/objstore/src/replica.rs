//! Client-side replication over N object stores: quorum writes, quorum
//! reads with read-repair, CAS routed through a per-object primary, and an
//! anti-entropy scrub for crashed-and-rejoined replicas.
//!
//! ## Lockstep generations
//!
//! The whole design rests on one invariant: **every replica stores a given
//! `(name, generation)` with identical content**. Mutations are
//! linearized at one *acting* replica with a native `put_if` (which lands
//! at exactly `expected + 1` in every store implementation), then copied
//! to the other replicas at that exact generation with
//! [`ObjectStore::put_at`]. Because a generation's content is immutable,
//! [`ObjectStore::get_at`] is a *verifiable read*: any replica serving
//! generation `g` serves *the* content of `g`, so reads are immune to the
//! staleness plain `get` is allowed — the only question a read has to
//! quorum-settle is "what is the newest generation", which per-replica
//! `head` answers strongly consistently.
//!
//! ## Quorum math
//!
//! With N replicas, write quorum W and read quorum R, any write
//! acknowledged at W replicas intersects any read that probes R replicas
//! whenever `W + R > N` — the default ([`ReplicaPolicy::majority`]) uses
//! `W = R = N/2 + 1`, so N = 3 tolerates any single replica being down
//! for both reads and writes. `R = 1` is a legal configuration that
//! trades the overlap guarantee for read cheapness; the adapter's bounded
//! visibility retries (and `visibility_failures` counter) are the safety
//! net such a configuration leans on, and [`ReplicatedObjectStore::scrub`]
//! is what heals it.
//!
//! ## CAS primary routing
//!
//! `put_if` fencing only works if concurrent CAS claims collide at *one*
//! linearization point. Every name has a deterministic primary
//! (`fnv64(name) % N`); all mutations of that name are linearized at the
//! first **reachable** replica in the rotation starting at the primary.
//! When the primary is unreachable the next replica in the rotation is
//! *promoted* (counted in [`ReplicaTotals::cas_promotions`]), after the
//! probe has quorum-confirmed that at least W replicas are reachable and
//! the acting replica has been caught up to the highest generation the
//! quorum has seen — a zombie claim against a stale acting replica is
//! fenced by the generation compare exactly like a zombie coordinator.
//! This promotion rule is safe when the primary is unreachable for *all*
//! clients (a crashed or fully-partitioned replica — the model the
//! torture sweeps drive); under an asymmetric partition where two clients
//! disagree about which replicas are reachable, two acting replicas could
//! briefly coexist and the later fan-out would surface the losing claim
//! as a conflict rather than silently dropping it. See DESIGN.md.
//!
//! ## What is *not* supported
//!
//! Deleting a name and then re-creating it is outside the contract: a
//! replica that slept through the delete still holds the old (higher)
//! generation, which would win quorum reads over the re-created object
//! and be resurrected by anti-entropy. The fabric's workload never does
//! this — staging objects are immutable and epoch-named, and the mutable
//! singletons (manifest, lease table, `COORD`) are never deleted.

use crate::object::{ObjectStore, RemoteTotals, ReplicaTotals};
use bfu_store::as_cas_conflict;
use bfu_util::fnv64;
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Quorum configuration for a [`ReplicatedObjectStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaPolicy {
    /// Replicas that must acknowledge a mutation before it is acked.
    pub write_quorum: usize,
    /// Replicas whose heads a read consults before trusting a generation.
    pub read_quorum: usize,
}

impl ReplicaPolicy {
    /// Majority quorums: `W = R = n/2 + 1`. For n = 3 this tolerates any
    /// single replica failure with reads always overlapping writes.
    pub fn majority(n: usize) -> ReplicaPolicy {
        ReplicaPolicy {
            write_quorum: n / 2 + 1,
            read_quorum: n / 2 + 1,
        }
    }
}

/// What one anti-entropy pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Names examined (union of every reachable replica's listing).
    pub names: u64,
    /// `(name, generation)` copies pushed to lagging replicas.
    pub copies: u64,
    /// Replica ops that failed during the pass (skipped, not fatal).
    pub errors: u64,
}

/// A replication front over N inner stores, itself an [`ObjectStore`].
pub struct ReplicatedObjectStore {
    replicas: Vec<Arc<dyn ObjectStore>>,
    policy: ReplicaPolicy,
    quorum_writes: AtomicU64,
    quorum_reads: AtomicU64,
    read_repairs: AtomicU64,
    replica_errors: AtomicU64,
    cas_promotions: AtomicU64,
    anti_entropy_copies: AtomicU64,
}

impl fmt::Debug for ReplicatedObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicatedObjectStore")
            .field("replicas", &self.replicas.len())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

/// One replica's answer to a head probe.
#[derive(Debug, Clone, Copy)]
struct Probe {
    /// Replica index (into the constructor's vec).
    ix: usize,
    /// Newest generation this replica holds; 0 = name absent.
    gen: u64,
}

/// Whether an error means "this replica is unreachable / failing" rather
/// than a semantic answer about the object.
fn is_replica_failure(err: &io::Error) -> bool {
    !matches!(
        err.kind(),
        io::ErrorKind::NotFound | io::ErrorKind::InvalidInput
    ) && as_cas_conflict(err).is_none()
}

fn quorum_lost(what: &str, have: usize, need: usize, n: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::TimedOut,
        format!("replica quorum lost: {what} reached {have} of {n} replicas, need {need}"),
    )
}

/// Attempts at the full mutation protocol before conceding. Each retry
/// re-probes, so a replica that died mid-protocol is excluded on the next
/// pass; one spare attempt beyond the replica count covers a die-then-
/// retry on every member.
const PROTOCOL_ATTEMPTS_SLACK: usize = 1;

impl ReplicatedObjectStore {
    /// A replicated front over `replicas` with quorums from `policy`.
    pub fn new(
        replicas: Vec<Arc<dyn ObjectStore>>,
        policy: ReplicaPolicy,
    ) -> io::Result<ReplicatedObjectStore> {
        let n = replicas.len();
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "replicated store needs at least one replica",
            ));
        }
        if policy.write_quorum == 0
            || policy.read_quorum == 0
            || policy.write_quorum > n
            || policy.read_quorum > n
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "quorums W={} R={} invalid for {} replicas",
                    policy.write_quorum, policy.read_quorum, n
                ),
            ));
        }
        Ok(ReplicatedObjectStore {
            replicas,
            policy,
            quorum_writes: AtomicU64::new(0),
            quorum_reads: AtomicU64::new(0),
            read_repairs: AtomicU64::new(0),
            replica_errors: AtomicU64::new(0),
            cas_promotions: AtomicU64::new(0),
            anti_entropy_copies: AtomicU64::new(0),
        })
    }

    /// Majority-quorum front over `replicas`.
    pub fn majority(replicas: Vec<Arc<dyn ObjectStore>>) -> io::Result<ReplicatedObjectStore> {
        let policy = ReplicaPolicy::majority(replicas.len());
        ReplicatedObjectStore::new(replicas, policy)
    }

    fn n(&self) -> usize {
        self.replicas.len()
    }

    /// The deterministic primary replica for `name`.
    fn primary_of(&self, name: &str) -> usize {
        (fnv64(name.as_bytes()) % self.n() as u64) as usize
    }

    /// Replica indices in the mutation/read rotation for `name`: the
    /// primary first, then the rest in ring order.
    fn rotation(&self, name: &str) -> impl Iterator<Item = usize> + '_ {
        let n = self.n();
        let primary = self.primary_of(name);
        (0..n).map(move |k| (primary + k) % n)
    }

    fn count_error(&self) {
        self.replica_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Probe up to `want` reachable replicas' heads for `name`, in
    /// rotation order. `NotFound` is a reachable answer (generation 0);
    /// anything else marks the replica unreachable for this pass.
    fn probe_heads(&self, name: &str, want: usize) -> Vec<Probe> {
        let mut probes = Vec::new();
        for ix in self.rotation(name) {
            if probes.len() >= want {
                break;
            }
            match self.replicas[ix].head(name) {
                Ok(gen) => probes.push(Probe { ix, gen }),
                Err(e) if e.kind() == io::ErrorKind::NotFound => probes.push(Probe { ix, gen: 0 }),
                Err(_) => self.count_error(),
            }
        }
        probes
    }

    /// Fetch the content of `(name, gen)` from any probed replica that
    /// holds it (they all serve identical bytes — verifiable read).
    fn fetch_at(&self, name: &str, gen: u64, probes: &[Probe]) -> io::Result<Vec<u8>> {
        let mut last_err = None;
        for p in probes.iter().filter(|p| p.gen >= gen) {
            match self.replicas[p.ix].get_at(name, gen) {
                Ok(bytes) => return Ok(bytes),
                Err(e) => {
                    if is_replica_failure(&e) {
                        self.count_error();
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| quorum_lost("generation fetch", 0, 1, self.n())))
    }

    /// Bring the acting replica's head up to `target` before it
    /// linearizes a mutation, copying content from whichever probed
    /// replica holds it.
    fn catch_up(
        &self,
        name: &str,
        acting: usize,
        have: u64,
        target: u64,
        probes: &[Probe],
    ) -> io::Result<()> {
        if have >= target {
            return Ok(());
        }
        let bytes = self.fetch_at(name, target, probes)?;
        self.replicas[acting].put_at(name, target, &bytes)
    }

    /// One full mutation pass: probe, quorum-confirm, pick the acting
    /// replica, catch it up, linearize with `commit`, fan the committed
    /// generation out. Returns the committed generation.
    ///
    /// `expected`: `Some(g)` for a caller CAS (compare against the quorum
    /// generation *before* touching the acting replica), `None` for a
    /// plain put (write over whatever the quorum generation is).
    fn mutate(
        &self,
        name: &str,
        expected: Option<u64>,
        bytes: &[u8],
        is_cas: bool,
    ) -> io::Result<u64> {
        let w = self.policy.write_quorum;
        let mut last_err: Option<io::Error> = None;
        for _ in 0..self.n() + PROTOCOL_ATTEMPTS_SLACK {
            // Probe every replica: the write fans out to all reachable
            // members, so there is nothing to save by stopping early.
            let probes = self.probe_heads(name, self.n());
            if probes.len() < w {
                return Err(quorum_lost("write probe", probes.len(), w, self.n()));
            }
            let quorum_gen = probes.iter().map(|p| p.gen).max().unwrap_or(0);
            if let Some(exp) = expected {
                if exp != quorum_gen {
                    return Err(bfu_store::cas_conflict_error(exp, quorum_gen));
                }
            }
            // Acting replica: first reachable in rotation. Reachable-first
            // means a dead primary is skipped — a promotion, for CAS.
            let acting = probes[0].ix;
            if is_cas && acting != self.primary_of(name) {
                self.cas_promotions.fetch_add(1, Ordering::Relaxed);
            }
            if let Err(e) = self.catch_up(name, acting, probes[0].gen, quorum_gen, &probes) {
                self.count_error();
                last_err = Some(e);
                continue; // re-probe: the acting replica may have died
            }
            let committed = match self.replicas[acting].put_if(name, quorum_gen, bytes) {
                Ok(g) => g,
                Err(e) if as_cas_conflict(&e).is_some() => {
                    if expected.is_some() {
                        // A real lost race: someone moved the generation
                        // between our probe and our claim.
                        return Err(e);
                    }
                    // Plain put racing another writer: take the new
                    // generation as the base and go around.
                    last_err = Some(e);
                    continue;
                }
                Err(e) => {
                    self.count_error();
                    last_err = Some(e);
                    continue; // acting replica failed: re-probe, next pass promotes
                }
            };
            // Fan out to every other reachable replica at the exact
            // committed generation; each success is one more ack.
            let mut acks = 1usize;
            for p in probes.iter().filter(|p| p.ix != acting) {
                match self.replicas[p.ix].put_at(name, committed, bytes) {
                    Ok(()) => acks += 1,
                    Err(_) => self.count_error(),
                }
            }
            if acks < w {
                // Committed at the acting replica but under-replicated:
                // the write is durable there and may win later quorum
                // reads, but we cannot acknowledge it at quorum. Surface a
                // retryable failure; anti-entropy will converge the set.
                return Err(quorum_lost("write fan-out", acks, w, self.n()));
            }
            self.quorum_writes.fetch_add(1, Ordering::Relaxed);
            return Ok(committed);
        }
        Err(last_err.unwrap_or_else(|| quorum_lost("write", 0, w, self.n())))
    }

    /// Anti-entropy: diff every replica's `(name, head)` view and copy the
    /// newest generation of each name to every reachable replica that lags
    /// it — the catch-up path for a replica that crashed and rejoined.
    pub fn scrub(&self) -> io::Result<ScrubReport> {
        let mut report = ScrubReport::default();
        let mut names: BTreeSet<String> = BTreeSet::new();
        let mut reachable_lists = 0usize;
        for r in &self.replicas {
            match r.list() {
                Ok(l) => {
                    reachable_lists += 1;
                    names.extend(l);
                }
                Err(_) => {
                    report.errors += 1;
                    self.count_error();
                }
            }
        }
        if reachable_lists == 0 {
            return Err(quorum_lost("scrub listing", 0, 1, self.n()));
        }
        for name in names {
            report.names += 1;
            let probes = self.probe_heads(&name, self.n());
            let newest = probes.iter().map(|p| p.gen).max().unwrap_or(0);
            if newest == 0 {
                continue;
            }
            let bytes = match self.fetch_at(&name, newest, &probes) {
                Ok(b) => b,
                Err(_) => {
                    report.errors += 1;
                    continue;
                }
            };
            for p in probes.iter().filter(|p| p.gen < newest) {
                match self.replicas[p.ix].put_at(&name, newest, &bytes) {
                    Ok(()) => {
                        report.copies += 1;
                        self.anti_entropy_copies.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        report.errors += 1;
                        self.count_error();
                    }
                }
            }
        }
        Ok(report)
    }
}

impl ObjectStore for ReplicatedObjectStore {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.mutate(name, None, bytes, false).map(|_| ())
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        let r = self.policy.read_quorum;
        let mut last_err: Option<io::Error> = None;
        for _ in 0..self.n() + PROTOCOL_ATTEMPTS_SLACK {
            let probes = self.probe_heads(name, r);
            if probes.len() < r {
                return Err(quorum_lost("read probe", probes.len(), r, self.n()));
            }
            let newest = probes.iter().map(|p| p.gen).max().unwrap_or(0);
            if newest == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("object {name:?} not found at read quorum"),
                ));
            }
            let bytes = match self.fetch_at(name, newest, &probes) {
                Ok(b) => b,
                Err(e) => {
                    last_err = Some(e);
                    continue; // the holder died between probe and fetch
                }
            };
            // Read-repair: push the winning generation to every probed
            // replica that lags it, inline, so one stale read heals the
            // staleness it observed.
            for p in probes.iter().filter(|p| p.gen < newest) {
                match self.replicas[p.ix].put_at(name, newest, &bytes) {
                    Ok(()) => {
                        self.read_repairs.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => self.count_error(),
                }
            }
            self.quorum_reads.fetch_add(1, Ordering::Relaxed);
            return Ok(bytes);
        }
        Err(last_err.unwrap_or_else(|| quorum_lost("read", 0, r, self.n())))
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        // Deletes fan out to every replica; a replica that never saw the
        // name answers NotFound, which still counts as an acknowledgement
        // (the name is as-deleted there). Only if *every* reachable
        // replica answers NotFound was the name truly absent.
        let w = self.policy.write_quorum;
        let mut acks = 0usize;
        let mut existed = false;
        for r in &self.replicas {
            match r.delete(name) {
                Ok(()) => {
                    acks += 1;
                    existed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => acks += 1,
                Err(_) => self.count_error(),
            }
        }
        if acks < w {
            return Err(quorum_lost("delete", acks, w, self.n()));
        }
        if !existed {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("object {name:?} not found on any replica"),
            ));
        }
        self.quorum_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        // Union over every reachable replica: a name acked at W is listed
        // by at least one reachable member whenever at most N - W are
        // down. Order is unspecified by contract; consumers sort.
        let mut names: BTreeSet<String> = BTreeSet::new();
        let mut reachable = 0usize;
        for r in &self.replicas {
            match r.list() {
                Ok(l) => {
                    reachable += 1;
                    names.extend(l);
                }
                Err(_) => self.count_error(),
            }
        }
        if reachable == 0 {
            return Err(quorum_lost("list", 0, 1, self.n()));
        }
        Ok(names.into_iter().collect())
    }

    fn describe(&self) -> String {
        let inner = self
            .replicas
            .first()
            .map(|r| r.describe())
            .unwrap_or_default();
        format!(
            "replicated(n={},w={},r={};{inner},..)",
            self.n(),
            self.policy.write_quorum,
            self.policy.read_quorum
        )
    }

    fn head(&self, name: &str) -> io::Result<u64> {
        let r = self.policy.read_quorum;
        let probes = self.probe_heads(name, r);
        if probes.len() < r {
            return Err(quorum_lost("head probe", probes.len(), r, self.n()));
        }
        self.quorum_reads.fetch_add(1, Ordering::Relaxed);
        match probes.iter().map(|p| p.gen).max().unwrap_or(0) {
            0 => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("object {name:?} not found at read quorum"),
            )),
            gen => Ok(gen),
        }
    }

    fn put_if(&self, name: &str, expected: u64, bytes: &[u8]) -> io::Result<u64> {
        self.mutate(name, Some(expected), bytes, true)
    }

    fn remote_totals(&self) -> Option<RemoteTotals> {
        let mut total: Option<RemoteTotals> = None;
        for r in &self.replicas {
            if let Some(t) = r.remote_totals() {
                let agg = total.get_or_insert_with(RemoteTotals::default);
                agg.ops += t.ops;
                agg.retries += t.retries;
                agg.reconnects += t.reconnects;
            }
        }
        total
    }

    fn replica_totals(&self) -> Option<ReplicaTotals> {
        Some(ReplicaTotals {
            replicas: self.n() as u64,
            quorum_writes: self.quorum_writes.load(Ordering::Relaxed),
            quorum_reads: self.quorum_reads.load(Ordering::Relaxed),
            read_repairs: self.read_repairs.load(Ordering::Relaxed),
            replica_errors: self.replica_errors.load(Ordering::Relaxed),
            cas_promotions: self.cas_promotions.load(Ordering::Relaxed),
            anti_entropy_copies: self.anti_entropy_copies.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ObjFaultPlan, SimObjectStore};

    fn sims(n: usize) -> (Vec<Arc<SimObjectStore>>, ReplicatedObjectStore) {
        let sims: Vec<Arc<SimObjectStore>> = (0..n)
            .map(|_| Arc::new(SimObjectStore::new(ObjFaultPlan::none())))
            .collect();
        let replicas: Vec<Arc<dyn ObjectStore>> = sims
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn ObjectStore>)
            .collect();
        let rep = ReplicatedObjectStore::majority(replicas).expect("construct");
        (sims, rep)
    }

    #[test]
    fn full_contract_over_healthy_replicas() {
        let (sims, rep) = sims(3);
        rep.put("a", b"one").expect("put");
        assert_eq!(rep.get("a").expect("get"), b"one");
        rep.put("a", b"two").expect("put");
        assert_eq!(rep.get("a").expect("get"), b"two");
        assert_eq!(rep.list().expect("list"), vec!["a".to_string()]);
        let g = rep.head("a").expect("head");
        let g2 = rep.put_if("a", g, b"three").expect("cas");
        assert!(g2 > g);
        rep.delete("a").expect("delete");
        assert_eq!(
            rep.get("a").expect_err("gone").kind(),
            io::ErrorKind::NotFound
        );
        // Every replica converged on every step (W = N here in effect:
        // all three were reachable).
        for s in &sims {
            assert_eq!(
                s.get("a").expect_err("deleted everywhere").kind(),
                io::ErrorKind::NotFound
            );
        }
        let t = rep.replica_totals().expect("totals");
        assert_eq!(t.replicas, 3);
        assert!(t.quorum_writes >= 4);
        assert!(t.quorum_reads >= 3);
        assert_eq!(t.cas_promotions, 0);
    }

    #[test]
    fn lockstep_generations_across_replicas() {
        let (sims, rep) = sims(3);
        rep.put("obj", b"v1").expect("put");
        rep.put("obj", b"v2").expect("put");
        let g = rep.head("obj").expect("head");
        for s in &sims {
            assert_eq!(s.head("obj").expect("replica head"), g, "lockstep");
            assert_eq!(s.get_at("obj", g).expect("replica get_at"), b"v2");
        }
    }

    #[test]
    fn survives_any_single_dead_replica() {
        for dead in 0..3usize {
            let sims: Vec<Arc<SimObjectStore>> = (0..3)
                .map(|i| {
                    let plan = if i == dead {
                        ObjFaultPlan::none().with_crash_at(0)
                    } else {
                        ObjFaultPlan::none()
                    };
                    Arc::new(SimObjectStore::new(plan))
                })
                .collect();
            let replicas: Vec<Arc<dyn ObjectStore>> = sims
                .iter()
                .map(|s| Arc::clone(s) as Arc<dyn ObjectStore>)
                .collect();
            let rep = ReplicatedObjectStore::majority(replicas).expect("construct");
            rep.put("k", b"v").expect("put with one replica down");
            assert_eq!(rep.get("k").expect("get"), b"v");
            let g = rep.head("k").expect("head");
            let g2 = rep
                .put_if("k", g, b"v2")
                .expect("cas with one replica down");
            assert!(g2 > g);
            assert_eq!(rep.get("k").expect("get"), b"v2");
            rep.delete("k").expect("delete with one replica down");
            assert_eq!(
                rep.get("k").expect_err("gone").kind(),
                io::ErrorKind::NotFound
            );
        }
    }

    #[test]
    fn cas_promotion_when_primary_is_dead() {
        // Find a name whose primary is replica 0, kill replica 0 from the
        // start, and check the CAS still fences correctly via promotion.
        let name = (0..100)
            .map(|i| format!("seat{i}"))
            .find(|n| fnv64(n.as_bytes()).is_multiple_of(3))
            .expect("some name maps to replica 0");
        let sims: Vec<Arc<SimObjectStore>> = (0..3)
            .map(|i| {
                let plan = if i == 0 {
                    ObjFaultPlan::none().with_crash_at(0)
                } else {
                    ObjFaultPlan::none()
                };
                Arc::new(SimObjectStore::new(plan))
            })
            .collect();
        let replicas: Vec<Arc<dyn ObjectStore>> = sims
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn ObjectStore>)
            .collect();
        let rep = ReplicatedObjectStore::majority(replicas).expect("construct");
        let g1 = rep.put_if(&name, 0, b"claimant a").expect("promoted cas");
        let t = rep.replica_totals().expect("totals");
        assert!(t.cas_promotions >= 1, "the claim went through a promotion");
        // Fencing semantics survive the promotion: a stale claim loses.
        let err = rep.put_if(&name, 0, b"zombie").expect_err("fenced");
        assert!(as_cas_conflict(&err).is_some());
        let g2 = rep.put_if(&name, g1, b"claimant b").expect("fresh claim");
        assert!(g2 > g1);
    }

    #[test]
    fn read_repair_heals_a_lagging_replica() {
        let (sims, rep) = sims(3);
        rep.put("x", b"new").expect("put");
        // Manually wind one replica back by wiping it: a fresh sim that
        // knows nothing stands in for a rejoined empty replica.
        let stale = Arc::new(SimObjectStore::new(ObjFaultPlan::none()));
        let mut replicas: Vec<Arc<dyn ObjectStore>> = sims
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn ObjectStore>)
            .collect();
        replicas[0] = Arc::clone(&stale) as Arc<dyn ObjectStore>;
        let rep2 = ReplicatedObjectStore::new(
            replicas,
            ReplicaPolicy {
                write_quorum: 2,
                read_quorum: 3, // probe everyone so the stale member is seen
            },
        )
        .expect("construct");
        assert_eq!(rep2.get("x").expect("quorum read"), b"new");
        let t = rep2.replica_totals().expect("totals");
        assert!(t.read_repairs >= 1, "the stale replica was repaired");
        assert_eq!(
            stale
                .get_at("x", rep2.head("x").expect("head"))
                .expect("repaired"),
            b"new"
        );
    }

    #[test]
    fn anti_entropy_scrub_catches_up_a_rejoined_replica() {
        let (sims, rep) = sims(3);
        for i in 0..5 {
            rep.put(&format!("obj{i}"), format!("v{i}").as_bytes())
                .expect("put");
        }
        // Replica 0 "crashes and rejoins empty".
        let rejoined = Arc::new(SimObjectStore::new(ObjFaultPlan::none()));
        let mut replicas: Vec<Arc<dyn ObjectStore>> = sims
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn ObjectStore>)
            .collect();
        replicas[0] = Arc::clone(&rejoined) as Arc<dyn ObjectStore>;
        let rep2 = ReplicatedObjectStore::majority(replicas).expect("construct");
        let report = rep2.scrub().expect("scrub");
        assert_eq!(report.names, 5);
        assert!(
            report.copies >= 5,
            "every object was copied to the rejoiner"
        );
        for i in 0..5 {
            let name = format!("obj{i}");
            assert_eq!(
                rejoined
                    .get(&name)
                    .expect("rejoined replica has the object"),
                format!("v{i}").as_bytes()
            );
        }
        // A second pass finds nothing to do.
        let report2 = rep2.scrub().expect("scrub");
        assert_eq!(report2.copies, 0, "converged set needs no copies");
    }

    #[test]
    fn quorum_loss_is_a_typed_timeout() {
        // Two of three replicas dead: W = 2 is unreachable.
        let sims: Vec<Arc<SimObjectStore>> = (0..3)
            .map(|i| {
                let plan = if i > 0 {
                    ObjFaultPlan::none().with_crash_at(0)
                } else {
                    ObjFaultPlan::none()
                };
                Arc::new(SimObjectStore::new(plan))
            })
            .collect();
        let replicas: Vec<Arc<dyn ObjectStore>> = sims
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn ObjectStore>)
            .collect();
        let rep = ReplicatedObjectStore::majority(replicas).expect("construct");
        let err = rep.put("k", b"v").expect_err("no write quorum");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let err = rep.head("k").expect_err("no read quorum");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn stale_read_quorum_one_misses_then_scrub_heals() {
        // R = 1 probes only the primary; an empty rejoined primary serves
        // a stale NotFound that a scrub pass must heal.
        let name = (0..100)
            .map(|i| format!("n{i}"))
            .find(|n| fnv64(n.as_bytes()).is_multiple_of(3))
            .expect("some name maps to replica 0");
        let (sims, rep) = sims(3);
        rep.put(&name, b"data").expect("put");
        let rejoined = Arc::new(SimObjectStore::new(ObjFaultPlan::none()));
        let mut replicas: Vec<Arc<dyn ObjectStore>> = sims
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn ObjectStore>)
            .collect();
        replicas[0] = Arc::clone(&rejoined) as Arc<dyn ObjectStore>;
        let rep2 = ReplicatedObjectStore::new(
            replicas,
            ReplicaPolicy {
                write_quorum: 2,
                read_quorum: 1,
            },
        )
        .expect("construct");
        assert_eq!(
            rep2.get(&name)
                .expect_err("R=1 hits the empty primary")
                .kind(),
            io::ErrorKind::NotFound
        );
        rep2.scrub().expect("scrub");
        assert_eq!(rep2.get(&name).expect("healed"), b"data");
    }
}
