//! The object server: any [`ObjectStore`] served over the wire protocol.
//!
//! The core is sans-IO: [`ObjectServer::handle_frame`] maps one request
//! frame to one response frame, so the same server logic runs under the
//! deterministic simulated transport (torture tests) and behind real TCP
//! sockets ([`spawn_tcp_server`], used by the cross-process fabric).
//!
//! The server is where retried mutations become safe. A client that never
//! saw the response to a `put` cannot know whether the server applied it,
//! so it re-sends the same `(client, id)`. For mutating ops the server
//! records the response it sent under that key and *replays* it on a
//! re-send instead of re-executing — without this, a retried `put_if`
//! would collide with its own first attempt and report a conflict that
//! never happened.

use crate::object::ObjectStore;
use crate::wire::{
    decode_request, encode_response, frame_body_len, unframe, RemoteError, Request, RequestOp,
    RespBody, Response, FRAME_HEADER_LEN,
};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Replayed responses remembered per client. A client has at most a
/// handful of ops in flight (in practice one), so a small window is
/// plenty; the cap bounds memory across a long crawl.
pub const REPLAY_WINDOW: usize = 128;

/// Serves the wire protocol over any inner object store.
#[derive(Debug)]
pub struct ObjectServer {
    inner: Arc<dyn ObjectStore>,
    /// Recorded responses for mutating ops, keyed `(client, id)`.
    replay: Mutex<BTreeMap<(u64, u64), Vec<u8>>>,
    /// Per-client highest request id pruned out of the replay window. A
    /// mutation retried under an id at or below this floor cannot be
    /// deduplicated any more — the server refuses it typed
    /// ([`RemoteError::ReplayEvicted`]) instead of silently re-executing.
    evicted: Mutex<BTreeMap<u64, u64>>,
    served: std::sync::atomic::AtomicU64,
    replayed: std::sync::atomic::AtomicU64,
}

impl ObjectServer {
    /// A server fronting `inner`.
    pub fn new(inner: Arc<dyn ObjectStore>) -> ObjectServer {
        ObjectServer {
            inner,
            replay: Mutex::new(BTreeMap::new()),
            evicted: Mutex::new(BTreeMap::new()),
            served: std::sync::atomic::AtomicU64::new(0),
            replayed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Requests handled (including replays).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Requests answered from the idempotency cache.
    pub fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Description of the store being served, for client `describe()`.
    pub fn describe_inner(&self) -> String {
        self.inner.describe()
    }

    /// Handle one request frame, producing exactly one response frame.
    /// Never fails: unreadable requests get a `BadFrame` response with
    /// id 0, which the client's id check refuses to accept as an answer
    /// and retries.
    pub fn handle_frame(&self, frame_bytes: &[u8]) -> Vec<u8> {
        self.served.fetch_add(1, Ordering::Relaxed);
        let req = match unframe(frame_bytes).and_then(decode_request) {
            Ok(req) => req,
            Err(err) => {
                return encode_response(&Response {
                    client: 0,
                    id: 0,
                    body: Err(err),
                })
            }
        };
        let key = (req.client, req.id);
        if req.op.mutates() {
            if let Ok(replay) = self.replay.lock() {
                if let Some(recorded) = replay.get(&key) {
                    self.replayed.fetch_add(1, Ordering::Relaxed);
                    return recorded.clone();
                }
            }
            // Replay-cache miss: if this id was already pruned out of the
            // window, the original attempt may or may not have executed and
            // we can no longer replay its answer. Refuse typed rather than
            // re-execute — a re-executed CAS would conflict with its own
            // first attempt, a re-executed delete would report NotFound.
            // Client ids are monotone, so a genuinely new op is always
            // above the floor.
            if let Ok(evicted) = self.evicted.lock() {
                if evicted
                    .get(&req.client)
                    .is_some_and(|&floor| req.id <= floor)
                {
                    return encode_response(&Response {
                        client: req.client,
                        id: req.id,
                        body: Err(RemoteError::ReplayEvicted),
                    });
                }
            }
        }
        let resp = encode_response(&self.respond(&req));
        if req.op.mutates() {
            if let Ok(mut replay) = self.replay.lock() {
                replay.insert(key, resp.clone());
                // Prune this client's oldest entries; ids grow
                // monotonically so BTreeMap order is arrival order.
                let client_keys: Vec<_> = replay
                    .range((req.client, 0)..=(req.client, u64::MAX))
                    .map(|(k, _)| *k)
                    .collect();
                if client_keys.len() > REPLAY_WINDOW {
                    let pruned = &client_keys[..client_keys.len() - REPLAY_WINDOW];
                    for k in pruned {
                        replay.remove(k);
                    }
                    if let Some(&(_, max_pruned)) = pruned.last() {
                        if let Ok(mut evicted) = self.evicted.lock() {
                            let floor = evicted.entry(req.client).or_insert(0);
                            *floor = (*floor).max(max_pruned);
                        }
                    }
                }
            }
        }
        resp
    }

    fn respond(&self, req: &Request) -> Response {
        let body = match &req.op {
            RequestOp::Put { name, bytes } => self.inner.put(name, bytes).map(|()| RespBody::Unit),
            RequestOp::Get { name } => self.inner.get(name).map(RespBody::Bytes),
            RequestOp::Delete { name } => self.inner.delete(name).map(|()| RespBody::Unit),
            RequestOp::List => self.inner.list().map(RespBody::Names),
            RequestOp::Head { name } => self.inner.head(name).map(RespBody::Gen),
            RequestOp::PutIf {
                name,
                expected,
                bytes,
            } => self.inner.put_if(name, *expected, bytes).map(RespBody::Gen),
            RequestOp::PutAt { name, gen, bytes } => self
                .inner
                .put_at(name, *gen, bytes)
                .map(|()| RespBody::Unit),
            RequestOp::GetAt { name, gen } => self.inner.get_at(name, *gen).map(RespBody::Bytes),
        };
        Response {
            client: req.client,
            id: req.id,
            body: body.map_err(|e| RemoteError::from_io(&e)),
        }
    }
}

/// A running TCP front for an [`ObjectServer`]; dropping it (or calling
/// [`TcpServerHandle::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct TcpServerHandle {
    /// Address the server is listening on (loopback, ephemeral port).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServerHandle {
    /// Stop accepting and join the accept loop. Connection threads finish
    /// their current exchange and exit when their peer disconnects.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `server` on a fresh loopback TCP port, one thread per
/// connection, one request/response exchange per frame.
pub fn spawn_tcp_server(server: Arc<ObjectServer>) -> io::Result<TcpServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop_accept.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let server = Arc::clone(&server);
            let stop_conn = Arc::clone(&stop_accept);
            std::thread::spawn(move || serve_conn(stream, &server, &stop_conn));
        }
    });
    Ok(TcpServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn serve_conn(mut stream: TcpStream, server: &ObjectServer, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    while !stop.load(Ordering::SeqCst) {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean disconnect or damaged stream: either way this
            // connection is done; the client reconnects.
            Ok(None) | Err(_) => return,
        };
        let resp = server.handle_frame(&frame);
        if stream.write_all(&resp).is_err() {
            return;
        }
    }
}

/// Read one complete frame from a stream. `Ok(None)` is a clean EOF at a
/// frame boundary; a bad header or short body is an error (the stream can
/// no longer be trusted to be frame-aligned).
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        match reader.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let body_len =
        frame_body_len(&header).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body_len);
    frame.extend_from_slice(&header);
    frame.resize(FRAME_HEADER_LEN + body_len, 0);
    reader.read_exact(&mut frame[FRAME_HEADER_LEN..])?;
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::DirObjectStore;
    use crate::wire::{decode_response, encode_request};
    use bfu_store::as_cas_conflict;

    fn server_tagged(tag: &str) -> ObjectServer {
        let dir = std::env::temp_dir().join(format!("bfu-objsrv-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirObjectStore::open(dir).expect("open dir store");
        ObjectServer::new(Arc::new(store))
    }

    fn ask(server: &ObjectServer, client: u64, id: u64, op: RequestOp) -> Response {
        let req = encode_request(&Request { client, id, op });
        let resp = server.handle_frame(&req);
        decode_response(unframe(&resp).expect("frame")).expect("decode")
    }

    #[test]
    fn basic_ops_round_trip_through_server() {
        let srv = server_tagged("basic");
        let put = ask(
            &srv,
            1,
            1,
            RequestOp::Put {
                name: "a".into(),
                bytes: vec![1, 2],
            },
        );
        assert_eq!(put.body, Ok(RespBody::Unit));
        let get = ask(&srv, 1, 2, RequestOp::Get { name: "a".into() });
        assert_eq!(get.body, Ok(RespBody::Bytes(vec![1, 2])));
        let list = ask(&srv, 1, 3, RequestOp::List);
        assert_eq!(list.body, Ok(RespBody::Names(vec!["a".into()])));
        let missing = ask(
            &srv,
            1,
            4,
            RequestOp::Get {
                name: "nope".into(),
            },
        );
        assert_eq!(missing.body, Err(RemoteError::NotFound));
    }

    #[test]
    fn retried_mutation_replays_not_reexecutes() {
        let srv = server_tagged("replay");
        let first = ask(
            &srv,
            7,
            1,
            RequestOp::PutIf {
                name: "COORD".into(),
                expected: 0,
                bytes: vec![1],
            },
        );
        let Ok(RespBody::Gen(generation)) = first.body else {
            panic!("first cas-put should win: {first:?}");
        };
        // Same (client, id) again: the frame the server already sent,
        // byte for byte — not a CasConflict against our own write.
        let retry = ask(
            &srv,
            7,
            1,
            RequestOp::PutIf {
                name: "COORD".into(),
                expected: 0,
                bytes: vec![1],
            },
        );
        assert_eq!(retry.body, Ok(RespBody::Gen(generation)));
        assert_eq!(srv.replayed(), 1);
        // A *different* id is a genuinely new op and must conflict.
        let fresh = ask(
            &srv,
            7,
            2,
            RequestOp::PutIf {
                name: "COORD".into(),
                expected: 0,
                bytes: vec![2],
            },
        );
        assert_eq!(
            fresh.body,
            Err(RemoteError::CasConflict {
                expected: 0,
                found: generation
            })
        );
    }

    #[test]
    fn replay_cache_is_per_client() {
        let srv = server_tagged("perclient");
        // Two clients using the same id must not see each other's replays.
        let a = ask(
            &srv,
            1,
            1,
            RequestOp::PutIf {
                name: "c".into(),
                expected: 0,
                bytes: vec![1],
            },
        );
        assert!(a.body.is_ok());
        let b = ask(
            &srv,
            2,
            1,
            RequestOp::PutIf {
                name: "c".into(),
                expected: 0,
                bytes: vec![2],
            },
        );
        assert!(
            matches!(b.body, Err(RemoteError::CasConflict { .. })),
            "client 2's op must execute (and lose), not replay client 1's win: {b:?}"
        );
        assert_eq!(srv.replayed(), 0);
    }

    #[test]
    fn malformed_frame_gets_id_zero_badframe() {
        let srv = server_tagged("malformed");
        let resp = srv.handle_frame(b"not a frame at all");
        let decoded = decode_response(unframe(&resp).expect("frame")).expect("decode");
        assert_eq!(decoded.id, 0);
        assert_eq!(decoded.body, Err(RemoteError::BadFrame));
    }

    #[test]
    fn tcp_round_trip_over_real_sockets() {
        let srv = server_tagged("tcp");
        let mut handle = spawn_tcp_server(Arc::new(srv)).expect("spawn");
        let mut stream = TcpStream::connect(handle.addr).expect("connect");
        stream
            .write_all(&encode_request(&Request {
                client: 9,
                id: 1,
                op: RequestOp::Put {
                    name: "t".into(),
                    bytes: b"over tcp".to_vec(),
                },
            }))
            .expect("send");
        let frame = read_frame(&mut stream).expect("read").expect("some");
        let resp = decode_response(unframe(&frame).expect("frame")).expect("decode");
        assert_eq!(resp.body, Ok(RespBody::Unit));
        // Keep-alive: second exchange on the same stream.
        stream
            .write_all(&encode_request(&Request {
                client: 9,
                id: 2,
                op: RequestOp::Get { name: "t".into() },
            }))
            .expect("send");
        let frame = read_frame(&mut stream).expect("read").expect("some");
        let resp = decode_response(unframe(&frame).expect("frame")).expect("decode");
        assert_eq!(resp.body, Ok(RespBody::Bytes(b"over tcp".to_vec())));
        handle.shutdown();
    }

    #[test]
    fn exact_generation_ops_round_trip_through_server() {
        let srv = server_tagged("putat");
        let put = ask(
            &srv,
            3,
            1,
            RequestOp::PutAt {
                name: "r".into(),
                gen: 9,
                bytes: vec![7, 8],
            },
        );
        assert_eq!(put.body, Ok(RespBody::Unit));
        let get = ask(
            &srv,
            3,
            2,
            RequestOp::GetAt {
                name: "r".into(),
                gen: 9,
            },
        );
        assert_eq!(get.body, Ok(RespBody::Bytes(vec![7, 8])));
        let missing = ask(
            &srv,
            3,
            3,
            RequestOp::GetAt {
                name: "r".into(),
                gen: 8,
            },
        );
        assert_eq!(missing.body, Err(RemoteError::NotFound));
        // Idempotent re-send at the same generation (fresh id, same slot).
        let again = ask(
            &srv,
            3,
            4,
            RequestOp::PutAt {
                name: "r".into(),
                gen: 9,
                bytes: vec![7, 8],
            },
        );
        assert_eq!(again.body, Ok(RespBody::Unit));
        let head = ask(&srv, 3, 5, RequestOp::Head { name: "r".into() });
        assert_eq!(head.body, Ok(RespBody::Gen(9)));
    }

    #[test]
    fn evicted_replay_id_is_refused_not_reexecuted() {
        let srv = server_tagged("evict");
        // Id 1: a CAS that wins.
        let first = ask(
            &srv,
            5,
            1,
            RequestOp::PutIf {
                name: "seat".into(),
                expected: 0,
                bytes: vec![1],
            },
        );
        assert!(matches!(first.body, Ok(RespBody::Gen(_))));
        // Push id 1 out of the replay window with > REPLAY_WINDOW more
        // mutations.
        for i in 0..(REPLAY_WINDOW as u64 + 8) {
            let r = ask(
                &srv,
                5,
                2 + i,
                RequestOp::Put {
                    name: "filler".into(),
                    bytes: vec![i as u8],
                },
            );
            assert!(r.body.is_ok());
        }
        // Retrying id 1 now cannot be replayed; it must be refused typed,
        // not re-executed (re-execution would report a CasConflict against
        // its own first attempt).
        let retry = ask(
            &srv,
            5,
            1,
            RequestOp::PutIf {
                name: "seat".into(),
                expected: 0,
                bytes: vec![1],
            },
        );
        assert_eq!(retry.body, Err(RemoteError::ReplayEvicted));
        // The seat is untouched: still generation 1.
        let head = ask(
            &srv,
            5,
            9999,
            RequestOp::Head {
                name: "seat".into(),
            },
        );
        assert_eq!(head.body, Ok(RespBody::Gen(1)));
    }

    #[test]
    fn cas_conflict_payload_survives_server_hop() {
        let srv = server_tagged("cas");
        let _ = ask(
            &srv,
            1,
            1,
            RequestOp::Put {
                name: "x".into(),
                bytes: vec![0],
            },
        );
        let generation = match ask(&srv, 1, 2, RequestOp::Head { name: "x".into() }).body {
            Ok(RespBody::Gen(g)) => g,
            other => panic!("head failed: {other:?}"),
        };
        let lost = ask(
            &srv,
            1,
            3,
            RequestOp::PutIf {
                name: "x".into(),
                expected: generation + 5,
                bytes: vec![1],
            },
        );
        let err = lost.body.expect_err("stale expected must lose");
        let io_err = err.into_io();
        let c = as_cas_conflict(&io_err).expect("payload");
        assert_eq!(c.expected, generation + 5);
        assert_eq!(c.found, generation);
    }
}
