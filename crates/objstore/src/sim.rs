//! The deterministic partition injector — `FaultFs`'s object-store twin.
//!
//! Where `FaultFs` models a *local disk* dying (torn tails, lost directory
//! ops, power cuts), [`SimObjectStore`] models a *remote object store*
//! misbehaving while staying up: every acknowledged write is durable, but
//! visibility is allowed to lag, regress, and reorder. The seeded
//! [`ObjFaultPlan`] injects, per op:
//!
//! - **delayed visibility** — an acknowledged put (or delete) stays
//!   invisible for a bounded number of subsequent ops;
//! - **lost-then-replayed puts** — an acknowledged put vanishes and is
//!   replayed later by a dumb internal queue that assigns it a *fresh*
//!   version, so it can clobber newer content and resurrect deleted names
//!   (the nastiest real object-store failure mode; fencing epochs and
//!   first-record-wins dedup are what make it survivable);
//! - **read-your-writes violations** — a get serves the previous version
//!   (or nothing) even though the latest write was applied;
//! - **stale / unordered listings** — list() reflects an earlier namespace
//!   and is deterministically shuffled;
//! - **power cuts** — `crash_at` fails op `k` and every later op until
//!   [`SimObjectStore::power_cycle`], with all acknowledged effects flushed
//!   (acknowledged = durable, the object-store contract).
//!
//! `partition_at` forces the worst-case fault for whatever op happens to be
//! the `k`-th, which is what lets a torture sweep partition *every* backend
//! op of a schedule one at a time. All decisions are pure functions of
//! `(seed, label, op index)` via [`bfu_util::fault_fires`], so identical
//! runs produce identical fault schedules.

use crate::object::ObjectStore;
use bfu_util::{fault_choice, fault_fires, fnv64};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::sync::{Arc, Mutex};

const SALT_DELAY: u64 = 0xDE1A;
const SALT_REPLAY: u64 = 0x4EB1;
const SALT_RYW: u64 = 0x0A57;
const SALT_LIST: u64 = 0x115A;
const SALT_SPAN: u64 = 0x57A2;

/// Versions of one name kept for stale reads (older history is trimmed).
const HISTORY_CAP: usize = 8;

/// Seeded fault schedule for one [`SimObjectStore`].
#[derive(Debug, Clone, Copy)]
pub struct ObjFaultPlan {
    /// Master seed for every per-op fault decision.
    pub seed: u64,
    /// Power-cut at this global op ordinal: the op fails without effect and
    /// every later op fails until [`SimObjectStore::power_cycle`].
    pub crash_at: Option<u64>,
    /// Force the worst-case partition fault on this global op ordinal:
    /// puts/deletes get delayed visibility, gets violate read-your-writes,
    /// lists go stale and shuffled.
    pub partition_at: Option<u64>,
    /// Maximum ops an effect stays invisible (replays take up to twice
    /// this). Kept small so the adapter's bounded visibility retries always
    /// outlast a partition.
    pub partition_window: u64,
    /// Chance a put/delete's effect is delayed `1..=partition_window` ops.
    pub delayed_put_chance: f64,
    /// Chance a put is lost then replayed with a fresh version.
    pub lost_replay_chance: f64,
    /// Chance a get serves the previous version of the object.
    pub ryw_chance: f64,
    /// Chance a listing reflects an earlier namespace.
    pub stale_list_chance: f64,
    /// Deterministically shuffle every listing (stale ones always are).
    pub shuffle_lists: bool,
}

impl Default for ObjFaultPlan {
    fn default() -> ObjFaultPlan {
        ObjFaultPlan::none()
    }
}

impl ObjFaultPlan {
    /// No faults: a perfectly consistent in-memory object store.
    pub fn none() -> ObjFaultPlan {
        ObjFaultPlan {
            seed: 0,
            crash_at: None,
            partition_at: None,
            partition_window: 4,
            delayed_put_chance: 0.0,
            lost_replay_chance: 0.0,
            ryw_chance: 0.0,
            stale_list_chance: 0.0,
            shuffle_lists: false,
        }
    }

    /// Every partition class active at once, seeded — the chaos preset.
    pub fn chaos(seed: u64) -> ObjFaultPlan {
        ObjFaultPlan {
            seed,
            delayed_put_chance: 0.15,
            lost_replay_chance: 0.08,
            ryw_chance: 0.15,
            stale_list_chance: 0.20,
            shuffle_lists: true,
            ..ObjFaultPlan::none()
        }
    }

    /// This plan, power-cutting at op `k`.
    pub fn with_crash_at(mut self, k: u64) -> ObjFaultPlan {
        self.crash_at = Some(k);
        self
    }

    /// This plan, forcing the worst-case partition on op `k`.
    pub fn with_partition_at(mut self, k: u64) -> ObjFaultPlan {
        self.partition_at = Some(k);
        self
    }

    /// This plan, with every listing deterministically shuffled.
    pub fn with_shuffled_lists(mut self) -> ObjFaultPlan {
        self.shuffle_lists = true;
        self
    }

    fn window(&self) -> u64 {
        self.partition_window.max(1)
    }
}

/// An acknowledged-but-not-yet-visible effect.
#[derive(Debug)]
struct Pending {
    name: String,
    version: u64,
    /// `None` is a tombstone (a delayed delete).
    data: Option<Arc<Vec<u8>>>,
    /// Becomes visible when the global op counter reaches this.
    apply_at: u64,
    /// Replayed effects take a fresh version at apply time, so they clobber.
    fresh_version: bool,
}

/// One applied version of an object; `None` data = tombstone.
type VersionEntry = (u64, Option<Arc<Vec<u8>>>);

#[derive(Debug, Default)]
struct ObjState {
    version: u64,
    ops: u64,
    crashed: bool,
    trace: Vec<String>,
    /// Applied history per name, ascending version; `None` = tombstone.
    names: BTreeMap<String, Vec<VersionEntry>>,
    pending: Vec<Pending>,
}

impl ObjState {
    fn apply(&mut self, name: &str, version: u64, data: Option<Arc<Vec<u8>>>) {
        let hist = self.names.entry(name.to_owned()).or_default();
        let pos = hist.partition_point(|(v, _)| *v <= version);
        hist.insert(pos, (version, data));
        if hist.len() > HISTORY_CAP {
            let drop = hist.len() - HISTORY_CAP;
            hist.drain(..drop);
        }
    }

    /// Apply every pending effect whose time has come.
    fn apply_due(&mut self) {
        let now = self.ops;
        let due: Vec<Pending> = {
            let mut rest = Vec::new();
            let mut due = Vec::new();
            for p in self.pending.drain(..) {
                if p.apply_at <= now {
                    due.push(p);
                } else {
                    rest.push(p);
                }
            }
            self.pending = rest;
            due
        };
        for p in due {
            let version = if p.fresh_version {
                self.version += 1;
                self.version
            } else {
                p.version
            };
            self.apply(&p.name, version, p.data);
        }
    }

    /// Flush everything pending: acknowledged means durable, so a crash (or
    /// a power cycle) makes every acknowledged effect visible.
    fn flush_pending(&mut self) {
        for p in std::mem::take(&mut self.pending) {
            let version = if p.fresh_version {
                self.version += 1;
                self.version
            } else {
                p.version
            };
            self.apply(&p.name, version, p.data);
        }
    }

    /// Settle every pending effect for one name, whatever its due time —
    /// the strongly consistent ops (`head`, `put_if`) see acknowledged
    /// state, so they force the partition to heal for that name first.
    fn settle(&mut self, name: &str) {
        let mut rest = Vec::new();
        let mut mine = Vec::new();
        for p in self.pending.drain(..) {
            if p.name == name {
                mine.push(p);
            } else {
                rest.push(p);
            }
        }
        self.pending = rest;
        for p in mine {
            let version = if p.fresh_version {
                self.version += 1;
                self.version
            } else {
                p.version
            };
            self.apply(&p.name, version, p.data);
        }
    }

    /// Generation of the acknowledged newest version of `name`; 0 = absent.
    /// Callers [`ObjState::settle`] first.
    fn generation(&self, name: &str) -> u64 {
        self.names
            .get(name)
            .and_then(|h| h.last())
            .and_then(|(v, d)| d.as_ref().map(|_| *v))
            .unwrap_or(0)
    }

    fn visible(&self, name: &str) -> Option<&Arc<Vec<u8>>> {
        self.names
            .get(name)
            .and_then(|h| h.last())
            .and_then(|(_, d)| d.as_ref())
    }
}

/// Marker payload inside the crash error, so the torture harness can tell a
/// simulated power cut from a real failure.
#[derive(Debug)]
struct ObjPowerCut;

impl fmt::Display for ObjPowerCut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulated object-store power cut")
    }
}

impl std::error::Error for ObjPowerCut {}

fn power_cut_error() -> io::Error {
    io::Error::other(ObjPowerCut)
}

/// The deterministic in-memory object store with partition injection.
#[derive(Debug)]
pub struct SimObjectStore {
    plan: ObjFaultPlan,
    state: Mutex<ObjState>,
}

impl SimObjectStore {
    /// A store faulting per `plan`.
    pub fn new(plan: ObjFaultPlan) -> SimObjectStore {
        SimObjectStore {
            plan,
            state: Mutex::new(ObjState::default()),
        }
    }

    /// Whether `err` is this store's simulated power cut.
    pub fn is_crash(err: &io::Error) -> bool {
        err.get_ref().is_some_and(|e| e.is::<ObjPowerCut>())
    }

    /// Recover from a power cut: every acknowledged effect becomes visible
    /// (acknowledged = durable), and ops flow again.
    pub fn power_cycle(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.crashed = false;
            st.flush_pending();
        }
    }

    /// Global ops served so far — the crash/partition sweep's coordinate
    /// space.
    pub fn ops(&self) -> u64 {
        self.state.lock().map(|st| st.ops).unwrap_or(0)
    }

    /// The labels of every op served, in order.
    pub fn op_trace(&self) -> Vec<String> {
        self.state
            .lock()
            .map(|st| st.trace.clone())
            .unwrap_or_default()
    }

    fn lock(&self) -> io::Result<std::sync::MutexGuard<'_, ObjState>> {
        self.state
            .lock()
            .map_err(|_| io::Error::other("object store lock poisoned"))
    }

    /// Gate every op: count it, trace it, apply due effects, crash on cue.
    /// Returns the op's ordinal, the coordinate every fault decision keys on.
    fn pre_op(&self, st: &mut ObjState, label: String) -> io::Result<u64> {
        if st.crashed {
            return Err(power_cut_error());
        }
        let ix = st.ops;
        st.ops += 1;
        st.trace.push(label);
        st.apply_due();
        if self.plan.crash_at == Some(ix) {
            st.crashed = true;
            st.flush_pending();
            return Err(power_cut_error());
        }
        Ok(ix)
    }

    fn partitioned(&self, ix: u64) -> bool {
        self.plan.partition_at == Some(ix)
    }
}

impl ObjectStore for SimObjectStore {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let p = self.plan;
        let mut st = self.lock()?;
        let ix = self.pre_op(&mut st, format!("obj:put:{name}"))?;
        st.version += 1;
        let version = st.version;
        let data = Some(Arc::new(bytes.to_vec()));
        let delayed = self.partitioned(ix)
            || fault_fires(p.seed, 0, name, ix, SALT_DELAY, p.delayed_put_chance);
        let replayed =
            !delayed && fault_fires(p.seed, 0, name, ix, SALT_REPLAY, p.lost_replay_chance);
        if delayed {
            // A forced partition imposes the worst case — the full window —
            // so the sweep deterministically exercises invisible reads.
            let span = if self.partitioned(ix) {
                p.window()
            } else {
                1 + fault_choice(p.seed, 0, name, ix, SALT_SPAN, p.window() as usize - 1) as u64
            };
            let apply_at = st.ops + span;
            st.pending.push(Pending {
                name: name.to_owned(),
                version,
                data,
                apply_at,
                fresh_version: false,
            });
        } else if replayed {
            let span = p.window()
                + fault_choice(p.seed, 0, name, ix, SALT_SPAN, p.window() as usize) as u64;
            let apply_at = st.ops + span;
            st.pending.push(Pending {
                name: name.to_owned(),
                version,
                data,
                apply_at,
                fresh_version: true,
            });
        } else {
            st.apply(name, version, data);
        }
        Ok(())
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        let p = self.plan;
        let mut st = self.lock()?;
        let ix = self.pre_op(&mut st, format!("obj:get:{name}"))?;
        let stale =
            self.partitioned(ix) || fault_fires(p.seed, 0, name, ix, SALT_RYW, p.ryw_chance);
        let hist = st.names.get(name);
        let entry = match hist {
            None => None,
            Some(h) if stale => {
                // The latest applied write is exactly what this reader
                // fails to see: serve the version before it, or nothing.
                (h.len() >= 2).then(|| &h[h.len() - 2])
            }
            Some(h) => h.last(),
        };
        match entry.and_then(|(_, d)| d.clone()) {
            Some(d) => Ok(d.as_ref().clone()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("object {name:?} not visible"),
            )),
        }
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        let p = self.plan;
        let mut st = self.lock()?;
        let ix = self.pre_op(&mut st, format!("obj:delete:{name}"))?;
        if st.visible(name).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("object {name:?} not found"),
            ));
        }
        st.version += 1;
        let version = st.version;
        let delayed = self.partitioned(ix)
            || fault_fires(p.seed, 0, name, ix, SALT_DELAY, p.delayed_put_chance);
        if delayed {
            let span = if self.partitioned(ix) {
                p.window()
            } else {
                1 + fault_choice(p.seed, 0, name, ix, SALT_SPAN, p.window() as usize - 1) as u64
            };
            let apply_at = st.ops + span;
            st.pending.push(Pending {
                name: name.to_owned(),
                version,
                data: None,
                apply_at,
                fresh_version: false,
            });
        } else {
            st.apply(name, version, None);
        }
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let p = self.plan;
        let mut st = self.lock()?;
        let ix = self.pre_op(&mut st, "obj:list".to_owned())?;
        let stale = self.partitioned(ix)
            || fault_fires(p.seed, 0, "list", ix, SALT_LIST, p.stale_list_chance);
        let mut names: Vec<String> = if stale {
            // An earlier namespace: pretend the last few versions of the
            // world haven't happened yet.
            let back =
                1 + fault_choice(p.seed, 0, "list", ix, SALT_SPAN, p.window() as usize) as u64;
            let horizon = st.version.saturating_sub(back);
            st.names
                .iter()
                .filter(|(_, h)| {
                    h.iter()
                        .rev()
                        .find(|(v, _)| *v <= horizon)
                        .is_some_and(|(_, d)| d.is_some())
                })
                .map(|(n, _)| n.clone())
                .collect()
        } else {
            st.names
                .iter()
                .filter(|(_, h)| h.last().is_some_and(|(_, d)| d.is_some()))
                .map(|(n, _)| n.clone())
                .collect()
        };
        if p.shuffle_lists || stale {
            names.sort_by_key(|n| fnv64(format!("{ix}:{n}").as_bytes()));
        }
        Ok(names)
    }

    fn describe(&self) -> String {
        format!("simobj(seed={})", self.plan.seed)
    }

    fn head(&self, name: &str) -> io::Result<u64> {
        let mut st = self.lock()?;
        self.pre_op(&mut st, format!("obj:head:{name}"))?;
        // Strongly consistent: real stores serve conditional reads from the
        // authoritative replica, so the partition cannot make `head` lie.
        st.settle(name);
        match st.generation(name) {
            0 => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("object {name:?} not found"),
            )),
            gen => Ok(gen),
        }
    }

    fn put_if(&self, name: &str, expected: u64, bytes: &[u8]) -> io::Result<u64> {
        let mut st = self.lock()?;
        self.pre_op(&mut st, format!("obj:casput:{name}"))?;
        // Linearizable under the state mutex, against *acknowledged* state:
        // compare and write are one step, the partition injector cannot
        // wedge itself between them. This is the native CAS the election
        // fence builds on.
        st.settle(name);
        let found = st.generation(name);
        if found != expected {
            return Err(bfu_store::cas_conflict_error(expected, found));
        }
        // Land at exactly `expected + 1` (max-bumping the global counter),
        // mirroring DirObjectStore's hard_link target: replicas holding the
        // same history then agree on every generation number, which is what
        // the lockstep-generation replication layer requires.
        let version = expected + 1;
        st.version = st.version.max(version);
        st.apply(name, version, Some(Arc::new(bytes.to_vec())));
        Ok(version)
    }

    fn put_at(&self, name: &str, gen: u64, bytes: &[u8]) -> io::Result<()> {
        if gen == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "generation 0 is reserved for absence",
            ));
        }
        let mut st = self.lock()?;
        self.pre_op(&mut st, format!("obj:putat:{name}"))?;
        // Replication-internal write: strongly consistent like put_if, so
        // settle the name first and apply immediately.
        st.settle(name);
        let exists = st
            .names
            .get(name)
            .is_some_and(|h| h.iter().any(|(v, d)| *v == gen && d.is_some()));
        if exists {
            return Ok(()); // generations are immutable: idempotent re-send
        }
        st.version = st.version.max(gen);
        st.apply(name, gen, Some(Arc::new(bytes.to_vec())));
        Ok(())
    }

    fn get_at(&self, name: &str, gen: u64) -> io::Result<Vec<u8>> {
        let mut st = self.lock()?;
        self.pre_op(&mut st, format!("obj:getat:{name}"))?;
        // Verifiable read: settle, then serve exactly the asked generation.
        st.settle(name);
        let found = st
            .names
            .get(name)
            .and_then(|h| h.iter().find(|(v, _)| *v == gen))
            .and_then(|(_, d)| d.clone());
        match found {
            Some(d) => Ok(d.as_ref().clone()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("object {name:?} has no generation {gen}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_when_unfaulted() {
        let s = SimObjectStore::new(ObjFaultPlan::none());
        s.put("a", b"1").unwrap();
        assert_eq!(s.get("a").unwrap(), b"1");
        s.put("a", b"2").unwrap();
        assert_eq!(s.get("a").unwrap(), b"2");
        assert_eq!(s.list().unwrap(), vec!["a".to_owned()]);
        s.delete("a").unwrap();
        assert_eq!(s.get("a").unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(s.delete("a").unwrap_err().kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn partitioned_put_is_delayed_then_visible() {
        // Op 0 is the put: its effect must not be visible to the very next
        // get, but must appear within the partition window.
        let s = SimObjectStore::new(ObjFaultPlan::none().with_partition_at(0));
        s.put("x", b"v").unwrap();
        assert_eq!(
            s.get("x").unwrap_err().kind(),
            io::ErrorKind::NotFound,
            "delayed visibility hides the acknowledged put"
        );
        let healed = (0..8).any(|_| s.get("x").is_ok());
        assert!(healed, "the partition heals within the window");
    }

    #[test]
    fn partitioned_get_violates_read_your_writes() {
        let s = SimObjectStore::new(ObjFaultPlan::none().with_partition_at(2));
        s.put("x", b"old").unwrap();
        s.put("x", b"new").unwrap();
        assert_eq!(s.get("x").unwrap(), b"old", "op 2 serves the stale version");
        assert_eq!(s.get("x").unwrap(), b"new", "later gets converge");
    }

    #[test]
    fn partitioned_list_is_stale() {
        let s = SimObjectStore::new(ObjFaultPlan::none().with_partition_at(2));
        s.put("a", b"1").unwrap();
        s.put("b", b"2").unwrap();
        let stale = s.list().unwrap();
        assert!(
            stale.len() < 2,
            "stale listing misses a recent put: {stale:?}"
        );
        let fresh = s.list().unwrap();
        assert_eq!(fresh.len(), 2, "later listings converge");
    }

    #[test]
    fn crash_fails_everything_until_power_cycle() {
        let s = SimObjectStore::new(ObjFaultPlan::none().with_crash_at(1));
        s.put("a", b"1").unwrap();
        let err = s.put("b", b"2").unwrap_err();
        assert!(SimObjectStore::is_crash(&err));
        let err = s.get("a").unwrap_err();
        assert!(SimObjectStore::is_crash(&err), "dark until power cycle");
        s.power_cycle();
        assert_eq!(s.get("a").unwrap(), b"1", "acknowledged put survived");
        assert_eq!(
            s.get("b").unwrap_err().kind(),
            io::ErrorKind::NotFound,
            "the crashed op itself took no effect"
        );
    }

    #[test]
    fn lost_replay_resurrects_with_fresh_version() {
        // Force a replayed put by cranking the chance to certainty.
        let plan = ObjFaultPlan {
            lost_replay_chance: 1.0,
            ..ObjFaultPlan::none()
        };
        let s = SimObjectStore::new(plan);
        s.put("x", b"v").unwrap();
        assert_eq!(
            s.get("x").unwrap_err().kind(),
            io::ErrorKind::NotFound,
            "lost: acknowledged but invisible"
        );
        let mut seen = false;
        for _ in 0..16 {
            if let Ok(b) = s.get("x") {
                assert_eq!(b, b"v");
                seen = true;
                break;
            }
        }
        assert!(seen, "replayed eventually");
    }

    #[test]
    fn deterministic_chaos_schedule() {
        let run = |n: u64| {
            let s = SimObjectStore::new(ObjFaultPlan::chaos(9));
            for i in 0..n {
                let _ = s.put(&format!("k{}", i % 3), &[i as u8]);
                let _ = s.get(&format!("k{}", i % 3));
                let _ = s.list();
            }
            s.op_trace()
        };
        assert_eq!(run(20), run(20), "same plan, same trace");
    }

    #[test]
    fn cas_basic_lifecycle() {
        let s = SimObjectStore::new(ObjFaultPlan::none());
        assert_eq!(s.head("c").unwrap_err().kind(), io::ErrorKind::NotFound);
        let g1 = s.put_if("c", 0, b"one").unwrap();
        assert_eq!(s.head("c").unwrap(), g1);
        let err = s.put_if("c", 0, b"late creator").unwrap_err();
        assert_eq!(bfu_store::as_cas_conflict(&err).expect("typed").found, g1);
        let g2 = s.put_if("c", g1, b"two").unwrap();
        assert!(g2 > g1);
        assert_eq!(s.get("c").unwrap(), b"two");
    }

    #[test]
    fn cas_sees_through_partitions() {
        // The put at op 0 is partitioned: its visibility is delayed, a
        // plain get would miss it. head/put_if are strongly consistent —
        // they settle the pending effect and must see the acknowledged
        // write, so a CAS expecting "absent" correctly loses.
        let s = SimObjectStore::new(ObjFaultPlan::none().with_partition_at(0));
        s.put("c", b"hidden").unwrap();
        let g = s.head("c").expect("head sees the acknowledged put");
        assert!(g > 0);
        let err = s.put_if("c", 0, b"usurper").unwrap_err();
        assert!(bfu_store::as_cas_conflict(&err).is_some());
        let g2 = s.put_if("c", g, b"next").unwrap();
        assert!(g2 > g);
        assert_eq!(s.get("c").unwrap(), b"next");
    }

    #[test]
    fn cas_under_chaos_never_double_wins() {
        // Sequential CAS claims from the same observed generation: the
        // second must always conflict, whatever the fault schedule does to
        // visibility around them.
        let s = SimObjectStore::new(ObjFaultPlan::chaos(13));
        let base = s.put_if("seat", 0, b"a").unwrap();
        let win = s.put_if("seat", base, b"b").expect("fresh claim wins");
        assert!(s.put_if("seat", base, b"c").is_err(), "stale claim fenced");
        assert_eq!(s.head("seat").unwrap(), win);
    }
}
