//! The remote object-store wire protocol: framing, ops, and error codes.
//!
//! One frame per message, symmetric in both directions:
//!
//! ```text
//! "BFUWIRE1"            8-byte magic
//! len:  u32 LE          payload length
//! sum:  u64 LE          FNV-64 of the payload
//! payload               `len` bytes
//! ```
//!
//! The payload of a request is `(client, id, op)`; of a response,
//! `(client, id, status, body)`. Request ids are **per-client** and chosen
//! once per logical operation: a retry re-sends the *same* id, and the
//! server's idempotency cache replays the recorded answer instead of
//! re-executing a mutation — that is what makes "response lost after the
//! server applied the put" safe to retry. The `(client, id)` echo in the
//! response is what lets a client reject a reordered frame from an earlier
//! exchange.
//!
//! Errors cross the wire as [`RemoteError`] codes, not strings: each code
//! deserializes back to the same retryable-or-fatal classification it was
//! sent with, so a client never has to parse an error message to decide
//! whether to retry (the round-trip test below pins this for every class).

use bfu_store::{as_cas_conflict, cas_conflict_error};
use bfu_util::{fnv64, ByteReader, ByteWriter};
use std::fmt;
use std::io;

/// Frame magic: protocol name + version, checked before anything else.
pub const WIRE_MAGIC: &[u8; 8] = b"BFUWIRE1";

/// Hard ceiling on a frame payload; anything larger is a corrupt or
/// hostile length field, not a real message.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Bytes of frame header before the payload: magic + len + checksum.
pub const FRAME_HEADER_LEN: usize = 8 + 4 + 8;

/// One operation requested of the remote store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOp {
    /// Atomic whole-object write.
    Put { name: String, bytes: Vec<u8> },
    /// Read one complete version.
    Get { name: String },
    /// Remove the object.
    Delete { name: String },
    /// Enumerate all names.
    List,
    /// Current generation of a name.
    Head { name: String },
    /// Conditional put fenced on the expected generation.
    PutIf {
        name: String,
        expected: u64,
        bytes: Vec<u8>,
    },
    /// Replication primitive: write at exactly this generation (idempotent
    /// if it already exists — generations are immutable).
    PutAt {
        name: String,
        gen: u64,
        bytes: Vec<u8>,
    },
    /// Replication primitive: read exactly this generation.
    GetAt { name: String, gen: u64 },
}

impl RequestOp {
    /// Whether the server must deduplicate retries of this op: replaying a
    /// recorded answer instead of re-executing. Reads are naturally
    /// idempotent; mutations are not ([`RequestOp::PutIf`] would see its
    /// *own* first attempt as the conflicting writer).
    pub fn mutates(&self) -> bool {
        matches!(
            self,
            RequestOp::Put { .. }
                | RequestOp::Delete { .. }
                | RequestOp::PutIf { .. }
                | RequestOp::PutAt { .. }
        )
    }

    fn tag(&self) -> u8 {
        match self {
            RequestOp::Put { .. } => 1,
            RequestOp::Get { .. } => 2,
            RequestOp::Delete { .. } => 3,
            RequestOp::List => 4,
            RequestOp::Head { .. } => 5,
            RequestOp::PutIf { .. } => 6,
            RequestOp::PutAt { .. } => 7,
            RequestOp::GetAt { .. } => 8,
        }
    }
}

/// A client request: which client, which operation ordinal, what to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Stable client identity; the idempotency cache is keyed per client
    /// so two clients that both start ids at 1 never collide.
    pub client: u64,
    /// Per-client operation id, reused verbatim across retries.
    pub id: u64,
    /// The operation itself.
    pub op: RequestOp,
}

/// The successful payload of a response, shaped per op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespBody {
    /// Put / Delete succeeded.
    Unit,
    /// Get result.
    Bytes(Vec<u8>),
    /// List result.
    Names(Vec<String>),
    /// Head / PutIf result: a generation.
    Gen(u64),
}

impl RespBody {
    fn tag(&self) -> u8 {
        match self {
            RespBody::Unit => 1,
            RespBody::Bytes(_) => 2,
            RespBody::Names(_) => 3,
            RespBody::Gen(_) => 4,
        }
    }
}

/// A server response echoing the request's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of [`Request::client`].
    pub client: u64,
    /// Echo of [`Request::id`] (0 when the request was unreadable).
    pub id: u64,
    /// Outcome.
    pub body: Result<RespBody, RemoteError>,
}

/// Error codes a remote exchange can produce, each with a fixed
/// retryable-or-fatal classification that survives the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// The object does not exist. Fatal: retrying changes nothing.
    NotFound,
    /// Conditional put lost its race; carries both generations so the
    /// caller can re-read and decide. Fatal at the transport layer.
    CasConflict { expected: u64, found: u64 },
    /// The request itself was malformed for the store (bad name, reserved
    /// characters). Fatal: the same request will fail the same way.
    InvalidInput,
    /// Transient store or transport trouble (broken stream, server
    /// shedding load). Retryable.
    Unavailable,
    /// A frame failed its magic, length, or checksum check. Retryable:
    /// the bytes were damaged in flight, not the request.
    BadFrame,
    /// Any other server-side I/O failure. Fatal — without a code we must
    /// assume the op partially applied in some unknown way.
    Io,
    /// A retried mutation arrived after its request id was evicted from the
    /// server's replay window: the server can no longer tell whether the
    /// original attempt executed, so it refuses rather than risk silently
    /// re-executing a CAS. Fatal for the *same id* (re-sending it can never
    /// succeed); idempotent-by-content ops (put, delete) are safely
    /// re-issued under a fresh id, which the client does itself.
    ReplayEvicted,
}

impl RemoteError {
    /// Whether a client should retry the same request id.
    pub fn retryable(&self) -> bool {
        matches!(self, RemoteError::Unavailable | RemoteError::BadFrame)
    }

    /// Classify a local [`io::Error`] for the wire. CAS conflicts keep
    /// their payload; disconnect-shaped kinds become [`RemoteError::Unavailable`];
    /// everything else collapses to a fatal code.
    pub fn from_io(err: &io::Error) -> RemoteError {
        if let Some(c) = as_cas_conflict(err) {
            return RemoteError::CasConflict {
                expected: c.expected,
                found: c.found,
            };
        }
        if err
            .get_ref()
            .and_then(|e| e.downcast_ref::<RemoteError>())
            .is_some_and(|e| matches!(e, RemoteError::ReplayEvicted))
        {
            return RemoteError::ReplayEvicted;
        }
        match err.kind() {
            io::ErrorKind::NotFound => RemoteError::NotFound,
            io::ErrorKind::InvalidInput => RemoteError::InvalidInput,
            io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof => RemoteError::Unavailable,
            _ => RemoteError::Io,
        }
    }

    /// Rehydrate into an [`io::Error`] on the client side. The kind is
    /// chosen so that [`RemoteError::from_io`] round-trips to the same
    /// class — and deliberately *never* `Interrupted`, which lower I/O
    /// retry loops would spin on.
    pub fn into_io(self) -> io::Error {
        match self {
            RemoteError::NotFound => io::Error::new(io::ErrorKind::NotFound, "remote: not found"),
            RemoteError::CasConflict { expected, found } => cas_conflict_error(expected, found),
            RemoteError::InvalidInput => {
                io::Error::new(io::ErrorKind::InvalidInput, "remote: invalid input")
            }
            RemoteError::Unavailable => {
                io::Error::new(io::ErrorKind::TimedOut, "remote: unavailable")
            }
            RemoteError::BadFrame => io::Error::new(io::ErrorKind::TimedOut, "remote: bad frame"),
            RemoteError::Io => io::Error::other("remote: server i/o error"),
            // Carried as a typed payload so `from_io` round-trips it and
            // callers can recover the class with `is_replay_evicted`.
            RemoteError::ReplayEvicted => io::Error::other(RemoteError::ReplayEvicted),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            RemoteError::NotFound => 1,
            RemoteError::CasConflict { .. } => 2,
            RemoteError::InvalidInput => 3,
            RemoteError::Unavailable => 4,
            RemoteError::BadFrame => 5,
            RemoteError::Io => 6,
            RemoteError::ReplayEvicted => 7,
        }
    }
}

/// Whether `err` carries [`RemoteError::ReplayEvicted`] — the typed marker
/// for "this mutation's id fell out of the server's replay window, its
/// outcome is unknowable under that id".
pub fn is_replay_evicted(err: &io::Error) -> bool {
    RemoteError::from_io(err) == RemoteError::ReplayEvicted
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::NotFound => write!(f, "not found"),
            RemoteError::CasConflict { expected, found } => {
                write!(f, "cas conflict: expected {expected}, found {found}")
            }
            RemoteError::InvalidInput => write!(f, "invalid input"),
            RemoteError::Unavailable => write!(f, "unavailable"),
            RemoteError::BadFrame => write!(f, "bad frame"),
            RemoteError::Io => write!(f, "server i/o error"),
            RemoteError::ReplayEvicted => write!(f, "replay window evicted"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// Wrap a payload in the checksummed frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(WIRE_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The payload length a frame header announces, or why the header is bad.
/// Callers that read from a stream use this to size the body read.
pub fn frame_body_len(header: &[u8]) -> Result<usize, RemoteError> {
    if header.len() != FRAME_HEADER_LEN || &header[..8] != WIRE_MAGIC {
        return Err(RemoteError::BadFrame);
    }
    let mut len4 = [0u8; 4];
    len4.copy_from_slice(&header[8..12]);
    let len = u32::from_le_bytes(len4) as usize;
    if len > MAX_FRAME_LEN {
        return Err(RemoteError::BadFrame);
    }
    Ok(len)
}

/// Unwrap a complete frame, verifying magic, length, and checksum.
pub fn unframe(frame: &[u8]) -> Result<&[u8], RemoteError> {
    if frame.len() < FRAME_HEADER_LEN {
        return Err(RemoteError::BadFrame);
    }
    let len = frame_body_len(&frame[..FRAME_HEADER_LEN])?;
    let payload = &frame[FRAME_HEADER_LEN..];
    if payload.len() != len {
        return Err(RemoteError::BadFrame);
    }
    let mut sum8 = [0u8; 8];
    sum8.copy_from_slice(&frame[12..20]);
    if fnv64(payload) != u64::from_le_bytes(sum8) {
        return Err(RemoteError::BadFrame);
    }
    Ok(payload)
}

/// Encode a request as a complete frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(req.client);
    w.put_u64(req.id);
    w.put_u8(req.op.tag());
    match &req.op {
        RequestOp::Put { name, bytes } => {
            w.put_str(name);
            w.put_bytes(bytes);
        }
        RequestOp::Get { name } | RequestOp::Delete { name } | RequestOp::Head { name } => {
            w.put_str(name);
        }
        RequestOp::List => {}
        RequestOp::PutIf {
            name,
            expected,
            bytes,
        } => {
            w.put_str(name);
            w.put_u64(*expected);
            w.put_bytes(bytes);
        }
        RequestOp::PutAt { name, gen, bytes } => {
            w.put_str(name);
            w.put_u64(*gen);
            w.put_bytes(bytes);
        }
        RequestOp::GetAt { name, gen } => {
            w.put_str(name);
            w.put_u64(*gen);
        }
    }
    frame(&w.into_bytes())
}

/// Decode a request from an already-unframed payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, RemoteError> {
    let mut r = ByteReader::new(payload);
    let parse = |r: &mut ByteReader| -> Option<Request> {
        let client = r.get_u64().ok()?;
        let id = r.get_u64().ok()?;
        let op = match r.get_u8().ok()? {
            1 => RequestOp::Put {
                name: r.get_str().ok()?.to_string(),
                bytes: r.get_bytes().ok()?.to_vec(),
            },
            2 => RequestOp::Get {
                name: r.get_str().ok()?.to_string(),
            },
            3 => RequestOp::Delete {
                name: r.get_str().ok()?.to_string(),
            },
            4 => RequestOp::List,
            5 => RequestOp::Head {
                name: r.get_str().ok()?.to_string(),
            },
            6 => RequestOp::PutIf {
                name: r.get_str().ok()?.to_string(),
                expected: r.get_u64().ok()?,
                bytes: r.get_bytes().ok()?.to_vec(),
            },
            7 => RequestOp::PutAt {
                name: r.get_str().ok()?.to_string(),
                gen: r.get_u64().ok()?,
                bytes: r.get_bytes().ok()?.to_vec(),
            },
            8 => RequestOp::GetAt {
                name: r.get_str().ok()?.to_string(),
                gen: r.get_u64().ok()?,
            },
            _ => return None,
        };
        if !r.is_empty() {
            return None;
        }
        Some(Request { client, id, op })
    };
    parse(&mut r).ok_or(RemoteError::BadFrame)
}

/// Encode a response as a complete frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(resp.client);
    w.put_u64(resp.id);
    match &resp.body {
        Ok(body) => {
            w.put_u8(0);
            w.put_u8(body.tag());
            match body {
                RespBody::Unit => {}
                RespBody::Bytes(b) => w.put_bytes(b),
                RespBody::Names(names) => {
                    w.put_u32(names.len() as u32);
                    for n in names {
                        w.put_str(n);
                    }
                }
                RespBody::Gen(g) => w.put_u64(*g),
            }
        }
        Err(err) => {
            w.put_u8(1);
            w.put_u8(err.tag());
            if let RemoteError::CasConflict { expected, found } = err {
                w.put_u64(*expected);
                w.put_u64(*found);
            }
        }
    }
    frame(&w.into_bytes())
}

/// Decode a response from an already-unframed payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, RemoteError> {
    let mut r = ByteReader::new(payload);
    let parse = |r: &mut ByteReader| -> Option<Response> {
        let client = r.get_u64().ok()?;
        let id = r.get_u64().ok()?;
        let body = match r.get_u8().ok()? {
            0 => Ok(match r.get_u8().ok()? {
                1 => RespBody::Unit,
                2 => RespBody::Bytes(r.get_bytes().ok()?.to_vec()),
                3 => {
                    let n = r.get_u32().ok()? as usize;
                    if n > MAX_FRAME_LEN / 2 {
                        return None;
                    }
                    let mut names = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        names.push(r.get_str().ok()?.to_string());
                    }
                    RespBody::Names(names)
                }
                4 => RespBody::Gen(r.get_u64().ok()?),
                _ => return None,
            }),
            1 => Err(match r.get_u8().ok()? {
                1 => RemoteError::NotFound,
                2 => RemoteError::CasConflict {
                    expected: r.get_u64().ok()?,
                    found: r.get_u64().ok()?,
                },
                3 => RemoteError::InvalidInput,
                4 => RemoteError::Unavailable,
                5 => RemoteError::BadFrame,
                6 => RemoteError::Io,
                7 => RemoteError::ReplayEvicted,
                _ => return None,
            }),
            _ => return None,
        };
        if !r.is_empty() {
            return None;
        }
        Some(Response { client, id, body })
    };
    parse(&mut r).ok_or(RemoteError::BadFrame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_errors() -> Vec<RemoteError> {
        vec![
            RemoteError::NotFound,
            RemoteError::CasConflict {
                expected: 7,
                found: 9,
            },
            RemoteError::InvalidInput,
            RemoteError::Unavailable,
            RemoteError::BadFrame,
            RemoteError::Io,
            RemoteError::ReplayEvicted,
        ]
    }

    #[test]
    fn requests_round_trip() {
        let ops = vec![
            RequestOp::Put {
                name: "a".into(),
                bytes: vec![1, 2, 3],
            },
            RequestOp::Get { name: "b/c".into() },
            RequestOp::Delete { name: "d".into() },
            RequestOp::List,
            RequestOp::Head { name: "e".into() },
            RequestOp::PutIf {
                name: "COORD".into(),
                expected: 41,
                bytes: vec![],
            },
            RequestOp::PutAt {
                name: "rep".into(),
                gen: 12,
                bytes: vec![4, 5],
            },
            RequestOp::GetAt {
                name: "rep".into(),
                gen: 12,
            },
        ];
        for (ix, op) in ops.into_iter().enumerate() {
            let req = Request {
                client: 0xC0FFEE,
                id: ix as u64 + 1,
                op,
            };
            let bytes = encode_request(&req);
            let back = decode_request(unframe(&bytes).expect("frame ok")).expect("decode ok");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let bodies: Vec<Result<RespBody, RemoteError>> = vec![
            Ok(RespBody::Unit),
            Ok(RespBody::Bytes(vec![9; 300])),
            Ok(RespBody::Names(vec!["x".into(), "y#g1".into()])),
            Ok(RespBody::Gen(17)),
        ]
        .into_iter()
        .chain(all_errors().into_iter().map(Err))
        .collect();
        for (ix, body) in bodies.into_iter().enumerate() {
            let resp = Response {
                client: 3,
                id: ix as u64,
                body,
            };
            let bytes = encode_response(&resp);
            let back = decode_response(unframe(&bytes).expect("frame ok")).expect("decode ok");
            assert_eq!(back, resp);
        }
    }

    /// Satellite: every error class must survive the wire with its
    /// classification intact — serialize, deserialize, and land on the
    /// same retryable/fatal verdict, with no stringly-typed collapse
    /// through `io::Error` either.
    #[test]
    fn error_classification_survives_round_trip() {
        for err in all_errors() {
            let resp = Response {
                client: 1,
                id: 1,
                body: Err(err.clone()),
            };
            let bytes = encode_response(&resp);
            let back = decode_response(unframe(&bytes).expect("frame ok")).expect("decode ok");
            let got = back.body.expect_err("still an error");
            assert_eq!(got, err, "wire round-trip changed the error");
            assert_eq!(
                got.retryable(),
                err.retryable(),
                "classification changed over the wire for {err:?}"
            );
        }
    }

    /// The io::Error hop on the client side must also preserve class: a
    /// retryable RemoteError that becomes io::Error and is later
    /// re-classified (e.g. by a nested remote) stays retryable.
    #[test]
    fn io_error_hop_preserves_classification() {
        for err in all_errors() {
            let io_err = err.clone().into_io();
            let back = RemoteError::from_io(&io_err);
            assert_eq!(
                back.retryable(),
                err.retryable(),
                "io hop changed retryability for {err:?} -> {io_err:?} -> {back:?}"
            );
            // And never Interrupted: write_all_retrying-style loops treat
            // that kind as "try again immediately", which would spin.
            assert_ne!(io_err.kind(), io::ErrorKind::Interrupted);
        }
        // The CAS payload specifically must survive both hops intact.
        let conflict = RemoteError::CasConflict {
            expected: 4,
            found: 6,
        };
        let c = as_cas_conflict(&conflict.into_io()).expect("payload survives");
        assert_eq!((c.expected, c.found), (4, 6));
    }

    #[test]
    fn damaged_frames_are_rejected() {
        let good = encode_request(&Request {
            client: 1,
            id: 1,
            op: RequestOp::List,
        });
        // Truncated tail: checksum/length mismatch.
        assert_eq!(unframe(&good[..good.len() - 1]), Err(RemoteError::BadFrame));
        // Flipped payload byte: checksum mismatch.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(unframe(&flipped), Err(RemoteError::BadFrame));
        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(unframe(&bad_magic), Err(RemoteError::BadFrame));
        // Absurd length field.
        let mut huge = good;
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(unframe(&huge), Err(RemoteError::BadFrame));
    }

    #[test]
    fn garbage_payloads_do_not_panic() {
        for len in 0..64usize {
            let junk: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let _ = decode_request(&junk);
            let _ = decode_response(&junk);
        }
    }
}
