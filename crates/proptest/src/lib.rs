//! A self-contained property-testing shim.
//!
//! This crate provides the subset of the [proptest](https://docs.rs/proptest)
//! API this workspace actually uses — `proptest!`, `Strategy`, string
//! regex-subset strategies, `collection::vec`, `option::of`, `prop_oneof!`,
//! ranges, `Just`, `any`, and the `prop_assert*` macros — implemented over a
//! deterministic SplitMix64 generator with zero external dependencies.
//!
//! The build environment for this repository has no network access, so the
//! real proptest crate cannot be fetched; rather than delete the workspace's
//! property tests (or gate them behind a feature nobody can enable), this
//! shim keeps them running. Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its case index and the value
//!   generation is fully deterministic per test name, so failures reproduce
//!   exactly — rerun the test and the same case fails.
//! - **Regex strategies** support the subset used here: literals, `.`,
//!   character classes (ranges, escapes, trailing `-`), and the `{m,n}`,
//!   `{m}`, `*`, `+`, `?` quantifiers.
//! - Case count defaults to 96 (override with `ProptestConfig::with_cases`).

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------- rng

/// Deterministic test-case generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Stable string hash (FNV-1a) for deriving per-test seeds.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------- config

/// Runner configuration (the `ProptestConfig` of real proptest).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Compatibility alias module (real proptest exposes `test_runner::Config`).
pub mod test_runner {
    pub use crate::ProptestConfig as Config;
}

/// A failed property check (produced by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------- runner

/// Test-runner internals used by the `proptest!` macro expansion.
pub mod runner {
    use super::*;

    /// Run `f` for every case in the config, panicking on the first failure.
    pub fn run<F>(cfg: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = hash_name(name);
        for case in 0..cfg.cases {
            let mut rng = TestRng::new(base ^ u64::from(case).wrapping_mul(0xD1B54A32D192ED03));
            if let Err(e) = f(&mut rng) {
                panic!("property {name} failed at case {case}/{}: {e}", cfg.cases);
            }
        }
    }
}

// ---------------------------------------------------------------- strategy

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy combinators and helpers used by the macros.
pub mod strategy {
    use super::*;

    /// Box a strategy for heterogeneous collections (`prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between boxed strategies of a common value type.
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Build from a non-empty option list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.options.len() as u64) as usize;
            self.options[ix].generate(rng)
        }
    }
}

/// Always produce a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// Integer and float range strategies.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite spread around zero; NaN/inf corners are not useful for the
        // statistics properties this workspace checks.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Produce any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------- regex

/// One atom of the regex subset.
enum Atom {
    Lit(char),
    AnyChar,
    Class(Vec<(char, char)>),
}

struct Quantified {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
    let mut out = Vec::new();
    let mut pending: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => break,
            '\\' => {
                if let Some(p) = pending.take() {
                    out.push((p, p));
                }
                if let Some(esc) = chars.next() {
                    pending = Some(esc);
                }
            }
            '-' => {
                // Range if we hold a pending start and a class char follows;
                // a trailing '-' is a literal.
                match (pending.take(), chars.peek().copied()) {
                    (Some(lo), Some(hi)) if hi != ']' => {
                        chars.next();
                        let hi = if hi == '\\' {
                            chars.next().unwrap_or(lo)
                        } else {
                            hi
                        };
                        out.push((lo.min(hi), lo.max(hi)));
                    }
                    (p, _) => {
                        if let Some(p) = p {
                            out.push((p, p));
                        }
                        pending = Some('-');
                    }
                }
            }
            other => {
                if let Some(p) = pending.take() {
                    out.push((p, p));
                }
                pending = Some(other);
            }
        }
    }
    if let Some(p) = pending {
        out.push((p, p));
    }
    if out.is_empty() {
        out.push(('a', 'a'));
    }
    out
}

fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let mut chars = pattern.chars().peekable();
    let mut out: Vec<Quantified> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Lit(chars.next().unwrap_or('\\')),
            other => Atom::Lit(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        out.push(Quantified { atom, min, max });
    }
    out
}

/// Characters `.` may produce: printable ASCII plus a few awkward extras so
/// "never panics" properties see whitespace and multi-byte input.
const ANY_EXTRAS: &[char] = &['\n', '\t', 'é', 'ß', '✓', '\u{0}'];

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::AnyChar => {
            if rng.below(16) == 0 {
                ANY_EXTRAS[rng.below(ANY_EXTRAS.len() as u64) as usize]
            } else {
                char::from(0x20 + rng.below(0x5f) as u8)
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for (lo, hi) in ranges {
                let span = u64::from(*hi) - u64::from(*lo) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                }
                pick -= span;
            }
            ranges[0].0
        }
    }
}

/// `&str` values act as regex-subset string strategies, as in real proptest.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for q in &atoms {
            let n = if q.max > q.min {
                q.min + rng.below(u64::from(q.max - q.min + 1)) as u32
            } else {
                q.min
            };
            for _ in 0..n {
                out.push(sample_atom(&q.atom, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------- modules

/// Collection strategies.
pub mod collection {
    use super::*;

    /// A strategy producing `Vec`s of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// A strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// The glob import real proptest users reach for.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------- macros

/// Define property tests. See real proptest for the syntax; this shim
/// supports the `#![proptest_config(..)]` header and `name in strategy`
/// argument lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let __cfg = $cfg;
                $crate::runner::run(&__cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Choose uniformly between the given strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// Assert a condition inside a property, failing the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} == {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn class_trailing_dash_and_escape() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "[a-z0-9 +\\-*/(){};=.,'\"<>!&|]{1,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase()
                        || c.is_ascii_digit()
                        || " +-*/(){};=.,'\"<>!&|".contains(c),
                    "unexpected char {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn ranges_and_any_are_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (10u16..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let i = (-5i32..7).generate(&mut rng);
            assert!((-5..7).contains(&i));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let _: u8 = any::<u8>().generate(&mut rng);
        }
    }

    #[test]
    fn oneof_and_map_and_vec() {
        let strat = prop_oneof![Just("x".to_owned()), "[0-9]{2}".prop_map(|s: String| s),];
        let mut rng = TestRng::new(4);
        let mut saw_x = false;
        let mut saw_num = false;
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            if v == "x" {
                saw_x = true;
            } else {
                assert_eq!(v.len(), 2);
                saw_num = true;
            }
        }
        assert!(saw_x && saw_num);
        let vecs = collection::vec(any::<u8>(), 1..4);
        for _ in 0..50 {
            let v = vecs.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn option_of_produces_both() {
        let strat = option::of(1u64..5);
        let mut rng = TestRng::new(5);
        let values: Vec<_> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn shim_macro_roundtrip(a in 0u64..100, b in 1u64..100) {
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(b, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        runner::run(&ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
