//! Syntax tree for the mini-JS language.
//!
//! Identifiers and property names are interned [`Atom`]s, so a parsed
//! [`Program`] carries no owned identifier strings and comparisons during
//! interpretation are `u32` equality. Function definitions are `Arc`-shared
//! (not `Rc`): the compilation cache hands the *same* parsed program to every
//! worker thread, so the tree must be `Send + Sync`.

use bfu_util::Atom;
use std::sync::Arc;

/// Binary arithmetic/comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (number addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==` (loose: `null == undefined`)
    Eq,
    /// `!=`
    Ne,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNe,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Short-circuiting logical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicalOp {
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `typeof`
    Typeof,
}

/// Assignment target: a variable, member, or index place.
#[derive(Debug, Clone, PartialEq)]
pub enum Place {
    /// `x = ...`
    Var(Atom),
    /// `obj.prop = ...`
    Member(Box<Expr>, Atom),
    /// `obj[key] = ...`
    Index(Box<Expr>, Box<Expr>),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`
    Null,
    /// `undefined`
    Undefined,
    /// Variable reference.
    Ident(Atom),
    /// `this`
    This,
    /// `obj.prop`
    Member(Box<Expr>, Atom),
    /// `obj[key]`
    Index(Box<Expr>, Box<Expr>),
    /// Call. When the callee is a `Member`, the receiver becomes `this`.
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new Ctor(args)`
    New {
        /// Constructor expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Assignment, optionally compound (`+=` carries `Some(BinOp::Add)`).
    Assign {
        /// Where to store.
        place: Place,
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// Prefix/postfix `++`/`--` desugared: `is_inc`, returns the *old* value
    /// when `postfix`.
    IncDec {
        /// The place mutated.
        place: Place,
        /// `true` for `++`.
        is_inc: bool,
        /// `true` for postfix position.
        postfix: bool,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Short-circuit logical operation.
    Logical {
        /// Operator.
        op: LogicalOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Ternary conditional.
    Cond {
        /// Condition.
        cond: Box<Expr>,
        /// Then branch.
        then: Box<Expr>,
        /// Else branch.
        otherwise: Box<Expr>,
    },
    /// Function expression (closure).
    Function(Arc<FunctionDef>),
    /// Object literal.
    ObjectLit(Vec<(Atom, Expr)>),
    /// Array literal.
    ArrayLit(Vec<Expr>),
}

/// A function definition (shared between declaration and expression forms).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Optional name (for declarations and recursion).
    pub name: Option<Atom>,
    /// Parameter names.
    pub params: Vec<Atom>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// `var name = init;`
    Var(Atom, Option<Expr>),
    /// `function name(...) { ... }`
    FunctionDecl(Arc<FunctionDef>),
    /// `return expr;`
    Return(Option<Expr>),
    /// `if (cond) { ... } else { ... }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        otherwise: Vec<Stmt>,
    },
    /// `while (cond) { ... }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; update) { ... }`
    For {
        /// Initializer (a statement: `var` or expression).
        init: Option<Box<Stmt>>,
        /// Condition (default true).
        cond: Option<Expr>,
        /// Update expression.
        update: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Bare block.
    Block(Vec<Stmt>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements.
    pub body: Vec<Stmt>,
}
