//! Execution resource budgets.
//!
//! The interpreter's original governor was a single step-fuel counter. A
//! hostile page can exhaust other resources long before it runs out of
//! steps: allocation bombs grow the heap, string bombs double a string each
//! iteration (O(2^n) bytes for n steps), and recursion burns native stack.
//! [`ResourceBudget`] bounds each axis explicitly:
//!
//! - **steps** — one unit per statement/expression evaluated (the original
//!   fuel model);
//! - **heap cells** — objects allocated *after* the budget was installed
//!   (the embedder's own API surface is not charged to the page);
//! - **string bytes** — cumulative bytes produced by string concatenation,
//!   the only unbounded-allocation primitive in the language subset;
//! - **call depth** — interpreter recursion, which maps onto native stack.
//!
//! Budgets are installed per phase ([`Interpreter::set_budget`]): the
//! browser gives the initial script run, event dispatch, and timer drain
//! each their own allowance, so a page that burns its load budget can still
//! respond to interaction (partial feature logs instead of a lost visit).
//!
//! [`Interpreter::set_budget`]: crate::Interpreter::set_budget

/// Per-phase execution allowance. All limits are *relative to the moment the
/// budget is installed*: heap cells already live and string bytes already
/// built are not charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Statement/expression evaluations allowed.
    pub max_steps: u64,
    /// Heap objects the governed code may allocate.
    pub max_heap_cells: usize,
    /// Cumulative bytes of string data concatenation may produce.
    pub max_string_bytes: u64,
    /// Maximum interpreter call depth.
    pub max_call_depth: u32,
}

impl ResourceBudget {
    /// An effectively unlimited budget for every axis except steps — the
    /// historical behavior of `set_fuel`.
    pub fn steps_only(max_steps: u64) -> Self {
        ResourceBudget {
            max_steps,
            ..ResourceBudget::default()
        }
    }
}

impl Default for ResourceBudget {
    /// Generous defaults: a well-behaved page never notices the governor.
    fn default() -> Self {
        ResourceBudget {
            max_steps: 5_000_000,
            max_heap_cells: 1 << 20,
            max_string_bytes: 16 << 20,
            max_call_depth: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interpreter, RuntimeError, ScriptError};

    fn run_with(budget: ResourceBudget, src: &str) -> Result<crate::Value, ScriptError> {
        let mut interp = Interpreter::new();
        interp.set_budget(&budget);
        interp.run_source(src)
    }

    fn runtime_err(budget: ResourceBudget, src: &str) -> RuntimeError {
        match run_with(budget, src) {
            Err(ScriptError::Runtime(e)) => e,
            other => panic!("expected runtime error, got {other:?}"),
        }
    }

    #[test]
    fn infinite_loop_trips_step_budget() {
        let b = ResourceBudget::steps_only(10_000);
        assert_eq!(
            runtime_err(b, "while (true) { var x = 1; }"),
            RuntimeError::OutOfFuel
        );
    }

    #[test]
    fn allocation_bomb_trips_heap_budget() {
        let b = ResourceBudget {
            max_heap_cells: 500,
            ..ResourceBudget::default()
        };
        let src = "var a = []; var i = 0; while (true) { a[i] = { x: i }; i = i + 1; }";
        assert_eq!(runtime_err(b, src), RuntimeError::HeapExhausted);
    }

    #[test]
    fn string_bomb_trips_string_budget_quickly() {
        let b = ResourceBudget {
            max_string_bytes: 1 << 16,
            ..ResourceBudget::default()
        };
        let mut interp = Interpreter::new();
        interp.set_budget(&b);
        let r = interp.run_source("var s = 'xxxxxxxx'; while (true) { s = s + s; }");
        assert!(matches!(
            r,
            Err(ScriptError::Runtime(RuntimeError::StringOverflow))
        ));
        // Doubling means the trap fires after O(log budget) steps, long
        // before the step budget would.
        assert!(interp.fuel() > 4_000_000, "fuel left: {}", interp.fuel());
        // The cumulative counter never races far past the allowance.
        assert!(interp.string_bytes_allocated() <= 2 * (1 << 16));
    }

    #[test]
    fn unbounded_recursion_trips_depth_budget() {
        let b = ResourceBudget {
            max_call_depth: 32,
            ..ResourceBudget::default()
        };
        assert_eq!(
            runtime_err(b, "function r(n) { return r(n + 1); } r(0);"),
            RuntimeError::StackOverflow
        );
    }

    #[test]
    fn budget_phase_resets_allowances() {
        let mut interp = Interpreter::new();
        let b = ResourceBudget {
            max_heap_cells: 50,
            ..ResourceBudget::default()
        };
        interp.set_budget(&b);
        let src = "var a = []; var i = 0; while (i < 40) { a[i] = {}; i = i + 1; }";
        assert!(interp.run_source(src).is_ok());
        // A fresh phase gets a fresh allowance relative to the grown heap.
        interp.set_budget(&b);
        let src2 = "var c = []; var j = 0; while (j < 40) { c[j] = {}; j = j + 1; }";
        assert!(
            interp.run_source(src2).is_ok(),
            "second phase was charged for the first"
        );
    }

    #[test]
    fn trap_classification() {
        assert!(RuntimeError::OutOfFuel.is_budget_trap());
        assert!(RuntimeError::StackOverflow.is_budget_trap());
        assert!(RuntimeError::HeapExhausted.is_budget_trap());
        assert!(RuntimeError::StringOverflow.is_budget_trap());
        assert!(!RuntimeError::TypeError(String::new()).is_budget_trap());
        assert!(!RuntimeError::ReferenceError(String::new()).is_budget_trap());
    }

    #[test]
    fn deeply_nested_source_is_a_parse_error_not_a_crash() {
        for bomb in [
            format!("var x = {}1{};", "(".repeat(5_000), ")".repeat(5_000)),
            format!("var a = {}1{};", "[".repeat(5_000), "]".repeat(5_000)),
            format!("var n = {}1;", "!".repeat(5_000)),
            "{".repeat(5_000),
        ] {
            match crate::parser::parse(&bomb) {
                Err(e) => assert!(e.to_string().contains("nesting too deep"), "{e}"),
                Ok(_) => panic!("nesting bomb parsed"),
            }
        }
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let src = format!("var x = {}1{};", "(".repeat(40), ")".repeat(40));
        assert!(crate::parser::parse(&src).is_ok());
    }
}
