//! Content-addressed script compilation cache.
//!
//! A crawl executes the same script sources over and over: every page is
//! visited once per round per browser profile, and third-party scripts are
//! shared across thousands of sites. Lexing + parsing is pure — the output
//! depends only on the source text — so the crawl re-derives identical ASTs
//! millions of times. This module memoizes that work survey-wide.
//!
//! Design:
//!
//! - **Keying.** Scripts are keyed by the FNV-64 hash of their source bytes
//!   (the same [`bfu_util::Fnv64`] the store shards use). Sources the paper's
//!   crawl sees are generated or fetched text, not adversarially chosen to
//!   collide a 64-bit hash; on the off chance of a collision the cache would
//!   serve a wrong-but-valid AST, which the synthetic-web workload cannot
//!   produce (all sources come from a finite generator).
//! - **Negative caching.** Parse *errors* are cached alongside successes.
//!   [`ParseError`] is a plain value (`Clone + PartialEq`), so a hostile
//!   malformed script is diagnosed once and every later encounter replays
//!   the identical error — hit and miss behave bit-identically.
//! - **Striping.** The map is striped across [`STRIPES`] mutexes chosen by
//!   hash, so worker threads parsing different scripts rarely contend.
//!   Parsing happens *under* the stripe lock: two threads racing on the same
//!   new script serialize, and exactly one parse per unique source ever runs.
//!   That makes the miss counter deterministic (== unique sources seen), not
//!   scheduling-dependent.
//! - **Determinism.** Parsing consumes no interpreter fuel (budgets are
//!   installed per execution phase, after parsing), so replaying a cached
//!   AST burns exactly the fuel a fresh parse-then-run would. Cached ASTs
//!   are immutable `Arc<Program>`s shared by all threads.

use crate::ast::Program;
use crate::compile::{Chunk, CompileError};
use crate::parser::{parse, ParseError};
use bfu_util::Fnv64;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of lock stripes. Power of two so stripe selection is a mask; 16
/// comfortably exceeds the crawler's worker-thread counts.
const STRIPES: usize = 16;

/// What a cache entry holds: a shared parsed program, or the diagnosed
/// parse error replayed on every later encounter (negative caching).
pub type ParseOutcome = Result<Arc<Program>, ParseError>;

/// Why a source has no bytecode chunk: it never parsed, or it parsed but
/// would not lower. Both are plain values cached negatively, so every later
/// encounter replays the identical diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// The source failed to parse (same error the AST family caches).
    Parse(ParseError),
    /// The source parsed but the bytecode compiler rejected it; the
    /// embedder falls back to tree-walk execution of the cached AST.
    Compile(CompileError),
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::Parse(e) => write!(f, "{e}"),
            ChunkError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ChunkError {}

/// What a chunk-cache entry holds: a shared compiled chunk, or the cached
/// reason there is none.
pub type ChunkOutcome = Result<Arc<Chunk>, ChunkError>;

/// One lock stripe of the content-addressed map.
type Stripe = Mutex<HashMap<u64, ParseOutcome>>;

/// One lock stripe of the chunk map.
type ChunkStripe = Mutex<HashMap<u64, ChunkOutcome>>;

/// What one cache probe observed (for the embedder's per-page stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Source was parsed for the first time (cache filled).
    Miss,
    /// A previously parsed program was reused.
    Hit,
    /// A previously diagnosed parse error was replayed.
    NegativeHit,
}

/// Survey-wide totals, read from atomics after a run. Hits and negative
/// hits are deterministic given a fixed visit plan (every probe after the
/// first for a given source is a hit, regardless of which thread gets
/// there first); misses equal the number of unique sources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that reused a parsed program.
    pub hits: u64,
    /// Probes that parsed fresh source.
    pub misses: u64,
    /// Probes that replayed a cached parse error.
    pub negative_hits: u64,
    /// Distinct sources currently resident (== successful + failed parses).
    pub unique_sources: u64,
    /// Chunk probes that reused a compiled chunk.
    pub chunk_hits: u64,
    /// Chunk probes that compiled fresh (== unique sources probed as chunks).
    pub chunk_misses: u64,
    /// Chunk probes that replayed a cached parse/compile error.
    pub chunk_negative_hits: u64,
    /// Distinct sources resident in the chunk map.
    pub unique_chunks: u64,
}

impl CacheStats {
    /// Fraction of probes (both families) served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.negative_hits + self.chunk_hits + self.chunk_negative_hits;
        let total = served + self.misses + self.chunk_misses;
        if total == 0 {
            return 0.0;
        }
        served as f64 / total as f64
    }
}

/// A thread-safe, content-addressed map from script source to parse result.
///
/// Shared via `Arc` across every page, site, round, profile, and worker
/// thread of a survey. See the module docs for the determinism argument.
///
/// # Examples
///
/// ```
/// use bfu_script::cache::ScriptCache;
/// let cache = ScriptCache::new();
/// let a = cache.lookup_or_parse("var x = 1;").expect("parses");
/// let b = cache.lookup_or_parse("var x = 1;").expect("parses");
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Default)]
pub struct ScriptCache {
    stripes: [Stripe; STRIPES],
    hits: AtomicU64,
    misses: AtomicU64,
    negative_hits: AtomicU64,
    chunk_stripes: [ChunkStripe; STRIPES],
    chunk_hits: AtomicU64,
    chunk_misses: AtomicU64,
    chunk_negative_hits: AtomicU64,
}

impl ScriptCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScriptCache::default()
    }

    /// The FNV-64 content hash used as the cache key for `src`.
    pub fn content_hash(src: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write(src.as_bytes());
        h.finish()
    }

    /// Parse `src`, or reuse the cached result for identical source.
    ///
    /// Returns the shared program on success, or a replay of the cached
    /// [`ParseError`] for source already known to be malformed.
    pub fn lookup_or_parse(&self, src: &str) -> ParseOutcome {
        self.lookup_or_parse_counted(src).0
    }

    /// [`ScriptCache::lookup_or_parse`] plus what the probe observed.
    pub fn lookup_or_parse_counted(&self, src: &str) -> (ParseOutcome, CacheOutcome) {
        let key = ScriptCache::content_hash(src);
        let stripe = &self.stripes[(key as usize) & (STRIPES - 1)];
        let mut map = match stripe.lock() {
            Ok(m) => m,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(cached) = map.get(&key) {
            let outcome = match cached {
                Ok(_) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    CacheOutcome::Hit
                }
                Err(_) => {
                    self.negative_hits.fetch_add(1, Ordering::Relaxed);
                    CacheOutcome::NegativeHit
                }
            };
            return (cached.clone(), outcome);
        }
        // Parse under the stripe lock: a second thread racing on the same
        // source waits here and then hits, so misses count unique sources
        // exactly and no parse ever runs twice.
        let result = parse(src).map(Arc::new);
        map.insert(key, result.clone());
        self.misses.fetch_add(1, Ordering::Relaxed);
        (result, CacheOutcome::Miss)
    }

    /// Compile `src` to a bytecode chunk, or reuse the cached result for
    /// identical source.
    ///
    /// The chunk family is layered over the AST family: a chunk miss first
    /// fills the AST map (without charging AST probe counters — one probe,
    /// one count), then lowers the program. Parse *and* compile failures are
    /// cached negatively, so a malformed or uncompilable source is diagnosed
    /// once and every later encounter replays the identical [`ChunkError`].
    pub fn lookup_or_compile(&self, src: &str) -> ChunkOutcome {
        self.lookup_or_compile_counted(src).0
    }

    /// [`ScriptCache::lookup_or_compile`] plus what the probe observed.
    pub fn lookup_or_compile_counted(&self, src: &str) -> (ChunkOutcome, CacheOutcome) {
        let key = ScriptCache::content_hash(src);
        let stripe = &self.chunk_stripes[(key as usize) & (STRIPES - 1)];
        let mut map = match stripe.lock() {
            Ok(m) => m,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(cached) = map.get(&key) {
            let outcome = match cached {
                Ok(_) => {
                    self.chunk_hits.fetch_add(1, Ordering::Relaxed);
                    CacheOutcome::Hit
                }
                Err(_) => {
                    self.chunk_negative_hits.fetch_add(1, Ordering::Relaxed);
                    CacheOutcome::NegativeHit
                }
            };
            return (cached.clone(), outcome);
        }
        // Compile under the chunk-stripe lock (same argument as parsing:
        // misses == unique sources, exactly one compile each). The AST map
        // is filled en route so a compile-error fallback — or a later
        // tree-walk engine probing the same source — reuses the parse. Lock
        // order is chunk stripe → AST stripe only, and the AST-only path
        // never takes a chunk lock, so no cycle exists.
        let result = match self.parse_for_chunk(src, key) {
            Ok(program) => match crate::compile::compile(&program) {
                Ok(chunk) => Ok(Arc::new(chunk)),
                Err(e) => Err(ChunkError::Compile(e)),
            },
            Err(e) => Err(ChunkError::Parse(e)),
        };
        map.insert(key, result.clone());
        self.chunk_misses.fetch_add(1, Ordering::Relaxed);
        (result, CacheOutcome::Miss)
    }

    /// Probe-or-fill the AST family for the chunk path, without ticking the
    /// AST probe counters (the chunk counters already record this probe).
    fn parse_for_chunk(&self, src: &str, key: u64) -> ParseOutcome {
        let stripe = &self.stripes[(key as usize) & (STRIPES - 1)];
        let mut map = match stripe.lock() {
            Ok(m) => m,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(cached) = map.get(&key) {
            return cached.clone();
        }
        let result = parse(src).map(Arc::new);
        map.insert(key, result.clone());
        result
    }

    /// Current totals.
    pub fn stats(&self) -> CacheStats {
        let unique: usize = self
            .stripes
            .iter()
            .map(|s| match s.lock() {
                Ok(m) => m.len(),
                Err(poisoned) => poisoned.into_inner().len(),
            })
            .sum();
        let unique_chunks: usize = self
            .chunk_stripes
            .iter()
            .map(|s| match s.lock() {
                Ok(m) => m.len(),
                Err(poisoned) => poisoned.into_inner().len(),
            })
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            unique_sources: unique as u64,
            chunk_hits: self.chunk_hits.load(Ordering::Relaxed),
            chunk_misses: self.chunk_misses.load(Ordering::Relaxed),
            chunk_negative_hits: self.chunk_negative_hits.load(Ordering::Relaxed),
            unique_chunks: unique_chunks as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_same_program() {
        let cache = ScriptCache::new();
        let (a, o1) = cache.lookup_or_parse_counted("var a = 1 + 2;");
        let (b, o2) = cache.lookup_or_parse_counted("var a = 1 + 2;");
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.negative_hits), (1, 1, 0));
        assert_eq!(s.unique_sources, 1);
    }

    #[test]
    fn negative_cache_replays_identical_error() {
        let cache = ScriptCache::new();
        let fresh = crate::parser::parse("var = ;").unwrap_err();
        let (first, o1) = cache.lookup_or_parse_counted("var = ;");
        let (second, o2) = cache.lookup_or_parse_counted("var = ;");
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::NegativeHit);
        assert_eq!(first.unwrap_err(), fresh);
        assert_eq!(second.unwrap_err(), fresh);
        assert_eq!(cache.stats().negative_hits, 1);
    }

    #[test]
    fn distinct_sources_do_not_collide() {
        let cache = ScriptCache::new();
        let a = cache.lookup_or_parse("var a = 1;").unwrap();
        let b = cache.lookup_or_parse("var b = 2;").unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().unique_sources, 2);
    }

    #[test]
    fn cached_programs_match_fresh_parse() {
        let src = "function f(x) { return x * 2; } var y = f(21);";
        let cache = ScriptCache::new();
        let cached = cache.lookup_or_parse(src).unwrap();
        let fresh = crate::parser::parse(src).unwrap();
        assert_eq!(*cached, fresh);
    }

    #[test]
    fn concurrent_probes_parse_once() {
        let cache = Arc::new(ScriptCache::new());
        let srcs: Vec<String> = (0..8).map(|i| format!("var v{i} = {i};")).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let srcs = srcs.clone();
                scope.spawn(move || {
                    for s in &srcs {
                        cache.lookup_or_parse(s).unwrap();
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 8, "one parse per unique source");
        assert_eq!(s.hits, 4 * 8 - 8);
        assert_eq!(s.unique_sources, 8);
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            hits: 6,
            misses: 2,
            negative_hits: 2,
            unique_sources: 2,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        // Chunk probes count into the same rate.
        let c = CacheStats {
            chunk_hits: 3,
            chunk_misses: 1,
            unique_chunks: 1,
            ..CacheStats::default()
        };
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn chunk_hit_returns_same_chunk() {
        let cache = ScriptCache::new();
        let (a, o1) = cache.lookup_or_compile_counted("var a = 1 + 2;");
        let (b, o2) = cache.lookup_or_compile_counted("var a = 1 + 2;");
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
        let s = cache.stats();
        assert_eq!(
            (s.chunk_hits, s.chunk_misses, s.chunk_negative_hits),
            (1, 1, 0)
        );
        assert_eq!(s.unique_chunks, 1);
        // The chunk path fills the AST family without charging its probe
        // counters: one probe, one count.
        assert_eq!(s.unique_sources, 1);
        assert_eq!((s.hits, s.misses, s.negative_hits), (0, 0, 0));
    }

    #[test]
    fn negative_chunk_cache_replays_identical_parse_error() {
        let cache = ScriptCache::new();
        let fresh = crate::parser::parse("var = ;").unwrap_err();
        let (first, o1) = cache.lookup_or_compile_counted("var = ;");
        let (second, o2) = cache.lookup_or_compile_counted("var = ;");
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::NegativeHit);
        assert_eq!(first.unwrap_err(), ChunkError::Parse(fresh.clone()));
        assert_eq!(second.unwrap_err(), ChunkError::Parse(fresh));
        assert_eq!(cache.stats().chunk_negative_hits, 1);
    }

    #[test]
    fn chunk_cache_reuses_prior_ast_entry() {
        let cache = ScriptCache::new();
        let src = "function f(x) { return x * 2; } var y = f(21);";
        let ast = cache.lookup_or_parse(src).unwrap();
        cache.lookup_or_compile(src).unwrap();
        let s = cache.stats();
        assert_eq!(s.unique_sources, 1, "chunk probe reused the parsed AST");
        assert_eq!(s.misses, 1);
        assert_eq!(s.chunk_misses, 1);
        // And the AST family still serves the same program afterwards.
        let again = cache.lookup_or_parse(src).unwrap();
        assert!(Arc::ptr_eq(&ast, &again));
    }

    #[test]
    fn concurrent_chunk_probes_compile_once() {
        let cache = Arc::new(ScriptCache::new());
        let srcs: Vec<String> = (0..8).map(|i| format!("var v{i} = {i};")).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let srcs = srcs.clone();
                scope.spawn(move || {
                    for s in &srcs {
                        cache.lookup_or_compile(s).unwrap();
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.chunk_misses, 8, "one compile per unique source");
        assert_eq!(s.chunk_hits, 4 * 8 - 8);
        assert_eq!(s.unique_chunks, 8);
        assert_eq!(s.unique_sources, 8);
    }
}
